#!/usr/bin/env sh
# Perf guard for the columnar/ring hot path: re-measures the fused
# detector sweep and the persistence round-trip (Melem/s floors), the
# streaming and standalone-reorder increments, and the per-callback
# cost (ns/event ceilings) with the `hotpath` binary and fails if any
# gated number regressed more than 20% against the checked-in
# BENCH_hotpath.json baseline.
#
# Shared-runner noise makes single bench runs flaky, so a regression
# must reproduce on three consecutive runs before the guard fails.
set -eu
cd "$(dirname "$0")/.."

cargo build --release -p odp-bench --bin hotpath

attempts=3
i=1
while [ "$i" -le "$attempts" ]; do
    if ./target/release/hotpath --quick --guard BENCH_hotpath.json; then
        exit 0
    fi
    echo "perf_guard: attempt $i/$attempts failed" >&2
    i=$((i + 1))
done
echo "perf_guard: hot-path regression reproduced on $attempts runs" >&2
exit 1
