#!/usr/bin/env sh
# Determinism lint: the report/export/persist layers must never iterate
# a std HashMap/HashSet — iteration order is randomized per process
# (SipHash keyed by RandomState), so any output derived from it is
# nondeterministic across runs. Those layers use BTreeMap/BTreeSet or
# insertion-ordered Vecs instead.
#
# The gate is intentionally blunt: it forbids *naming* std's HashMap or
# HashSet anywhere in the gated paths, because a lookup-only map today
# becomes an iterated map in a refactor tomorrow. Lookup-only uses that
# genuinely need O(1) maps live outside these paths (e.g. the trace
# interner's ptr->id table, which resolves through an insertion-ordered
# Vec and never exposes map order). Fixed-hasher wrappers such as
# `FnvHashMap` (deterministic order for a fixed insertion sequence) are
# allowed and deliberately not matched.
set -eu
cd "$(dirname "$0")/.."

# Paths whose output must be byte-deterministic: finding reports and
# exports, fleet aggregation, trace persistence/export/stats, and the
# whole static-analysis crate (golden fixtures are pinned byte-for-byte).
GATED_PATHS="
crates/core/src/report
crates/core/src/fleet
crates/core/src/remedy
crates/trace/src/persist.rs
crates/trace/src/chrome.rs
crates/trace/src/stats.rs
crates/trace/src/log.rs
crates/static/src
"

fail=0
for path in $GATED_PATHS; do
    if [ ! -e "$path" ]; then
        echo "determinism_lint: gated path missing: $path" >&2
        fail=1
        continue
    fi
    # Match the bare std type names only: a non-identifier character (or
    # line start) before HashMap/HashSet, so FnvHashMap and friends pass.
    # Also flag RandomState, the source of the per-process randomness.
    if hits=$(grep -rnE '(^|[^A-Za-z0-9_])(HashMap|HashSet|RandomState)' "$path"); then
        echo "determinism_lint: std hash collections in deterministic-output path:" >&2
        echo "$hits" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "determinism_lint: FAILED — use BTreeMap/BTreeSet (or an" >&2
    echo "insertion-ordered Vec) in report/export/persist code paths." >&2
    exit 1
fi
echo "determinism_lint: OK — no std HashMap/HashSet in gated paths"
