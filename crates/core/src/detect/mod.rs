//! The five detection algorithms of §5.
//!
//! All detectors run post-mortem over the chronological event log and use
//! only OMPT-visible facts: operation kinds, device numbers, addresses,
//! sizes, start/end times, and content hashes. None of them needs memory
//! access tracking — that is the design point that keeps the tool's
//! overhead at 5 % where instrumenting profilers pay 3.5–20×.
//!
//! # Architecture: fused engine + standalone references
//!
//! Each algorithm exists twice, by design:
//!
//! * **Standalone reference passes** — `find_duplicate_transfers`,
//!   `find_round_trips`, `find_repeated_allocs`, `find_unused_allocs`,
//!   `find_unused_transfers` — direct transcriptions of the paper's
//!   pseudocode. Each walks the full event slice independently and
//!   builds its own side structures. They are the semantic ground truth
//!   (and what the §5.3 ablation hooks into), but running all five
//!   repeats work: Algorithms 1+2 both build the reception map, 3+4
//!   both pair allocs with deletes, 4+5 both partition by device.
//!
//! * **The fused engine** ([`engine`]) — the trace log memoizes one
//!   struct-of-arrays hydration (`odp_trace::ColumnarView`: dense
//!   id/kind/device/addr/bytes/hash/time/codeptr columns, k-way merged
//!   across shards); the engine wraps it in a shared
//!   [`engine::EventView`] — a zero-copy facade carrying the side
//!   tables built in one indexing pass — then advances all five
//!   algorithms as incremental state machines in **one** chronological
//!   detection sweep, each reading only the columns its state machine
//!   needs. Findings are index-based ([`engine::IndexFindings`]) until
//!   the report boundary; only events that appear in findings are ever
//!   gathered back into rows. ARCHITECTURE.md's memory-layout section
//!   has the column map and the cache story.
//!
//! **The one-pass invariant:** the engine observes events in exactly
//! the order the standalone passes do (chronological, with per-key and
//! per-device side tables preserving that order as subsequences), so
//! [`Findings::detect`] — which delegates to the engine — is
//! byte-identical to [`Findings::detect_separate`], group order
//! included. The differential suite in
//! `crates/core/tests/fused_differential.rs` enforces this on
//! randomized traces; `crates/bench/benches/detectors.rs` measures the
//! speedup (shared hydration + no per-detector clones).
//!
//! # Streaming data flow (sharded, multi-threaded)
//!
//! The third execution mode, [`stream::StreamingEngine`], runs the same
//! incremental state machines *while the program executes*. Collection
//! is sharded: every runtime thread owns a tool shard, and the
//! per-callback fast path performs **zero lock acquisitions** — it
//! appends to its own shard's trace log, hands the completed event to
//! the drain through its own fixed-capacity lock-free SPSC ring (one
//! release store per side; a bounded, counted spill absorbs overflow
//! when drains can't keep up), and publishes its `StreamClock` through
//! a batcher that touches the shared `GlobalWatermark` every K events
//! instead of every event:
//!
//! ```text
//! thread 0 ─► shard 0: TraceLog(for_shard 0) ─► SPSC ring 0 ───┐
//! thread 1 ─► shard 1: TraceLog(for_shard 1) ─► SPSC ring 1 ───┤
//!    ⋮            ⋮    (ring full ⇒ bounded, counted spill)     │
//! thread N ─► shard N: TraceLog(for_shard N) ─► SPSC ring N ───┤
//!      │                                                       │
//!      └─ StreamClock ─► PublishBatcher ─► GlobalWatermark     │
//!         (publish every K events — immediately when a queued  │
//!         event's time could retreat behind the safe point;    │
//!         merged watermark = min over shards of the earliest   │
//!         possible future start, None while any shard may      │
//!         still emit at t=0)                                   │
//!                                                              ▼
//!          amortized drain (engine try_lock; snapshot merged
//!          watermark, THEN consume every ring + spill in one
//!          pass and feed StreamingEngine::ingest_batch — one
//!          watermark snapshot and one buffer maintenance step
//!          per batch, not per event)
//!                              │
//!                              ▼
//!         StreamingEngine reorder buffer ── released at the merged
//!         watermark in (start, id) order; id = shard << 32 | seq,
//!         so cross-shard same-start ties break deterministically
//!              │
//!              ├─ Alg 1  reception slots: duplicates final on arrival
//!              ├─ Alg 2  confirmed frontier: trips retire when the
//!              │         re-send arrives; stalled lookahead window is
//!              │         compact (seqs, no clones) and reconciled at
//!              │         finalize; `StreamConfig::max_frontier` caps
//!              │         it with a counted, warned spill policy
//!              ├─ Alg 3  pairing groups: repeats final at alloc time
//!              └─ Alg 4/5 per-device pending queues: decisions land on
//!                        the device's next kernel (or finalize)
//!              │
//!              ├──► live StreamFindings (seq + site info: host addr,
//!              │    codeptr — everything a rewrite needs mid-run)
//!              │        │
//!              │        ▼
//!              │    remedy::RemediationPolicy — finding kind →
//!              │    mapping rewrite, keyed (device, host addr)
//!              │        │ consulted by the runtime at every
//!              │        ▼ map-clause item (odp_ompt::MapAdvisor)
//!              │    sim::Runtime rewrites the NEXT regions: persist /
//!              │    downgrade to alloc|release / elide — recovered
//!              │    bytes+time accounted per cause (RemediationStats)
//!              │
//!              └──► finalize(&EventView) → Findings, byte-identical
//!                   to Findings::detect on the merged trace
//!
//! post-run: TraceLog::merge_shards orders all shard streams by
//! (start, shard, per-shard seq) — hydration output is independent
//! of how the OS scheduled the recording threads.
//! ```
//!
//! The remediation loop (bottom branch) is opt-in (`--remediate`);
//! without an advisor the runtime's directive execution — and therefore
//! every byte of detection output — is identical to the
//! observation-only tool. The full pipeline narrative, including this
//! diagram and the paper-to-code crosswalk, lives in ARCHITECTURE.md.
//!
//! Detection state is index-based throughout; the engine clones no
//! event after the reorder buffer releases it. The equivalence contract
//! is enforced by `crates/core/tests/streaming_differential.rs`
//! (randomized traces delivered in completion order *and* partitioned
//! across shards with randomized interleavings, exact JSON equality),
//! `crates/core/tests/sharded_stress.rs` (real OS-thread callback
//! storms + barrier-forced watermark orderings), and
//! `tests/threaded_collection.rs` (workloads driven from N threads
//! end to end). Per-callback overhead is tracked by the
//! `streaming_vs_postmortem` and `sharded_vs_single_lock` groups of
//! `crates/bench/benches/detectors.rs`.
//!
//! # The reorder buffer: BinaryHeap → shard-run merge
//!
//! The streaming engine's reorder stage used to be a
//! `BinaryHeap<Reverse<BufEntry>>`: every push paid an `O(log n)` sift
//! comparing full buffered entries, even though per-shard arrival
//! order is already *nearly* sorted (a shard records events in its own
//! completion order). [`reorder::RunMergeBuffer`] exploits exactly
//! that:
//!
//! ```text
//!        push(shard, key = (start, id, family), event)
//!                           │
//!            key ≥ the shard lane's last pushed key?
//!          yes (≈ every event) │           no (genuine intra-shard
//!                ▼             │           inversion — late arrival)
//!      RunLane[shard]          └─────────────────┐
//!      append to keys[]/entries[] arenas         ▼
//!      (O(1); no comparisons against       side pocket (small
//!      other shards until release)         BinaryHeap, usually
//!                │                         empty; counted in
//!                │                         StreamBufferStats::
//!                │                         reorder_inversions /
//!                │                         reorder_pocket_peak)
//!                └──────────────┬────────────────┘
//!                               ▼
//!        LoserTree k-way merge over lane heads (+ pocket head,
//!        entered only while non-empty): each node caches its
//!        source's (key, shard), so a pop replays one leaf-to-root
//!        path — one head probe plus log k tuple compares; appends
//!        mark the tree dirty and it rebuilds once per release batch
//!                               ▼
//!        pop_if(key ≤ watermark): batch retirement in (start, id)
//!        order — fully drained lanes reset their arenas in place,
//!        long-lived backlogs compact amortized O(1) per event
//! ```
//!
//! The equivalence oracle lives in
//! `crates/core/tests/reorder_equivalence.rs`: the buffer must release
//! the exact sequence the retired heap would, under interleaved
//! watermark gates, for every shard count and inversion rate, and its
//! inversion accounting must match an external model of the
//! run-extension rule. `crates/bench/benches/reorder.rs` races the two
//! structures directly; the `reorder` rows of the `hotpath` binary gate
//! the standalone pipeline at ~15–25 ns/event in CI.
//!
//! # The post-mortem sweep: sequential → partitioned
//!
//! [`Findings::detect`] resolves a process-wide worker count (CLI
//! `--sweep-threads`, env `ODP_SWEEP_THREADS`, default 1 =
//! sequential); [`detect_with`] takes it explicitly. The five
//! algorithms partition over the shared read-only [`EventView`]
//! without any shared mutable state, on plain `std::thread::scope`
//! workers pulling jobs from an atomic cursor:
//!
//! ```text
//!                 EventView (shared, read-only)
//!        │              │               │              │
//!   Alg 2 by hash   Alg 3 by alloc   Alg 4/5 per    Alg 1 whole
//!   (per-hash       key (pair-table  device         (slot scan on
//!   queue cursors)  partitions)      (device-local  the calling
//!        │              │            queues)        thread)
//!        │              │               │              │
//!        └──────────────┴───────┬───────┴──────────────┘
//!                               ▼
//!        deterministic merge in job order (= partition order =
//!        device order); Algorithm 2 trips re-sort by sweep
//!        position, Algorithm 3 groups by first-seen pair index
//!                               ▼
//!        detect_with(view, n) ≡ detect_with(view, 1), n ∈ ℕ —
//!        byte-identical findings for every worker count
//! ```
//!
//! `crates/core/tests/sweep_determinism.rs` enforces the worker-count
//! invariant (1/2/4/8/33 workers, JSON equality), and CI re-runs the
//! differential suites under `ODP_SWEEP_THREADS=4` so every
//! byte-identity oracle doubles as a parallel-sweep oracle.

// Detection consumes untrusted event data: malformed input must be
// quarantined and counted, never unwrapped. Real invariants carry
// explicit allows at the call site.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod duplicate;
pub mod engine;
pub mod pairing;
pub mod realloc;
pub mod reorder;
pub mod roundtrip;
pub mod stream;
pub mod unused_alloc;
pub mod unused_transfer;

use odp_model::{DataOpEvent, TargetEvent};
use serde::{Deserialize, Serialize};

pub use duplicate::{find_duplicate_transfers, DuplicateTransferGroup};
pub use engine::{
    detect_with, set_sweep_threads, sweep_threads, EventView, IndexFindings, OutOfRangeEvents,
    MAX_PLAUSIBLE_DEVICES,
};
pub use pairing::{alloc_delete_pairs, AllocDeletePair};
pub use realloc::{find_repeated_allocs, find_repeated_allocs_keyed, RepeatedAllocGroup};
pub use roundtrip::{find_round_trips, RoundTrip, RoundTripGroup, TripList};
pub use stream::{StreamBufferStats, StreamConfig, StreamEvent, StreamFinding, StreamingEngine};
pub use unused_alloc::{find_unused_allocs, UnusedAlloc};
pub use unused_transfer::{find_unused_transfers, UnusedTransfer, UnusedTransferReason};

/// How much the evidence behind a finding can be trusted.
///
/// The streaming engine normally releases events only at the merged
/// watermark, so every finding rests on a settled chronological order.
/// Under degraded input — forced releases after a watermark stall,
/// quarantined (orphaned / truncated / duplicate-id) events — the order
/// is no longer guaranteed, and findings derived from it are tagged
/// [`Confidence::Degraded`]. Degraded findings are reported (with the
/// tag) but must never seed `remedy::RemediationPolicy` rules: a
/// rewrite driven by unsettled evidence could mis-map a correct
/// program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub enum Confidence {
    /// Derived from watermark-settled, well-formed evidence.
    #[default]
    Confirmed,
    /// Derived at least in part from force-released or quarantined
    /// evidence; report-only, never actionable.
    Degraded,
}

impl Confidence {
    /// True for [`Confidence::Degraded`].
    pub fn is_degraded(self) -> bool {
        self == Confidence::Degraded
    }
}

/// Issue counts per category, using the paper's Table 1 conventions:
///
/// * **DD** — duplicate transfer *events* (every event in a group beyond
///   the first; a group of `n` identical receptions contributes `n-1`);
/// * **RT** — completed round trips;
/// * **RA** — repeated allocation *pairs* beyond the first per site;
/// * **UA** — unused allocations;
/// * **UT** — unused transfers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssueCounts {
    /// Duplicate data transfers.
    pub dd: usize,
    /// Round-trip data transfers.
    pub rt: usize,
    /// Repeated device memory allocations.
    pub ra: usize,
    /// Unused device memory allocations.
    pub ua: usize,
    /// Unused data transfers.
    pub ut: usize,
}

impl IssueCounts {
    /// Total issues across all categories.
    pub fn total(&self) -> usize {
        self.dd + self.rt + self.ra + self.ua + self.ut
    }

    /// Are there no issues at all?
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

/// The combined output of all five detectors.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Findings {
    /// Algorithm 1 output.
    pub duplicates: Vec<DuplicateTransferGroup>,
    /// Algorithm 2 output.
    pub round_trips: Vec<RoundTripGroup>,
    /// Algorithm 3 output.
    pub repeated_allocs: Vec<RepeatedAllocGroup>,
    /// Algorithm 4 output.
    pub unused_allocs: Vec<UnusedAlloc>,
    /// Algorithm 5 output.
    pub unused_transfers: Vec<UnusedTransfer>,
}

impl Findings {
    /// Run all five detectors through the fused single-pass engine.
    ///
    /// `data_op_events` and `kernel_events` must be in chronological
    /// order (the trace log's hydration guarantees this). Output is
    /// byte-identical to [`Findings::detect_separate`].
    pub fn detect(
        data_op_events: &[DataOpEvent],
        kernel_events: &[TargetEvent],
        num_devices: u32,
    ) -> Findings {
        Findings::detect_fused(&EventView::new(data_op_events, kernel_events, num_devices))
    }

    /// Run the fused engine over a prebuilt [`EventView`].
    pub fn detect_fused(view: &EventView<'_>) -> Findings {
        engine::detect(view)
    }

    /// Run the five standalone reference passes independently — the
    /// paper-pseudocode transcriptions the fused engine is verified
    /// against.
    pub fn detect_separate(
        data_op_events: &[DataOpEvent],
        kernel_events: &[TargetEvent],
        num_devices: u32,
    ) -> Findings {
        Findings {
            duplicates: find_duplicate_transfers(data_op_events),
            round_trips: find_round_trips(data_op_events),
            repeated_allocs: find_repeated_allocs(data_op_events),
            unused_allocs: find_unused_allocs(kernel_events, data_op_events, num_devices),
            unused_transfers: find_unused_transfers(kernel_events, data_op_events, num_devices),
        }
    }

    /// Table 1-style issue counts.
    pub fn counts(&self) -> IssueCounts {
        IssueCounts {
            dd: self
                .duplicates
                .iter()
                .map(|g| g.events.len().saturating_sub(1))
                .sum(),
            rt: self.round_trips.iter().map(|g| g.trips.len()).sum(),
            ra: self
                .repeated_allocs
                .iter()
                .map(|g| g.pairs.len().saturating_sub(1))
                .sum(),
            ua: self.unused_allocs.len(),
            ut: self.unused_transfers.len(),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared builders for detector unit tests.

    use odp_model::{
        CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, HashVal, SimTime, TargetEvent,
        TargetKind, TimeSpan,
    };

    pub fn span(a: u64, b: u64) -> TimeSpan {
        TimeSpan::new(SimTime(a), SimTime(b))
    }

    pub struct EventFactory {
        next_id: u64,
    }

    impl EventFactory {
        pub fn new() -> Self {
            EventFactory { next_id: 0 }
        }

        fn id(&mut self) -> EventId {
            let id = EventId(self.next_id);
            self.next_id += 1;
            id
        }

        pub fn h2d(&mut self, t: u64, dev: u32, src: u64, hash: u64, bytes: u64) -> DataOpEvent {
            DataOpEvent {
                id: self.id(),
                kind: DataOpKind::Transfer,
                src_device: DeviceId::HOST,
                dest_device: DeviceId::target(dev),
                src_addr: src,
                dest_addr: 0xd000 + src,
                bytes,
                hash: Some(HashVal(hash)),
                span: span(t, t + 10),
                codeptr: CodePtr(0x100),
            }
        }

        pub fn d2h(&mut self, t: u64, dev: u32, src: u64, hash: u64, bytes: u64) -> DataOpEvent {
            DataOpEvent {
                id: self.id(),
                kind: DataOpKind::Transfer,
                src_device: DeviceId::target(dev),
                dest_device: DeviceId::HOST,
                src_addr: 0xd000 + src,
                dest_addr: src,
                bytes,
                hash: Some(HashVal(hash)),
                span: span(t, t + 10),
                codeptr: CodePtr(0x110),
            }
        }

        pub fn alloc(
            &mut self,
            t: u64,
            dev: u32,
            haddr: u64,
            daddr: u64,
            bytes: u64,
        ) -> DataOpEvent {
            DataOpEvent {
                id: self.id(),
                kind: DataOpKind::Alloc,
                src_device: DeviceId::HOST,
                dest_device: DeviceId::target(dev),
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span: span(t, t + 5),
                codeptr: CodePtr(0x120),
            }
        }

        pub fn delete(
            &mut self,
            t: u64,
            dev: u32,
            haddr: u64,
            daddr: u64,
            bytes: u64,
        ) -> DataOpEvent {
            DataOpEvent {
                id: self.id(),
                kind: DataOpKind::Delete,
                src_device: DeviceId::HOST,
                dest_device: DeviceId::target(dev),
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span: span(t, t + 2),
                codeptr: CodePtr(0x130),
            }
        }

        pub fn kernel(&mut self, t0: u64, t1: u64, dev: u32) -> TargetEvent {
            TargetEvent {
                id: self.id(),
                device: DeviceId::target(dev),
                kind: TargetKind::Kernel,
                span: span(t0, t1),
                codeptr: CodePtr(0x140),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::EventFactory;

    #[test]
    fn counts_follow_table1_conventions() {
        let mut f = EventFactory::new();
        // 3 identical receptions → DD = 2; one round trip → RT = 1.
        let ops = vec![
            f.h2d(0, 0, 0x1000, 7, 64),
            f.h2d(20, 0, 0x1000, 7, 64),
            f.h2d(40, 0, 0x1000, 7, 64),
        ];
        let findings = Findings::detect(&ops, &[], 1);
        let counts = findings.counts();
        assert_eq!(counts.dd, 2);
        assert!(counts.total() >= 2);
    }

    #[test]
    fn clean_trace_has_clean_counts() {
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(10, 50, 0)];
        let ops = vec![f.h2d(0, 0, 0x1000, 1, 64), f.d2h(60, 0, 0x1000, 2, 64)];
        let findings = Findings::detect(&ops, &kernels, 1);
        assert!(findings.counts().is_clean(), "{:?}", findings.counts());
    }
}
