//! The shard-run reorder pipeline behind [`crate::detect::StreamingEngine`].
//!
//! Events reach the streaming engine in *completion* order, but every
//! detector's precondition is chronological `(start, id, family)` order.
//! The engine used to repair that with a global `BinaryHeap`: O(log n)
//! sifts per event, each comparison re-deriving the sort key from a
//! ~96-byte event — measurably the streaming hot path's bottleneck once
//! collection itself went lock-free.
//!
//! This module exploits what the heap ignored: events arrive from
//! per-shard SPSC rings, and within one shard completion order is
//! *near*-sorted by start time (a shard's operations mostly retire in
//! the order they began; only genuinely overlapping spans invert). So:
//!
//! ```text
//!   shard 0 ──append──▶ [run lane 0]  (sorted append-only run)
//!   shard 1 ──append──▶ [run lane 1]  keys: Vec<SortKey>, entries arena
//!   shard k ──append──▶ [run lane k]  head cursor, batch retirement
//!        │
//!        └─inversion──▶ [side pocket] (tiny BinaryHeap, counted)
//!
//!   release: k-way loser-tree merge over lane heads + pocket head,
//!            gated by the watermark — O(log k) per event, k = shards+1,
//!            with keys compared as plain 17-byte tuples (no event touch)
//! ```
//!
//! * **Run lanes.** One per shard (shard = the event id's high 32 bits,
//!   see `TraceLog::merge_shards`). An arriving event whose key is ≥ the
//!   lane's tail key appends to the lane — the overwhelmingly common
//!   case, one bounds check and two `Vec` pushes. Keys and entries live
//!   in parallel arenas consumed through a head cursor; when a lane
//!   drains completely the arenas are cleared in place (*batch
//!   retirement* — the allocation is reused, nothing shifts), and a
//!   long-lived backlog is compacted once the consumed prefix exceeds
//!   the live suffix, so memory stays proportional to what is buffered.
//! * **Side pocket.** A genuine intra-shard inversion (an async span
//!   completing after a later-starting one) would break the lane's run
//!   invariant, so it goes to a small heap instead, counted in
//!   [`RunMergeBuffer::inversions`] — the stat that tells you whether a
//!   workload actually is near-sorted (steady-state traces: ~0–1%).
//! * **Loser tree.** Releasing drains the global minimum across lanes +
//!   pocket while it passes the caller's gate (the watermark). A
//!   tournament loser tree over the source heads makes that O(log k)
//!   comparisons per pop with k tiny; after a batch of appends the tree
//!   is rebuilt once (`O(k)`), so a batch costs one rebuild plus one
//!   replay path per released event. Ties on identical keys break by
//!   shard id, keeping the merge deterministic even for adversarial
//!   traces with colliding event ids.
//!
//! The pipeline releases *exactly* the sorted order the heap released —
//! the streaming differential and the proptest equivalence suite
//! (`reorder_equivalence.rs`) hold it to a literal `BinaryHeap` oracle.

use odp_model::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Chronological release key: `(start, event id, family)` — the exact
/// key the trace log's hydration sorts by (family 0 = data op,
/// 1 = kernel; families tie arbitrarily, ids are unique per shard).
pub type SortKey = (SimTime, u64, u8);

/// Lane index of the side pocket inside the merge (always the last
/// tournament source).
const NO_SOURCE: u32 = u32::MAX;

/// A pocketed inversion: ordered by `(key, shard)` so the pocket's head
/// compares exactly like a lane head.
#[derive(Debug)]
struct PocketEntry<T> {
    key: SortKey,
    shard: u32,
    value: T,
}

impl<T> PartialEq for PocketEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.key, self.shard) == (other.key, other.shard)
    }
}
impl<T> Eq for PocketEntry<T> {}
impl<T> PartialOrd for PocketEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for PocketEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.shard).cmp(&(other.key, other.shard))
    }
}

/// One shard's in-order run: parallel key/entry arenas consumed through
/// `head`. The run invariant: `keys[head..]` is sorted (ascending).
#[derive(Debug)]
struct RunLane<T> {
    shard: u32,
    keys: Vec<SortKey>,
    entries: Vec<Option<T>>,
    head: usize,
}

impl<T> RunLane<T> {
    fn new(shard: u32) -> RunLane<T> {
        RunLane {
            shard,
            keys: Vec::new(),
            entries: Vec::new(),
            head: 0,
        }
    }

    #[inline]
    fn head_key(&self) -> Option<SortKey> {
        self.keys.get(self.head).copied()
    }

    /// Can `key` extend the run? (Empty lanes accept anything: the merge
    /// orders across lanes, a fresh run needs no relation to retired ones.)
    #[inline]
    fn accepts(&self, key: SortKey) -> bool {
        self.keys.last().is_none_or(|&tail| key >= tail)
    }

    #[inline]
    fn push(&mut self, key: SortKey, value: T) {
        debug_assert!(self.accepts(key), "run invariant violated");
        self.keys.push(key);
        self.entries.push(Some(value));
    }

    fn pop(&mut self) -> Option<T> {
        let value = self.entries.get_mut(self.head)?.take();
        self.head += 1;
        if self.head == self.keys.len() {
            // Batch retirement: the whole run was consumed — reset the
            // arenas in place, keeping their allocations for the next run.
            self.keys.clear();
            self.entries.clear();
            self.head = 0;
        } else if self.head > 64 && self.head * 2 > self.keys.len() {
            // A long-lived backlog: compact once the consumed prefix
            // outweighs the live suffix (amortized O(1) per event).
            self.keys.drain(..self.head);
            self.entries.drain(..self.head);
            self.head = 0;
        }
        value
    }
}

/// An exhausted source's stand-in key: compares after every real
/// `(key, shard)`, so `NO_SOURCE` loses every match by plain tuple
/// comparison — the tree never calls back into `key_of` during a match.
const MAX_KEY: (SortKey, u32) = ((SimTime(u64::MAX), u64::MAX, u8::MAX), u32::MAX);

/// Tournament loser tree over `sources` heads (lanes + pocket): slot 0
/// holds the overall winner, internal nodes 1..m hold the loser of the
/// match played there — each with its `(key, shard)` cached inline, so a
/// match is one tuple comparison (no callback into the lanes). Extracting
/// the winner replays one leaf-to-root path (`O(log k)`, exactly one
/// `key_of` call for the popped source's new head); appends invalidate
/// the tree, which is rebuilt once per release batch (`O(k)`).
#[derive(Debug, Default)]
struct LoserTree {
    /// Leaf count (power of two ≥ sources; 0 = not built).
    m: usize,
    /// Loser source at each internal node; `node[0]` = winner.
    node: Vec<u32>,
    /// The matching source's cached `(key, shard)`.
    key: Vec<(SortKey, u32)>,
    scratch: Vec<(u32, (SortKey, u32))>,
}

impl LoserTree {
    fn rebuild(&mut self, sources: usize, key_of: &impl Fn(u32) -> Option<(SortKey, u32)>) {
        let m = sources.next_power_of_two().max(1);
        self.m = m;
        self.node.clear();
        self.node.resize(m, NO_SOURCE);
        self.key.clear();
        self.key.resize(m, MAX_KEY);
        self.scratch.clear();
        self.scratch.resize(2 * m, (NO_SOURCE, MAX_KEY));
        for (i, w) in self.scratch[m..].iter_mut().enumerate() {
            if i < sources {
                if let Some(k) = key_of(i as u32) {
                    *w = (i as u32, k);
                }
            }
        }
        for j in (1..m).rev() {
            let (a, b) = (self.scratch[2 * j], self.scratch[2 * j + 1]);
            let (w, l) = if a.1 < b.1 { (a, b) } else { (b, a) };
            self.scratch[j] = w;
            self.node[j] = l.0;
            self.key[j] = l.1;
        }
        self.node[0] = self.scratch[1].0;
        self.key[0] = self.scratch[1].1;
    }

    #[inline]
    fn winner(&self) -> u32 {
        self.node[0]
    }

    /// The winner's cached `(key, shard)` (valid while the tree is clean).
    #[inline]
    fn winner_key(&self) -> (SortKey, u32) {
        self.key[0]
    }

    /// Source `s`'s head changed (popped or exhausted): replay its path.
    #[inline]
    fn replay(&mut self, s: u32, key_of: &impl Fn(u32) -> Option<(SortKey, u32)>) {
        let mut cur = match key_of(s) {
            Some(k) => (s, k),
            None => (NO_SOURCE, MAX_KEY),
        };
        let mut j = (self.m + s as usize) >> 1;
        while j >= 1 {
            if self.key[j] < cur.1 {
                std::mem::swap(&mut cur.0, &mut self.node[j]);
                std::mem::swap(&mut cur.1, &mut self.key[j]);
            }
            j >>= 1;
        }
        self.node[0] = cur.0;
        self.key[0] = cur.1;
    }
}

/// The shard-run reorder buffer: push events keyed `(start, id, family)`
/// tagged with their shard, pop them back in global sorted order through
/// a caller-supplied gate (the watermark).
///
/// Generic over the payload so the bench suite can race it against a
/// `BinaryHeap` oracle without constructing full events.
#[derive(Debug)]
pub struct RunMergeBuffer<T> {
    lanes: Vec<RunLane<T>>,
    /// Direct-mapped shard → lane table for small shard ids (the
    /// overwhelming case: shard ids are consecutive thread indices).
    lane_of_small: Vec<u32>,
    /// Fallback for adversarial shard ids beyond the direct table.
    lane_of_large: Vec<(u32, u32)>,
    pocket: BinaryHeap<Reverse<PocketEntry<T>>>,
    tree: LoserTree,
    /// Sources (lanes or pocket membership) changed since the last
    /// rebuild; the next pop rebuilds once.
    dirty: bool,
    pending: usize,
    inversions: u64,
    pocket_peak: usize,
}

/// Largest shard id served by the direct-mapped lane table.
const SMALL_SHARDS: usize = 256;

impl<T> Default for RunMergeBuffer<T> {
    fn default() -> RunMergeBuffer<T> {
        RunMergeBuffer {
            lanes: Vec::new(),
            lane_of_small: Vec::new(),
            lane_of_large: Vec::new(),
            pocket: BinaryHeap::new(),
            tree: LoserTree::default(),
            dirty: true,
            pending: 0,
            inversions: 0,
            pocket_peak: 0,
        }
    }
}

impl<T> RunMergeBuffer<T> {
    /// Buffered events not yet released.
    #[inline]
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True when nothing is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total intra-shard inversions routed to the side pocket (the
    /// "how near-sorted was this trace really" stat).
    pub fn inversions(&self) -> u64 {
        self.inversions
    }

    /// Side-pocket high-water mark.
    pub fn pocket_peak(&self) -> usize {
        self.pocket_peak
    }

    /// Number of shard run lanes materialized so far.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    #[inline]
    fn lane_ix(&mut self, shard: u32) -> usize {
        if (shard as usize) < SMALL_SHARDS {
            let s = shard as usize;
            if s >= self.lane_of_small.len() {
                self.lane_of_small.resize(s + 1, NO_SOURCE);
            }
            let lx = self.lane_of_small[s];
            if lx != NO_SOURCE {
                return lx as usize;
            }
            let lx = self.lanes.len() as u32;
            self.lanes.push(RunLane::new(shard));
            self.lane_of_small[s] = lx;
            self.dirty = true;
            lx as usize
        } else {
            if let Some(&(_, lx)) = self.lane_of_large.iter().find(|&&(s, _)| s == shard) {
                return lx as usize;
            }
            let lx = self.lanes.len() as u32;
            self.lanes.push(RunLane::new(shard));
            self.lane_of_large.push((shard, lx));
            self.dirty = true;
            lx as usize
        }
    }

    /// Buffer one event. `shard` is the event id's origin shard (high 32
    /// bits) — events of one shard must arrive in that shard's
    /// completion order for the near-sorted fast path to engage;
    /// anything else still works, it just rides the pocket.
    pub fn push(&mut self, shard: u32, key: SortKey, value: T) {
        let lx = self.lane_ix(shard);
        let lane = &mut self.lanes[lx];
        if lane.accepts(key) {
            // A tail append leaves every source head as it was: the
            // tournament stays valid unless this lane just went from
            // empty to occupied (a new head entered the merge).
            if lane.head_key().is_none() {
                self.dirty = true;
            }
            lane.push(key, value);
        } else {
            self.inversions += 1;
            self.pocket.push(Reverse(PocketEntry { key, shard, value }));
            self.pocket_peak = self.pocket_peak.max(self.pocket.len());
            self.dirty = true;
        }
        self.pending += 1;
    }

    /// `(key, shard)` head of tournament source `s` (lanes first, pocket
    /// last), or `None` when exhausted.
    #[inline]
    fn source_key(
        lanes: &[RunLane<T>],
        pocket: &BinaryHeap<Reverse<PocketEntry<T>>>,
        s: u32,
    ) -> Option<(SortKey, u32)> {
        let s = s as usize;
        if s < lanes.len() {
            let lane = &lanes[s];
            lane.head_key().map(|k| (k, lane.shard))
        } else {
            pocket.peek().map(|Reverse(e)| (e.key, e.shard))
        }
    }

    /// Key of the next event the merge would release, without releasing.
    pub fn peek_key(&mut self) -> Option<SortKey> {
        if self.pending == 0 {
            return None;
        }
        // Single-lane fast path: no tournament needed while the pocket
        // is empty (the common single-shard / in-order case).
        if self.lanes.len() == 1 && self.pocket.is_empty() {
            return self.lanes[0].head_key();
        }
        let (lanes, pocket) = (&self.lanes, &self.pocket);
        let key_of = |s: u32| Self::source_key(lanes, pocket, s);
        if self.dirty {
            // The pocket joins the tournament only while it holds
            // something: at power-of-two lane counts (the common shard
            // shapes) that saves a whole tree level. A pocket emptied
            // *between* rebuilds needs no flag — its source replays to
            // `MAX_KEY` and simply never wins again.
            let sources = self.lanes.len() + usize::from(!self.pocket.is_empty());
            self.tree.rebuild(sources, &key_of);
            self.dirty = false;
        }
        debug_assert_ne!(
            self.tree.winner(),
            NO_SOURCE,
            "pending > 0 but no tournament winner"
        );
        Some(self.tree.winner_key().0)
    }

    /// Release the globally smallest buffered event if its key passes
    /// `gate`. Returns `None` when empty or gated.
    pub fn pop_if(&mut self, gate: impl FnOnce(SortKey) -> bool) -> Option<T> {
        let key = self.peek_key()?;
        if !gate(key) {
            return None;
        }
        self.pending -= 1;
        if self.lanes.len() == 1 && self.pocket.is_empty() {
            return self.lanes[0].pop();
        }
        let w = self.tree.winner();
        let value = if (w as usize) < self.lanes.len() {
            self.lanes[w as usize].pop()
        } else {
            self.pocket.pop().map(|Reverse(e)| e.value)
        };
        let (lanes, pocket) = (&self.lanes, &self.pocket);
        let key_of = |s: u32| Self::source_key(lanes, pocket, s);
        self.tree.replay(w, &key_of);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, id: u64) -> SortKey {
        (SimTime(t), id, 0)
    }

    #[test]
    fn single_lane_releases_in_order() {
        let mut buf = RunMergeBuffer::default();
        for (t, id) in [(0, 1), (10, 2), (20, 3)] {
            buf.push(0, key(t, id), id);
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.inversions(), 0);
        let mut out = Vec::new();
        while let Some(v) = buf.pop_if(|k| k.0 <= SimTime(10)) {
            out.push(v);
        }
        assert_eq!(out, vec![1, 2]);
        assert_eq!(buf.len(), 1);
        while let Some(v) = buf.pop_if(|_| true) {
            out.push(v);
        }
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(buf.len(), 0);
    }

    #[test]
    fn cross_shard_merge_is_globally_sorted() {
        let mut buf = RunMergeBuffer::default();
        // Shard 0: 0, 30, 60; shard 1: 10, 40; shard 7: 20, 50.
        for (shard, times) in [
            (0u32, vec![0u64, 30, 60]),
            (1, vec![10, 40]),
            (7, vec![20, 50]),
        ] {
            for t in times {
                buf.push(shard, key(t, (shard as u64) << 32 | t), t);
            }
        }
        assert_eq!(buf.lane_count(), 3);
        let mut out = Vec::new();
        while let Some(v) = buf.pop_if(|_| true) {
            out.push(v);
        }
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60]);
        assert_eq!(buf.inversions(), 0);
    }

    #[test]
    fn intra_shard_inversion_rides_the_pocket() {
        let mut buf = RunMergeBuffer::default();
        buf.push(0, key(100, 2), 100u64);
        // Started earlier, completed later: a genuine inversion.
        buf.push(0, key(50, 1), 50);
        buf.push(0, key(150, 3), 150);
        assert_eq!(buf.inversions(), 1);
        assert_eq!(buf.pocket_peak(), 1);
        let mut out = Vec::new();
        while let Some(v) = buf.pop_if(|_| true) {
            out.push(v);
        }
        assert_eq!(out, vec![50, 100, 150], "pocket merges back in order");
    }

    #[test]
    fn interleaved_push_pop_retires_and_reuses_lanes() {
        let mut buf = RunMergeBuffer::default();
        for round in 0..100u64 {
            let t = round * 10;
            buf.push(0, key(t, round * 2), t);
            buf.push(1, key(t + 5, round * 2 + 1), t + 5);
            // Fully drain each round: lanes retire their arenas.
            let mut out = Vec::new();
            while let Some(v) = buf.pop_if(|_| true) {
                out.push(v);
            }
            assert_eq!(out, vec![t, t + 5]);
        }
        assert_eq!(buf.len(), 0);
        // A retired lane accepts keys below its old tail (fresh run).
        buf.push(0, key(3, 9999), 3);
        assert_eq!(buf.inversions(), 0);
        assert_eq!(buf.pop_if(|_| true), Some(3));
    }

    #[test]
    fn gate_holds_back_future_events() {
        let mut buf = RunMergeBuffer::default();
        buf.push(0, key(100, 1), 100u64);
        assert_eq!(buf.pop_if(|k| k.0 <= SimTime(50)), None);
        assert_eq!(buf.len(), 1, "gated events stay buffered");
        assert_eq!(buf.pop_if(|k| k.0 <= SimTime(100)), Some(100));
    }

    #[test]
    fn adversarial_reverse_order_still_sorts() {
        // Fully reversed arrival: everything after the first event
        // pockets, and the merge still emits sorted order (the pipeline
        // degrades to the old heap, it never breaks).
        let mut buf = RunMergeBuffer::default();
        for t in (0..200u64).rev() {
            buf.push(0, key(t, t), t);
        }
        assert_eq!(buf.inversions(), 199);
        let mut out = Vec::new();
        while let Some(v) = buf.pop_if(|_| true) {
            out.push(v);
        }
        let expect: Vec<u64> = (0..200).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn equal_keys_tie_break_by_shard() {
        let mut buf = RunMergeBuffer::default();
        // Same (start, id, family) from two shards (id-collision trace).
        buf.push(3, key(10, 7), 3u32);
        buf.push(1, key(10, 7), 1);
        let mut out = Vec::new();
        while let Some(v) = buf.pop_if(|_| true) {
            out.push(v);
        }
        assert_eq!(out, vec![1, 3], "deterministic shard-order tie break");
    }

    #[test]
    fn large_shard_ids_fall_back_to_the_slow_map() {
        let mut buf = RunMergeBuffer::default();
        buf.push(0xFFFF_0000, key(10, 1), 10u64);
        buf.push(0xFFFF_0001, key(0, 2), 0);
        assert_eq!(buf.lane_count(), 2);
        assert_eq!(buf.pop_if(|_| true), Some(0));
        assert_eq!(buf.pop_if(|_| true), Some(10));
    }
}
