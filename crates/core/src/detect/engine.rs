//! The fused single-pass detection engine.
//!
//! The five standalone detectors (`find_duplicate_transfers`,
//! `find_round_trips`, `find_repeated_allocs`, `find_unused_allocs`,
//! `find_unused_transfers`) each re-walk the full event log and each
//! rebuild their own side structures: Algorithms 1 and 2 both build a
//! `(hash, dest_device)` reception map, Algorithms 3 and 4 both run
//! `alloc_delete_pairs` (cloning every alloc/delete event), and
//! Algorithms 4 and 5 both re-partition events by device. At
//! million-event scale that redundancy dominates analysis time.
//!
//! This engine hydrates the trace **once** into a shared [`EventView`]
//! — borrowed, chronologically sorted event slices plus the side tables
//! every algorithm needs (per-`(hash, dest)` reception queues,
//! alloc/delete pairing, per-device partitions) — built in a single
//! linear indexing sweep. Detection then runs one more chronological
//! sweep in which all five algorithms advance as incremental state
//! machines over `&DataOpEvent` references, producing *index-based*
//! findings ([`IndexFindings`]): no event is cloned during detection.
//! Owned [`Findings`] (byte-identical to the standalone detectors'
//! output, group order included) are materialized only at the report
//! boundary via [`IndexFindings::resolve`].
//!
//! Equivalence with the five independent passes is enforced by the
//! differential test suite in `crates/core/tests/fused_differential.rs`
//! (randomized traces, exact JSON equality).

use crate::detect::pairing::AllocDeletePair;
use crate::detect::{
    Confidence, DuplicateTransferGroup, Findings, IssueCounts, RepeatedAllocGroup, RoundTrip,
    RoundTripGroup, UnusedAlloc, UnusedTransfer, UnusedTransferReason,
};
use odp_hash::fnv::FnvHashMap;
use odp_model::{DataOpEvent, DeviceId, HashVal, SimTime, TargetEvent};
use odp_trace::TraceLog;

/// Index of an event in [`EventView::data_ops`] (chronological order).
pub type OpIx = u32;

/// Upper bound on a *plausible* target-device index. Device numbers come
/// from an untrusted trace: a corrupted callback can name device
/// `0x4000_0000`, and sizing per-device tables from such an id would
/// allocate billions of entries. Indices at or beyond this cap are
/// treated as out-of-range (quarantined from the per-device algorithms
/// and counted in [`OutOfRangeEvents`]) by both
/// [`crate::analysis::infer_num_devices`] and the streaming engine's
/// grow-on-demand device machines.
pub const MAX_PLAUSIBLE_DEVICES: u32 = 4096;

/// Events that name a target device at or beyond the view's `num_devices`
/// and are therefore excluded from the per-device algorithms (4 and 5).
///
/// Historically these were dropped *silently*, which skews Algorithms 4/5
/// without a trace: a kernel on an out-of-range device can neither mark
/// allocations used nor clear transfer candidates. The view now counts
/// what it drops so callers can surface a warning ([`OutOfRangeEvents::warning`]).
/// Algorithms 1–3 are unaffected (they key on [`DeviceId`] directly and
/// never index a per-device table).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutOfRangeEvents {
    /// Kernel executions on devices `>= num_devices`.
    pub kernels: usize,
    /// Transfers whose destination device is `>= num_devices`.
    pub transfers: usize,
    /// Allocations on devices `>= num_devices`.
    pub allocs: usize,
}

impl OutOfRangeEvents {
    /// Total dropped events.
    pub fn total(&self) -> usize {
        self.kernels + self.transfers + self.allocs
    }

    /// A console warning describing the drop, or `None` when nothing was
    /// dropped.
    pub fn warning(&self, num_devices: u32) -> Option<String> {
        if self.total() == 0 {
            return None;
        }
        Some(format!(
            "warning: {} event(s) name target devices >= the analyzed device count ({}); \
             Algorithms 4/5 exclude them ({} kernel(s), {} transfer(s), {} allocation(s))",
            self.total(),
            num_devices,
            self.kernels,
            self.transfers,
            self.allocs
        ))
    }
}

/// One reception queue: every transfer of one `(hash, dest_device)`
/// pair, chronological. Shared by Algorithms 1 (whole queue = duplicate
/// group) and 2 (FIFO of pending receptions).
struct RxSlot {
    hash: HashVal,
    dest: DeviceId,
    events: Vec<OpIx>,
}

/// An alloc/delete pairing by event index (the zero-copy counterpart of
/// [`AllocDeletePair`]). Shared by Algorithms 3 and 4.
struct IdxPair {
    alloc: OpIx,
    delete: Option<OpIx>,
}

/// The shared, hydrated, indexed view of one trace.
///
/// Borrows the chronologically sorted event slices (from the trace
/// log's memoized hydration, or from caller-owned vectors) and carries
/// the side tables that the fused sweep shares across all five
/// algorithms. Building the view is one linear pass over each slice.
pub struct EventView<'a> {
    /// Data-op events, sorted by (start, log order).
    pub data_ops: &'a [DataOpEvent],
    /// Kernel-execution events, sorted by (start, log order).
    pub kernels: &'a [TargetEvent],
    /// Number of target devices analyzed (Algorithms 4/5 iterate these).
    pub num_devices: u32,
    /// Reception queues in first-seen key order.
    rx_slots: Vec<RxSlot>,
    /// `(hash, dest_device)` → index into `rx_slots`.
    rx_index: FnvHashMap<(HashVal, DeviceId), u32>,
    /// Chronological indices of hashed transfers (the only events
    /// Algorithms 1/2 look at), so the round-trip sweep skips straight
    /// over allocs, deletes, and hashless transfers.
    hashed_transfers: Vec<OpIx>,
    /// For each hashed transfer (parallel to `hashed_transfers`), the
    /// `rx_slots` index it was enqueued into — precomputed so the sweep
    /// dequeues without a second hash lookup.
    dest_slot: Vec<u32>,
    /// Alloc/delete pairings, in allocation order.
    pairs: Vec<IdxPair>,
    /// Per-target-device transfer indices (Algorithm 5 input).
    tx_by_device: Vec<Vec<OpIx>>,
    /// Per-target-device kernel indices into `kernels` (Algorithms 4/5).
    kernels_by_device: Vec<Vec<u32>>,
    /// Per-target-device pairing indices into `pairs` (Algorithm 4).
    pairs_by_device: Vec<Vec<u32>>,
    /// Events excluded from the per-device tables (device `>= num_devices`).
    out_of_range: OutOfRangeEvents,
}

impl<'a> EventView<'a> {
    /// Build the view from sorted event slices. One linear pass over
    /// `kernels` and one over `data_ops`; no event is cloned.
    pub fn new(
        data_ops: &'a [DataOpEvent],
        kernels: &'a [TargetEvent],
        num_devices: u32,
    ) -> EventView<'a> {
        let nd = num_devices as usize;

        let mut out_of_range = OutOfRangeEvents::default();

        let mut kernels_by_device: Vec<Vec<u32>> = vec![Vec::new(); nd];
        for (kx, k) in kernels.iter().enumerate() {
            if let Some(ix) = k.device.target_index() {
                if ix < nd {
                    kernels_by_device[ix].push(kx as u32);
                } else {
                    out_of_range.kernels += 1;
                }
            }
        }

        // A cheap counting pass (no hashing) sizes the tables up front,
        // so the build pass never rehashes.
        let mut n_hashed_tx = 0usize;
        let mut n_allocs = 0usize;
        for e in data_ops {
            if e.is_transfer() && e.hash.is_some() {
                n_hashed_tx += 1;
            } else if e.is_alloc() {
                n_allocs += 1;
            }
        }

        let mut rx_slots: Vec<RxSlot> = Vec::with_capacity(n_hashed_tx.min(1 << 16));
        let mut rx_index: FnvHashMap<(HashVal, DeviceId), u32> =
            FnvHashMap::with_capacity_and_hasher(n_hashed_tx, Default::default());
        let mut hashed_transfers: Vec<OpIx> = Vec::with_capacity(n_hashed_tx);
        let mut dest_slot: Vec<u32> = Vec::with_capacity(n_hashed_tx);
        let mut pairs: Vec<IdxPair> = Vec::with_capacity(n_allocs);
        let mut open: FnvHashMap<(DeviceId, u64), u32> =
            FnvHashMap::with_capacity_and_hasher(n_allocs, Default::default());
        let mut tx_by_device: Vec<Vec<OpIx>> = vec![Vec::new(); nd];
        let mut pairs_by_device: Vec<Vec<u32>> = vec![Vec::new(); nd];

        for (ox, e) in data_ops.iter().enumerate() {
            let ox = ox as OpIx;
            if e.is_transfer() {
                if let Some(hash) = e.hash {
                    let slot = *rx_index.entry((hash, e.dest_device)).or_insert_with(|| {
                        rx_slots.push(RxSlot {
                            hash,
                            dest: e.dest_device,
                            events: Vec::new(),
                        });
                        (rx_slots.len() - 1) as u32
                    });
                    rx_slots[slot as usize].events.push(ox);
                    hashed_transfers.push(ox);
                    dest_slot.push(slot);
                }
                if let Some(ix) = e.dest_device.target_index() {
                    if ix < nd {
                        tx_by_device[ix].push(ox);
                    } else {
                        out_of_range.transfers += 1;
                    }
                }
            } else if e.is_alloc() {
                let pair_ix = pairs.len() as u32;
                // A new allocation at an address shadows any stale open
                // entry (same contract as `alloc_delete_pairs`).
                open.insert((e.dest_device, e.dest_addr), pair_ix);
                pairs.push(IdxPair {
                    alloc: ox,
                    delete: None,
                });
                if let Some(ix) = e.dest_device.target_index() {
                    if ix < nd {
                        pairs_by_device[ix].push(pair_ix);
                    } else {
                        out_of_range.allocs += 1;
                    }
                }
            } else if e.is_delete() {
                if let Some(pair_ix) = open.remove(&(e.dest_device, e.dest_addr)) {
                    pairs[pair_ix as usize].delete = Some(ox);
                }
            }
        }

        EventView {
            data_ops,
            kernels,
            num_devices,
            rx_slots,
            rx_index,
            hashed_transfers,
            dest_slot,
            pairs,
            tx_by_device,
            kernels_by_device,
            pairs_by_device,
            out_of_range,
        }
    }

    /// Events the per-device tables excluded because they name target
    /// devices `>= num_devices`. Non-zero counts mean Algorithms 4/5 are
    /// running over a subset of the trace — surface
    /// [`OutOfRangeEvents::warning`] rather than ignoring it.
    pub fn out_of_range(&self) -> OutOfRangeEvents {
        self.out_of_range
    }

    /// Build a view over a trace log's memoized hydrations, inferring
    /// the device count from the events.
    pub fn from_log(log: &'a TraceLog) -> EventView<'a> {
        let data_ops = log.data_op_events_sorted();
        let kernels = log.kernel_events_sorted();
        let num_devices = crate::analysis::infer_num_devices(data_ops, kernels);
        EventView::new(data_ops, kernels, num_devices)
    }

    /// The event behind an index.
    #[inline]
    pub fn op(&self, ix: OpIx) -> &DataOpEvent {
        &self.data_ops[ix as usize]
    }

    /// End of a pairing's lifetime (delete end, or program end for
    /// never-freed allocations) — `AllocDeletePair::lifetime_end`.
    fn pair_lifetime_end(&self, p: &IdxPair) -> SimTime {
        p.delete
            .map(|d| self.op(d).span.end)
            .unwrap_or(SimTime(u64::MAX))
    }

    fn resolve_pair(&self, p: &IdxPair) -> AllocDeletePair {
        AllocDeletePair {
            alloc: self.op(p.alloc).clone(),
            delete: p.delete.map(|d| self.op(d).clone()),
        }
    }
}

/// Index-based findings: what the fused sweep produces. Events are
/// referenced by their chronological index ([`OpIx`]) into the view —
/// resolve one with [`EventView::op`] (its `.id` is the stable
/// [`odp_model::EventId`]). [`IndexFindings::counts`] computes the Table
/// 1 issue counts without materializing a single event clone;
/// [`IndexFindings::resolve`] materializes owned [`Findings`] for
/// reports.
#[derive(Default)]
pub struct IndexFindings {
    /// Algorithm 1: duplicate groups as `rx_slots` indices.
    duplicates: Vec<u32>,
    /// Algorithm 2: round-trip groups.
    round_trips: Vec<IdxRoundTripGroup>,
    /// Algorithm 3: repeated-allocation groups.
    repeated_allocs: Vec<IdxRepeatedAllocGroup>,
    /// Algorithm 4: unused allocations as `pairs` indices.
    unused_allocs: Vec<u32>,
    /// Algorithm 5: unused transfers.
    unused_transfers: Vec<(OpIx, UnusedTransferReason)>,
}

struct IdxRoundTripGroup {
    hash: HashVal,
    src: DeviceId,
    dest: DeviceId,
    /// (outbound leg, completing reception) pairs.
    trips: Vec<(OpIx, OpIx)>,
}

struct IdxRepeatedAllocGroup {
    host_addr: u64,
    device: DeviceId,
    bytes: u64,
    /// Indices into the view's shared pairing table.
    pair_ixs: Vec<u32>,
}

impl IndexFindings {
    /// Table 1 issue counts, straight from the indices (no event
    /// materialization).
    pub fn counts(&self, view: &EventView<'_>) -> IssueCounts {
        IssueCounts {
            dd: self
                .duplicates
                .iter()
                .map(|&s| view.rx_slots[s as usize].events.len().saturating_sub(1))
                .sum(),
            rt: self.round_trips.iter().map(|g| g.trips.len()).sum(),
            ra: self
                .repeated_allocs
                .iter()
                .map(|g| g.pair_ixs.len().saturating_sub(1))
                .sum(),
            ua: self.unused_allocs.len(),
            ut: self.unused_transfers.len(),
        }
    }

    /// Materialize owned findings — the one place events are cloned,
    /// and only the events that appear in findings.
    pub fn resolve(&self, view: &EventView<'_>) -> Findings {
        Findings {
            duplicates: self
                .duplicates
                .iter()
                .map(|&s| {
                    let slot = &view.rx_slots[s as usize];
                    DuplicateTransferGroup {
                        hash: slot.hash,
                        dest_device: slot.dest,
                        events: slot.events.iter().map(|&ox| view.op(ox).clone()).collect(),
                        confidence: Confidence::Confirmed,
                    }
                })
                .collect(),
            round_trips: self
                .round_trips
                .iter()
                .map(|g| RoundTripGroup {
                    hash: g.hash,
                    src_device: g.src,
                    dest_device: g.dest,
                    trips: g
                        .trips
                        .iter()
                        .map(|&(tx, rx)| RoundTrip {
                            tx: view.op(tx).clone(),
                            rx: view.op(rx).clone(),
                            spilled: false,
                        })
                        .collect(),
                    confidence: Confidence::Confirmed,
                })
                .collect(),
            repeated_allocs: self
                .repeated_allocs
                .iter()
                .map(|g| RepeatedAllocGroup {
                    host_addr: g.host_addr,
                    device: g.device,
                    bytes: g.bytes,
                    pairs: g
                        .pair_ixs
                        .iter()
                        .map(|&px| view.resolve_pair(&view.pairs[px as usize]))
                        .collect(),
                    confidence: Confidence::Confirmed,
                })
                .collect(),
            unused_allocs: self
                .unused_allocs
                .iter()
                .map(|&px| UnusedAlloc {
                    pair: view.resolve_pair(&view.pairs[px as usize]),
                    confidence: Confidence::Confirmed,
                })
                .collect(),
            unused_transfers: self
                .unused_transfers
                .iter()
                .map(|&(ox, reason)| UnusedTransfer {
                    event: view.op(ox).clone(),
                    reason,
                    confidence: Confidence::Confirmed,
                })
                .collect(),
        }
    }
}

/// Run all five detection algorithms over the view in one fused
/// chronological sweep, returning index-based findings.
///
/// The invariant every state machine below relies on: `view.data_ops`
/// and `view.kernels` are chronological (start, then log order), and
/// the per-device / per-key side tables preserve that order as
/// subsequences. Each algorithm therefore observes events in exactly
/// the order the standalone detectors do, and the outputs match them
/// byte for byte — group order, event order within groups, everything.
pub fn detect_indexed(view: &EventView<'_>) -> IndexFindings {
    let mut out = IndexFindings::default();

    // Algorithm 1 — duplicate transfers. The reception queues *are* the
    // groups: first-seen key order, chronological events.
    for (sx, slot) in view.rx_slots.iter().enumerate() {
        if slot.events.len() >= 2 {
            out.duplicates.push(sx as u32);
        }
    }

    // Algorithm 2 — round trips: one chronological sweep consuming the
    // shared reception queues through per-slot cursors (the standalone
    // detector's FIFO pops, without cloning the queues).
    {
        let mut heads: Vec<usize> = vec![0; view.rx_slots.len()];
        let mut group_ix: FnvHashMap<(HashVal, DeviceId, DeviceId), u32> = FnvHashMap::default();
        for (tix, &ox) in view.hashed_transfers.iter().enumerate() {
            let e = view.op(ox);
            let Some(hash) = e.hash else {
                continue; // hashed_transfers holds hashed events only
            };
            // A pending reception at the transfer's *source* device
            // completes a round trip.
            let Some(&rx_slot) = view.rx_index.get(&(hash, e.src_device)) else {
                continue;
            };
            let queue = &view.rx_slots[rx_slot as usize].events;
            if heads[rx_slot as usize] >= queue.len() {
                continue; // queue exhausted: data never returns
            }
            let rx = queue[heads[rx_slot as usize]];
            let key = (hash, e.src_device, e.dest_device);
            let gx = *group_ix.entry(key).or_insert_with(|| {
                out.round_trips.push(IdxRoundTripGroup {
                    hash,
                    src: e.src_device,
                    dest: e.dest_device,
                    trips: Vec::new(),
                });
                (out.round_trips.len() - 1) as u32
            });
            out.round_trips[gx as usize].trips.push((ox, rx));
            // Dequeue this transfer from its own destination's queue so
            // it cannot later complete a different round trip. The slot
            // was recorded at enqueue time: no second hash lookup.
            heads[view.dest_slot[tix] as usize] += 1;
        }
    }

    // Algorithm 3 — repeated allocations, over the shared pairing table
    // (allocation order), grouped by ⟨host addr, device, size⟩.
    {
        let mut group_ix: FnvHashMap<(u64, DeviceId, u64), u32> = FnvHashMap::default();
        let mut groups: Vec<IdxRepeatedAllocGroup> = Vec::new();
        for (px, pair) in view.pairs.iter().enumerate() {
            let alloc = view.op(pair.alloc);
            let key = (alloc.src_addr, alloc.dest_device, alloc.bytes);
            let gx = *group_ix.entry(key).or_insert_with(|| {
                groups.push(IdxRepeatedAllocGroup {
                    host_addr: alloc.src_addr,
                    device: alloc.dest_device,
                    bytes: alloc.bytes,
                    pair_ixs: Vec::new(),
                });
                (groups.len() - 1) as u32
            });
            groups[gx as usize].pair_ixs.push(px as u32);
        }
        out.repeated_allocs = groups
            .into_iter()
            .filter(|g| g.pair_ixs.len() >= 2)
            .collect();
    }

    // Algorithm 4 — unused allocations: per device, advance a kernel
    // cursor alongside the (allocation-ordered) pairings; an allocation
    // whose lifetime precedes the next kernel on its device can never
    // have been used.
    for dev in 0..view.num_devices as usize {
        let kernels = &view.kernels_by_device[dev];
        let mut kx = 0usize;
        for &px in &view.pairs_by_device[dev] {
            let pair = &view.pairs[px as usize];
            let alloc_start = view.op(pair.alloc).span.start;
            while kx < kernels.len() && view.kernels[kernels[kx] as usize].span.end < alloc_start {
                kx += 1;
            }
            let lifetime_end = view.pair_lifetime_end(pair);
            if kx == kernels.len() || view.kernels[kernels[kx] as usize].span.start > lifetime_end {
                out.unused_allocs.push(px);
            }
        }
    }

    // Algorithm 5 — unused transfers: per device, a candidate map from
    // source address to the last transfer that wrote from it; kernel
    // completions clear the candidates (the kernel may have consumed
    // the data).
    for dev in 0..view.num_devices as usize {
        let kernels = &view.kernels_by_device[dev];
        let mut kx = 0usize;
        let mut candidates: FnvHashMap<u64, OpIx> = FnvHashMap::default();
        for &tx in &view.tx_by_device[dev] {
            let e = view.op(tx);
            while kx < kernels.len() && view.kernels[kernels[kx] as usize].span.end < e.span.start {
                kx += 1;
                candidates.clear();
            }
            if kx == kernels.len() {
                out.unused_transfers
                    .push((tx, UnusedTransferReason::AfterLastKernel));
            } else if view.kernels[kernels[kx] as usize].span.start > e.span.start {
                if let Some(&cand) = candidates.get(&e.src_addr) {
                    out.unused_transfers
                        .push((cand, UnusedTransferReason::OverwrittenBeforeUse));
                }
                candidates.insert(e.src_addr, tx);
            } else {
                // Overlaps a running kernel (asynchronous mapping):
                // conservatively forget all candidates.
                candidates.clear();
            }
        }
    }

    out
}

/// Run the fused engine end to end: indexed detection plus owned
/// materialization. Equivalent to — and the implementation behind —
/// [`Findings::detect`].
pub fn detect(view: &EventView<'_>) -> Findings {
    detect_indexed(view).resolve(view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::EventFactory;

    #[test]
    fn fused_matches_standalone_on_mixed_trace() {
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(30, 60, 0), f.kernel(130, 160, 0)];
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.h2d(10, 0, 0x1000, 7, 64),
            f.h2d(20, 0, 0x1000, 7, 64), // duplicate
            f.d2h(70, 0, 0x1000, 7, 64), // round trip back to host
            f.delete(80, 0, 0x1000, 0xd000, 64),
            f.alloc(90, 0, 0x1000, 0xd000, 64), // repeated alloc
            f.h2d(100, 0, 0x1000, 9, 64),
            f.delete(170, 0, 0x1000, 0xd000, 64),
            f.h2d(180, 0, 0x2000, 11, 64), // after last kernel
        ];
        let view = EventView::new(&ops, &kernels, 1);
        let fused = detect(&view);
        let separate = Findings::detect_separate(&ops, &kernels, 1);
        assert_eq!(
            serde_json::to_string(&fused).unwrap(),
            serde_json::to_string(&separate).unwrap()
        );
        assert_eq!(fused.counts(), separate.counts());
        assert_eq!(
            detect_indexed(&view).counts(&view),
            separate.counts(),
            "indexed counts must not require materialization"
        );
    }

    #[test]
    fn empty_view_is_clean() {
        let view = EventView::new(&[], &[], 1);
        let findings = detect(&view);
        assert!(findings.counts().is_clean());
    }

    #[test]
    fn view_from_log_uses_memoized_hydration() {
        use odp_model::{CodePtr, DataOpKind, DeviceId, SimTime, TargetKind, TimeSpan};
        let mut log = TraceLog::new();
        let span = |a: u64, b: u64| TimeSpan::new(SimTime(a), SimTime(b));
        for t in [0u64, 100] {
            log.record_data_op(
                DataOpKind::Transfer,
                DeviceId::HOST,
                DeviceId::target(0),
                0x1000,
                0xd000,
                256,
                Some(0xAB),
                span(t, t + 10),
                CodePtr(0x1),
            );
            log.record_target(
                TargetKind::Kernel,
                DeviceId::target(0),
                span(t + 20, t + 40),
                CodePtr(0x2),
            );
        }
        let before = log.sort_count();
        let view = EventView::from_log(&log);
        let findings = detect(&view);
        assert_eq!(findings.counts().dd, 1);
        // A second view re-borrows the same hydration: no further sorts.
        let view2 = EventView::from_log(&log);
        let _ = detect(&view2);
        assert_eq!(log.sort_count(), before + 2, "one sort per event family");
    }
}
