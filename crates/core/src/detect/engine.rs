//! The fused single-pass detection engine.
//!
//! The five standalone detectors (`find_duplicate_transfers`,
//! `find_round_trips`, `find_repeated_allocs`, `find_unused_allocs`,
//! `find_unused_transfers`) each re-walk the full event log and each
//! rebuild their own side structures: Algorithms 1 and 2 both build a
//! `(hash, dest_device)` reception map, Algorithms 3 and 4 both run
//! `alloc_delete_pairs` (cloning every alloc/delete event), and
//! Algorithms 4 and 5 both re-partition events by device. At
//! million-event scale that redundancy dominates analysis time.
//!
//! This engine hydrates the trace **once** into a shared [`EventView`]
//! — a thin facade over the struct-of-arrays
//! [`odp_trace::ColumnarView`] (one dense column per event field) plus
//! the side tables every algorithm needs (per-`(hash, dest)` reception
//! queues, alloc/delete pairing, per-device partitions) — built in a
//! single linear indexing sweep. Detection then runs one more
//! chronological sweep in which all five algorithms advance as
//! incremental state machines reading only the columns they need (a
//! hash here, a start time there — never a whole ~96-byte row),
//! producing *index-based* findings ([`IndexFindings`]): no event is
//! materialized during detection. Owned [`Findings`] (byte-identical
//! to the standalone detectors' output, group order included) are
//! gathered from the columns only at the report boundary via
//! [`IndexFindings::resolve`].
//!
//! Equivalence with the five independent passes is enforced by the
//! differential test suite in `crates/core/tests/fused_differential.rs`
//! (randomized traces, exact JSON equality).

use crate::detect::pairing::AllocDeletePair;
use crate::detect::{
    Confidence, DuplicateTransferGroup, Findings, IssueCounts, RepeatedAllocGroup, RoundTrip,
    RoundTripGroup, TripList, UnusedAlloc, UnusedTransfer, UnusedTransferReason,
};
use odp_hash::fnv::FnvHashMap;
use odp_model::{DataOpEvent, DataOpKind, DeviceId, HashVal, SimTime, TargetEvent};
use odp_trace::{ColumnarView, DataOpColumns, TargetColumns, TraceLog};

/// Index of an event in the view's data-op columns (chronological
/// order).
pub type OpIx = u32;

/// Upper bound on a *plausible* target-device index. Device numbers come
/// from an untrusted trace: a corrupted callback can name device
/// `0x4000_0000`, and sizing per-device tables from such an id would
/// allocate billions of entries. Indices at or beyond this cap are
/// treated as out-of-range (quarantined from the per-device algorithms
/// and counted in [`OutOfRangeEvents`]) by both
/// [`crate::analysis::infer_num_devices`] and the streaming engine's
/// grow-on-demand device machines.
pub const MAX_PLAUSIBLE_DEVICES: u32 = 4096;

/// Events that name a target device at or beyond the view's `num_devices`
/// and are therefore excluded from the per-device algorithms (4 and 5).
///
/// Historically these were dropped *silently*, which skews Algorithms 4/5
/// without a trace: a kernel on an out-of-range device can neither mark
/// allocations used nor clear transfer candidates. The view now counts
/// what it drops so callers can surface a warning ([`OutOfRangeEvents::warning`]).
/// Algorithms 1–3 are unaffected (they key on [`DeviceId`] directly and
/// never index a per-device table).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutOfRangeEvents {
    /// Kernel executions on devices `>= num_devices`.
    pub kernels: usize,
    /// Transfers whose destination device is `>= num_devices`.
    pub transfers: usize,
    /// Allocations on devices `>= num_devices`.
    pub allocs: usize,
}

impl OutOfRangeEvents {
    /// Total dropped events.
    pub fn total(&self) -> usize {
        self.kernels + self.transfers + self.allocs
    }

    /// A console warning describing the drop, or `None` when nothing was
    /// dropped.
    pub fn warning(&self, num_devices: u32) -> Option<String> {
        if self.total() == 0 {
            return None;
        }
        Some(format!(
            "warning: {} event(s) name target devices >= the analyzed device count ({}); \
             Algorithms 4/5 exclude them ({} kernel(s), {} transfer(s), {} allocation(s))",
            self.total(),
            num_devices,
            self.kernels,
            self.transfers,
            self.allocs
        ))
    }
}

/// One reception queue key: a `(hash, dest_device)` pair. The queue's
/// events live in the view's CSR arrays (`rx_events`/`rx_bounds`) —
/// one flat allocation for every queue instead of a `Vec` per slot,
/// which on a trace with mostly-unique hashes would mean one heap
/// allocation per transfer. Shared by Algorithms 1 (whole queue =
/// duplicate group) and 2 (FIFO of pending receptions).
struct RxSlot {
    hash: HashVal,
    dest: DeviceId,
}

/// Avalanche mix of a reception-queue key for the Bloom filter: every
/// input bit influences the selected bit, so structured hash values
/// (sequential counters, small pools) spread evenly.
#[inline]
fn rx_key_mix(hash: HashVal, dev: DeviceId) -> u64 {
    let mut x = hash
        .0
        .wrapping_add((dev.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x
}

/// Open-addressed `(hash, dest_device)` → `rx_slots` index: linear
/// probing over a power-of-two table sized to ≤50% load for the
/// trace's hashed-transfer count (so it never grows), `u32::MAX` =
/// empty. The probe position comes from [`rx_key_mix`], which the
/// build pass and Algorithm 2 already compute for the Bloom filter —
/// indexing a key costs no second hash. Keys live in `rx_slots`
/// itself; the table stores only the 4-byte slot index, so a probe
/// touches one dense array.
struct RxIndex {
    mask: usize,
    slots: Box<[u32]>,
}

impl RxIndex {
    fn with_capacity(keys: usize) -> RxIndex {
        let cap = (keys * 2).next_power_of_two().max(16);
        RxIndex {
            mask: cap - 1,
            slots: vec![u32::MAX; cap].into_boxed_slice(),
        }
    }

    #[inline]
    fn get(&self, mix: u64, hash: HashVal, dest: DeviceId, rx_slots: &[RxSlot]) -> Option<u32> {
        let mut i = mix as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s == u32::MAX {
                return None;
            }
            let key = &rx_slots[s as usize];
            if key.hash == hash && key.dest == dest {
                return Some(s);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Find the slot for a key, appending a fresh [`RxSlot`] (preserving
    /// first-seen slot order) when the key is new.
    #[inline]
    fn find_or_insert(
        &mut self,
        mix: u64,
        hash: HashVal,
        dest: DeviceId,
        rx_slots: &mut Vec<RxSlot>,
    ) -> u32 {
        let mut i = mix as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s == u32::MAX {
                let slot = rx_slots.len() as u32;
                rx_slots.push(RxSlot { hash, dest });
                self.slots[i] = slot;
                return slot;
            }
            let key = &rx_slots[s as usize];
            if key.hash == hash && key.dest == dest {
                return s;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// Avalanche mix of an allocation identity (`(device, device_addr)`) for
/// [`OpenAllocIndex`] probing.
#[inline]
fn open_key_mix(dev: DeviceId, addr: u64) -> u64 {
    let mut x = addr.wrapping_add((dev.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x
}

/// Open-addressed `(device, device_addr)` → open-pairing index for the
/// build pass's alloc/delete matching: linear probing, `u32::MAX` =
/// empty, sized to ≤50% load for the trace's alloc count so it never
/// grows. Keys are never removed — a slot always holds the *latest*
/// pairing opened at its address (a fresh allocation shadows a stale
/// entry by overwriting the slot), and a delete checks whether that
/// pairing is still open instead of consuming the entry, which keeps
/// the table tombstone-free. Keys live in the event columns themselves
/// (`pairs[slot].alloc` points back at the allocation's row), so the
/// table stores only a 4-byte pairing index.
struct OpenAllocIndex {
    mask: usize,
    slots: Box<[u32]>,
}

impl OpenAllocIndex {
    fn with_capacity(keys: usize) -> OpenAllocIndex {
        let cap = (keys * 2).next_power_of_two().max(16);
        OpenAllocIndex {
            mask: cap - 1,
            slots: vec![u32::MAX; cap].into_boxed_slice(),
        }
    }

    /// The table slot for an allocation identity: either empty
    /// (`u32::MAX`) or holding the latest pairing opened at this key.
    /// The caller reads it (delete) or overwrites it (alloc).
    #[inline]
    fn slot_mut(
        &mut self,
        dev: DeviceId,
        addr: u64,
        pairs: &[IdxPair],
        ops: &DataOpColumns,
    ) -> &mut u32 {
        let mut i = open_key_mix(dev, addr) as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s == u32::MAX {
                return &mut self.slots[i];
            }
            let ox = pairs[s as usize].alloc as usize;
            if ops.dest_devices[ox] == dev && ops.dest_addrs[ox] == addr {
                return &mut self.slots[i];
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// An alloc/delete pairing by event index (the zero-copy counterpart of
/// [`AllocDeletePair`]). Shared by Algorithms 3 and 4.
struct IdxPair {
    alloc: OpIx,
    delete: Option<OpIx>,
}

/// The columnar event source behind an [`EventView`]: either the trace
/// log's memoized hydration (borrowed — the zero-copy `from_log` path)
/// or columns built from caller-provided row slices.
enum ColsSource<'a> {
    Borrowed(&'a ColumnarView),
    Owned(Box<ColumnarView>),
}

/// The shared, hydrated, indexed view of one trace.
///
/// A thin facade over the struct-of-arrays [`ColumnarView`] (borrowed
/// from the trace log's memoized hydration, or built from caller-owned
/// slices) carrying the side tables that the fused sweep shares across
/// all five algorithms. Building the view is one linear pass over the
/// columns; the sweeps then stream over exactly the columns each state
/// machine reads.
pub struct EventView<'a> {
    /// Columnar events, `(start, log order)`-sorted.
    source: ColsSource<'a>,
    /// Number of target devices analyzed (Algorithms 4/5 iterate these).
    pub num_devices: u32,
    /// Reception queue keys in first-seen key order.
    rx_slots: Vec<RxSlot>,
    /// CSR storage for the reception queues: slot `s` holds the
    /// chronological event indices `rx_events[rx_bounds[s]..rx_bounds[s+1]]`.
    rx_events: Vec<OpIx>,
    /// Queue boundaries into `rx_events` (`rx_slots.len() + 1` entries).
    rx_bounds: Vec<u32>,
    /// `(hash, dest_device)` → index into `rx_slots`.
    rx_index: RxIndex,
    /// One-hash Bloom filter over the reception-queue keys (~8 bits per
    /// key). Algorithm 2 probes the reception index once per hashed
    /// transfer, and on real traces almost all probes miss: the filter
    /// turns each of those cache-missing map lookups into one hit in a
    /// table that fits L2. False positives only cost the map lookup
    /// they would have done anyway.
    rx_filter: Box<[u64]>,
    /// Chronological indices of hashed transfers (the only events
    /// Algorithms 1/2 look at), so the round-trip sweep skips straight
    /// over allocs, deletes, and hashless transfers.
    hashed_transfers: Vec<OpIx>,
    /// For each hashed transfer (parallel to `hashed_transfers`), the
    /// `rx_slots` index it was enqueued into — precomputed so the sweep
    /// dequeues without a second hash lookup.
    dest_slot: Vec<u32>,
    /// For each hashed transfer (parallel to `hashed_transfers`), the
    /// [`rx_key_mix`] of its `(hash, src_device)` key — the probe
    /// Algorithm 2 makes against the Bloom filter. Precomputed in the
    /// build pass so the sweep's reject phase is a pure scan of two
    /// dense arrays (mix column + filter words), no hash loads, no
    /// mixing.
    src_mix: Vec<u64>,
    /// Alloc/delete pairings, in allocation order.
    pairs: Vec<IdxPair>,
    /// Per-target-device transfer indices (Algorithm 5 input).
    tx_by_device: Vec<Vec<OpIx>>,
    /// Per-target-device kernel indices into `kernels` (Algorithms 4/5).
    kernels_by_device: Vec<Vec<u32>>,
    /// Per-target-device pairing indices into `pairs` (Algorithm 4).
    pairs_by_device: Vec<Vec<u32>>,
    /// Events excluded from the per-device tables (device `>= num_devices`).
    out_of_range: OutOfRangeEvents,
}

impl<'a> EventView<'a> {
    /// Build the view from sorted event slices: the events are
    /// scattered into owned columns, then indexed. The `from_log` path
    /// borrows the log's memoized columns instead.
    pub fn new(
        data_ops: &'a [DataOpEvent],
        kernels: &'a [TargetEvent],
        num_devices: u32,
    ) -> EventView<'a> {
        Self::build(
            ColsSource::Owned(Box::new(ColumnarView::from_events(data_ops, kernels))),
            num_devices,
        )
    }

    /// Build the view over borrowed columnar hydration (zero-copy).
    pub fn over(cols: &'a ColumnarView, num_devices: u32) -> EventView<'a> {
        Self::build(ColsSource::Borrowed(cols), num_devices)
    }

    /// The single indexing pass: stream over the kind/hash/device/addr
    /// columns and build every side table the five sweeps share.
    fn build(source: ColsSource<'a>, num_devices: u32) -> EventView<'a> {
        let cols = match &source {
            ColsSource::Borrowed(c) => *c,
            ColsSource::Owned(b) => b,
        };
        let ops = &cols.ops;
        let kerns = &cols.kernels;
        let nd = num_devices as usize;

        let mut out_of_range = OutOfRangeEvents::default();

        let mut kernels_by_device: Vec<Vec<u32>> = vec![Vec::new(); nd];
        for (kx, d) in kerns.devices.iter().enumerate() {
            if let Some(ix) = d.target_index() {
                if ix < nd {
                    kernels_by_device[ix].push(kx as u32);
                } else {
                    out_of_range.kernels += 1;
                }
            }
        }

        // A cheap counting pass over two dense columns (no hashing)
        // sizes the tables up front, so the build pass never rehashes.
        let mut n_hashed_tx = 0usize;
        let mut n_allocs = 0usize;
        for (kind, hash) in ops.kinds.iter().zip(&ops.hashes) {
            if *kind == DataOpKind::Transfer && hash.is_some() {
                n_hashed_tx += 1;
            } else if *kind == DataOpKind::Alloc {
                n_allocs += 1;
            }
        }

        let mut rx_slots: Vec<RxSlot> = Vec::with_capacity(n_hashed_tx.min(1 << 16));
        let mut rx_counts: Vec<u32> = Vec::with_capacity(n_hashed_tx.min(1 << 16));
        let mut rx_index = RxIndex::with_capacity(n_hashed_tx);
        let filter_words = ((n_hashed_tx * 8).next_power_of_two() / 64).clamp(16, 1 << 17);
        let mut rx_filter = vec![0u64; filter_words].into_boxed_slice();
        let mut hashed_transfers: Vec<OpIx> = Vec::with_capacity(n_hashed_tx);
        let mut dest_slot: Vec<u32> = Vec::with_capacity(n_hashed_tx);
        let mut src_mix: Vec<u64> = Vec::with_capacity(n_hashed_tx);
        let mut pairs: Vec<IdxPair> = Vec::with_capacity(n_allocs);
        let mut open = OpenAllocIndex::with_capacity(n_allocs);
        let mut tx_by_device: Vec<Vec<OpIx>> = vec![Vec::new(); nd];
        let mut pairs_by_device: Vec<Vec<u32>> = vec![Vec::new(); nd];

        // Reception-queue indexing runs as its own phased sub-pass: at
        // million-event scale the slot index outgrows the cache and
        // every probe is a dependent memory miss, so burying the probes
        // inside the full per-kind loop body serializes them — the
        // instruction window fills with bookkeeping before the next
        // miss can issue. Splitting (a) a sequential collect of the
        // hashed transfers and their key mixes from (b) a tight
        // probe-only loop keeps many misses in flight at once.
        let mut dest_mix: Vec<u64> = Vec::with_capacity(n_hashed_tx);
        for (ox, &kind) in ops.kinds.iter().enumerate() {
            if kind == DataOpKind::Transfer {
                if let Some(hash) = ops.hashes[ox] {
                    let mix = rx_key_mix(hash, ops.dest_devices[ox]);
                    rx_filter[(mix as usize >> 6) & (filter_words - 1)] |= 1 << (mix % 64);
                    hashed_transfers.push(ox as OpIx);
                    dest_mix.push(mix);
                    src_mix.push(rx_key_mix(hash, ops.src_devices[ox]));
                }
            }
        }
        for (tix, &ox) in hashed_transfers.iter().enumerate() {
            let Some(hash) = ops.hashes[ox as usize] else {
                continue; // collected above: always hashed
            };
            let dest = ops.dest_devices[ox as usize];
            let slot = rx_index.find_or_insert(dest_mix[tix], hash, dest, &mut rx_slots);
            dest_slot.push(slot);
        }
        drop(dest_mix);
        rx_counts.resize(rx_slots.len(), 0);
        for &slot in &dest_slot {
            rx_counts[slot as usize] += 1;
        }

        for (ox, &kind) in ops.kinds.iter().enumerate() {
            let ox = ox as OpIx;
            match kind {
                DataOpKind::Transfer => {
                    let dest = ops.dest_devices[ox as usize];
                    if let Some(ix) = dest.target_index() {
                        if ix < nd {
                            tx_by_device[ix].push(ox);
                        } else {
                            out_of_range.transfers += 1;
                        }
                    }
                }
                DataOpKind::Alloc => {
                    let dest = ops.dest_devices[ox as usize];
                    let pair_ix = pairs.len() as u32;
                    pairs.push(IdxPair {
                        alloc: ox,
                        delete: None,
                    });
                    // A new allocation at an address shadows any stale
                    // open entry (same contract as `alloc_delete_pairs`).
                    *open.slot_mut(dest, ops.dest_addrs[ox as usize], &pairs, ops) = pair_ix;
                    if let Some(ix) = dest.target_index() {
                        if ix < nd {
                            pairs_by_device[ix].push(pair_ix);
                        } else {
                            out_of_range.allocs += 1;
                        }
                    }
                }
                DataOpKind::Delete => {
                    let dest = ops.dest_devices[ox as usize];
                    let pix = *open.slot_mut(dest, ops.dest_addrs[ox as usize], &pairs, ops);
                    if pix != u32::MAX {
                        let pair = &mut pairs[pix as usize];
                        // Still open: this delete closes it. Already
                        // closed (and not re-opened since): a double
                        // free, which pairs with nothing.
                        if pair.delete.is_none() {
                            pair.delete = Some(ox);
                        }
                    }
                }
                _ => {}
            }
        }

        // Second, hash-free pass: prefix-sum the queue lengths into CSR
        // bounds and scatter the hashed transfers into their queues —
        // chronological within each queue because `hashed_transfers` is.
        let mut rx_bounds: Vec<u32> = Vec::with_capacity(rx_slots.len() + 1);
        let mut acc = 0u32;
        rx_bounds.push(0);
        for &c in &rx_counts {
            acc += c;
            rx_bounds.push(acc);
        }
        let mut cursor: Vec<u32> = rx_bounds[..rx_slots.len()].to_vec();
        let mut rx_events: Vec<OpIx> = vec![0; hashed_transfers.len()];
        for (&ox, &slot) in hashed_transfers.iter().zip(&dest_slot) {
            let c = &mut cursor[slot as usize];
            rx_events[*c as usize] = ox;
            *c += 1;
        }

        EventView {
            source,
            num_devices,
            rx_slots,
            rx_events,
            rx_bounds,
            rx_index,
            rx_filter,
            hashed_transfers,
            dest_slot,
            src_mix,
            pairs,
            tx_by_device,
            kernels_by_device,
            pairs_by_device,
            out_of_range,
        }
    }

    /// Events the per-device tables excluded because they name target
    /// devices `>= num_devices`. Non-zero counts mean Algorithms 4/5 are
    /// running over a subset of the trace — surface
    /// [`OutOfRangeEvents::warning`] rather than ignoring it.
    pub fn out_of_range(&self) -> OutOfRangeEvents {
        self.out_of_range
    }

    /// Build a view over a trace log's memoized columnar hydration
    /// (zero-copy borrow), inferring the device count from the columns.
    pub fn from_log(log: &'a TraceLog) -> EventView<'a> {
        let cols = log.columnar();
        let num_devices = crate::analysis::infer_num_devices_columnar(cols);
        EventView::over(cols, num_devices)
    }

    /// The columnar event source (shared by every consumer of this
    /// view: the fused sweeps, streaming finalize, resolution).
    #[inline]
    pub fn cols(&self) -> &ColumnarView {
        match &self.source {
            ColsSource::Borrowed(c) => c,
            ColsSource::Owned(b) => b,
        }
    }

    /// Data-op columns, `(start, log order)`-sorted.
    #[inline]
    pub fn ops(&self) -> &DataOpColumns {
        &self.cols().ops
    }

    /// Kernel-execution columns, `(start, log order)`-sorted.
    #[inline]
    pub fn kernels(&self) -> &TargetColumns {
        &self.cols().kernels
    }

    /// Number of data-op events in the view.
    #[inline]
    pub fn op_count(&self) -> usize {
        self.ops().len()
    }

    /// Gather the event behind an index into an owned row (report
    /// boundary only — the sweeps read individual columns instead).
    #[inline]
    pub fn op(&self, ix: OpIx) -> DataOpEvent {
        self.ops().event(ix as usize)
    }

    /// Reception queue `s`: chronological hashed-transfer indices with
    /// the slot's `(hash, dest_device)` key (CSR slice).
    #[inline]
    fn rx_queue(&self, s: u32) -> &[OpIx] {
        &self.rx_events
            [self.rx_bounds[s as usize] as usize..self.rx_bounds[s as usize + 1] as usize]
    }

    /// End of a pairing's lifetime (delete end, or program end for
    /// never-freed allocations) — `AllocDeletePair::lifetime_end`.
    fn pair_lifetime_end(&self, p: &IdxPair) -> SimTime {
        p.delete
            .map(|d| self.ops().ends[d as usize])
            .unwrap_or(SimTime(u64::MAX))
    }

    fn resolve_pair(&self, p: &IdxPair) -> AllocDeletePair {
        AllocDeletePair {
            alloc: self.op(p.alloc),
            delete: p.delete.map(|d| self.op(d)),
        }
    }
}

/// Index-based findings: what the fused sweep produces. Events are
/// referenced by their chronological index ([`OpIx`]) into the view —
/// resolve one with [`EventView::op`] (its `.id` is the stable
/// [`odp_model::EventId`]). [`IndexFindings::counts`] computes the Table
/// 1 issue counts without materializing a single event clone;
/// [`IndexFindings::resolve`] materializes owned [`Findings`] for
/// reports.
#[derive(Default)]
pub struct IndexFindings {
    /// Algorithm 1: duplicate groups as `rx_slots` indices.
    duplicates: Vec<u32>,
    /// Algorithm 2: round-trip groups.
    round_trips: Vec<IdxRoundTripGroup>,
    /// Flat arena of `(outbound leg, completing reception, next)` trip
    /// records: every group's trips as an intrusive chain, so a trace
    /// with thousands of one-trip groups costs zero per-group heap
    /// allocations (`u32::MAX` terminates a chain).
    rt_trips: Vec<(OpIx, OpIx, u32)>,
    /// Algorithm 3: repeated-allocation groups.
    repeated_allocs: Vec<IdxRepeatedAllocGroup>,
    /// Flat arena of `(pair index, next)` records for the
    /// repeated-alloc groups' member chains — the same intrusive-chain
    /// trick as `rt_trips`. Traces dominated by unique allocation
    /// sites (most of them) would otherwise pay one heap-allocated
    /// single-element `Vec` per site; the arena is one allocation
    /// total, and singleton chains that never reach group size 2 just
    /// sit unreferenced in it.
    ra_pairs: Vec<(u32, u32)>,
    /// Algorithm 4: unused allocations as `pairs` indices.
    unused_allocs: Vec<u32>,
    /// Algorithm 5: unused transfers.
    unused_transfers: Vec<(OpIx, UnusedTransferReason)>,
}

struct IdxRoundTripGroup {
    hash: HashVal,
    src: DeviceId,
    dest: DeviceId,
    /// Chronological trip chain through [`IndexFindings::rt_trips`].
    head: u32,
    tail: u32,
    len: u32,
}

#[derive(Clone, Copy)]
struct IdxRepeatedAllocGroup {
    host_addr: u64,
    device: DeviceId,
    bytes: u64,
    /// Allocation-ordered member chain through
    /// [`IndexFindings::ra_pairs`] (`u32::MAX` terminates).
    head: u32,
    tail: u32,
    len: u32,
}

impl IndexFindings {
    /// Table 1 issue counts, straight from the indices (no event
    /// materialization).
    pub fn counts(&self, view: &EventView<'_>) -> IssueCounts {
        IssueCounts {
            dd: self
                .duplicates
                .iter()
                .map(|&s| view.rx_queue(s).len().saturating_sub(1))
                .sum(),
            rt: self.round_trips.iter().map(|g| g.len as usize).sum(),
            ra: self
                .repeated_allocs
                .iter()
                .map(|g| (g.len as usize).saturating_sub(1))
                .sum(),
            ua: self.unused_allocs.len(),
            ut: self.unused_transfers.len(),
        }
    }

    /// Materialize owned findings — the one place events are cloned,
    /// and only the events that appear in findings.
    pub fn resolve(&self, view: &EventView<'_>) -> Findings {
        Findings {
            duplicates: self
                .duplicates
                .iter()
                .map(|&s| {
                    let slot = &view.rx_slots[s as usize];
                    DuplicateTransferGroup {
                        hash: slot.hash,
                        dest_device: slot.dest,
                        events: view.rx_queue(s).iter().map(|&ox| view.op(ox)).collect(),
                        confidence: Confidence::Confirmed,
                    }
                })
                .collect(),
            round_trips: self
                .round_trips
                .iter()
                .map(|g| RoundTripGroup {
                    hash: g.hash,
                    src_device: g.src,
                    dest_device: g.dest,
                    trips: {
                        // Single-trip groups dominate realistic traces;
                        // building them inline skips one heap Vec per
                        // group (the malloc otherwise costs more than
                        // the gather at million-event scale).
                        let gather = |t: u32| {
                            let (tx, rx, _) = self.rt_trips[t as usize];
                            RoundTrip {
                                tx: view.op(tx),
                                rx: view.op(rx),
                                spilled: false,
                            }
                        };
                        if g.len == 1 {
                            TripList::One([gather(g.head)])
                        } else {
                            let mut trips = Vec::with_capacity(g.len as usize);
                            let mut t = g.head;
                            while t != u32::MAX {
                                trips.push(gather(t));
                                t = self.rt_trips[t as usize].2;
                            }
                            TripList::Many(trips)
                        }
                    },
                    confidence: Confidence::Confirmed,
                })
                .collect(),
            repeated_allocs: self
                .repeated_allocs
                .iter()
                .map(|g| RepeatedAllocGroup {
                    host_addr: g.host_addr,
                    device: g.device,
                    bytes: g.bytes,
                    pairs: {
                        let mut pairs = Vec::with_capacity(g.len as usize);
                        let mut p = g.head;
                        while p != u32::MAX {
                            let (px, next) = self.ra_pairs[p as usize];
                            pairs.push(view.resolve_pair(&view.pairs[px as usize]));
                            p = next;
                        }
                        pairs
                    },
                    confidence: Confidence::Confirmed,
                })
                .collect(),
            unused_allocs: self
                .unused_allocs
                .iter()
                .map(|&px| UnusedAlloc {
                    pair: view.resolve_pair(&view.pairs[px as usize]),
                    confidence: Confidence::Confirmed,
                })
                .collect(),
            unused_transfers: self
                .unused_transfers
                .iter()
                .map(|&(ox, reason)| UnusedTransfer {
                    event: view.op(ox),
                    reason,
                    confidence: Confidence::Confirmed,
                })
                .collect(),
        }
    }
}

/// Run all five detection algorithms over the view in one fused
/// chronological sweep, returning index-based findings.
///
/// The invariant every state machine below relies on: the view's
/// data-op and kernel columns are chronological (start, then log
/// order), and the per-device / per-key side tables preserve that
/// order as subsequences. Each algorithm therefore observes events in
/// exactly the order the standalone detectors do, and the outputs
/// match them byte for byte — group order, event order within groups,
/// everything. The sweeps read only the columns they need (hash,
/// device, address, time), streaming over dense arrays.
pub fn detect_indexed(view: &EventView<'_>) -> IndexFindings {
    detect_indexed_with(view, 1)
}

/// [`detect_indexed`] with an explicit worker count. `threads == 1` is
/// the sequential sweep; `threads > 1` partitions the work across
/// `std::thread::scope` workers (see `detect_parallel`) and merges
/// deterministically — the output is byte-identical either way.
pub fn detect_indexed_with(view: &EventView<'_>, threads: usize) -> IndexFindings {
    if threads <= 1 {
        detect_sequential(view)
    } else {
        detect_parallel(view, threads)
    }
}

/// The sequential fused sweep: all five algorithms, one worker.
fn detect_sequential(view: &EventView<'_>) -> IndexFindings {
    let mut out = IndexFindings {
        duplicates: alg1_duplicates(view),
        ..Default::default()
    };
    let trips = alg2_scan(view, 0, 1);
    alg2_link_groups(view, &trips, &mut out);
    let part = alg3_scan(view, 0, 1);
    alg3_merge(vec![part], &mut out);
    for dev in 0..view.num_devices as usize {
        alg4_device(view, dev, &mut out.unused_allocs);
        alg5_device(view, dev, &mut out.unused_transfers);
    }
    out
}

/// The partitioned fused sweep. The five algorithms decompose without
/// sharing mutable state:
///
/// - Algorithm 2 partitions **by hash**: a transfer with hash `h` only
///   reads the `(h, src)` queue cursor and advances the `(h, dest)`
///   cursor, so per-hash partitions never touch each other's cursors.
///   Workers emit raw trips tagged with the transfer's sweep position;
///   a sort on that position plus [`alg2_link_groups`] rebuilds group
///   creation order exactly.
/// - Algorithm 3 partitions by allocation key; merged groups sort by
///   their first member's pair index (= first-seen key order).
/// - Algorithms 4/5 partition per device; results concatenate in
///   device order.
/// - Algorithm 1 is a trivial slot scan and stays on this thread.
///
/// Workers claim jobs from a shared atomic cursor, so a skewed device
/// or hash partition does not idle the rest of the pool.
fn detect_parallel(view: &EventView<'_>, threads: usize) -> IndexFindings {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Clone, Copy)]
    enum Job {
        Rt(usize),
        Ra(usize),
        Ua(usize),
        Ut(usize),
    }
    enum JobOut {
        Trips(Vec<(u32, OpIx, OpIx)>),
        Allocs(RaPart),
        UnusedAllocs(Vec<u32>),
        UnusedTransfers(Vec<(OpIx, UnusedTransferReason)>),
    }

    let nparts = threads;
    let nd = view.num_devices as usize;
    let mut jobs: Vec<Job> = Vec::with_capacity(2 * nparts + 2 * nd);
    jobs.extend((0..nparts).map(Job::Rt));
    jobs.extend((0..nparts).map(Job::Ra));
    jobs.extend((0..nd).map(Job::Ua));
    jobs.extend((0..nd).map(Job::Ut));

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<JobOut>> = Vec::new();
    slots.resize_with(jobs.len(), || None);

    let mut out = IndexFindings::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads.min(jobs.len()))
            .map(|_| {
                s.spawn(|| {
                    let mut mine: Vec<(usize, JobOut)> = Vec::new();
                    loop {
                        let j = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(j) else {
                            break;
                        };
                        let produced = match *job {
                            Job::Rt(p) => JobOut::Trips(alg2_scan(view, p, nparts)),
                            Job::Ra(p) => JobOut::Allocs(alg3_scan(view, p, nparts)),
                            Job::Ua(d) => {
                                let mut v = Vec::new();
                                alg4_device(view, d, &mut v);
                                JobOut::UnusedAllocs(v)
                            }
                            Job::Ut(d) => {
                                let mut v = Vec::new();
                                alg5_device(view, d, &mut v);
                                JobOut::UnusedTransfers(v)
                            }
                        };
                        mine.push((j, produced));
                    }
                    mine
                })
            })
            .collect();

        // Algorithm 1 overlaps with the workers — it is a pure read.
        out.duplicates = alg1_duplicates(view);

        for h in handles {
            let mine = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            for (j, produced) in mine {
                slots[j] = Some(produced);
            }
        }
    });

    // Deterministic merge, in job order (= partition order = device
    // order). A worker that found nothing still filled its slot.
    let mut trips: Vec<(u32, OpIx, OpIx)> = Vec::new();
    let mut ra_parts: Vec<RaPart> = Vec::new();
    for produced in slots.into_iter().flatten() {
        match produced {
            JobOut::Trips(t) => trips.extend(t),
            JobOut::Allocs(p) => ra_parts.push(p),
            JobOut::UnusedAllocs(v) => out.unused_allocs.extend(v),
            JobOut::UnusedTransfers(v) => out.unused_transfers.extend(v),
        }
    }
    // Per-partition trip lists are sweep-ordered; the global rebuild
    // needs the interleaving the sequential sweep would have seen.
    trips.sort_unstable_by_key(|&(tix, _, _)| tix);
    alg2_link_groups(view, &trips, &mut out);
    alg3_merge(ra_parts, &mut out);
    out
}

/// Algorithm 1 — duplicate transfers. The reception queues *are* the
/// groups: first-seen key order, chronological events.
fn alg1_duplicates(view: &EventView<'_>) -> Vec<u32> {
    (0..view.rx_slots.len() as u32)
        .filter(|&sx| view.rx_queue(sx).len() >= 2)
        .collect()
}

/// The Algorithm 2 partition a hash belongs to. Must depend on the
/// hash **only** (never the devices): a transfer reads its `(hash,
/// src)` queue and advances its `(hash, dest)` queue, so hash-sharded
/// cursors are private to one partition.
#[inline]
fn rt_part_of(hash: HashVal, nparts: usize) -> usize {
    ((hash.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % nparts
}

/// Algorithm 2 scan — round trips: one chronological sweep consuming
/// the shared reception queues through per-slot cursors (the
/// standalone detector's FIFO pops, without cloning the queues).
/// Returns completed trips as `(sweep position, outbound leg,
/// completing reception)`; group linking happens afterwards in
/// [`alg2_link_groups`] so partitioned scans merge exactly.
///
/// The sweep is two-phase over chunks: phase one probes the Bloom
/// filter for a whole chunk of precomputed key mixes (a pure scan with
/// no dependent loads, so the misses — the overwhelmingly common case
/// of "this data never returns" — retire at memory bandwidth), phase
/// two runs the queue machinery only for the survivors. Bloom-rejected
/// transfers have zero state effect, which is what makes the split
/// exact.
fn alg2_scan(view: &EventView<'_>, part: usize, nparts: usize) -> Vec<(u32, OpIx, OpIx)> {
    let ops = view.ops();
    let mut heads: Vec<u32> = vec![0; view.rx_slots.len()];
    let mut trips: Vec<(u32, OpIx, OpIx)> = Vec::new();
    let fmask = view.rx_filter.len() - 1;
    let n = view.hashed_transfers.len();
    let mut hits: Vec<(u32, u32)> = Vec::new();
    let mut chunk = 0usize;
    while chunk < n {
        let end = (chunk + 256).min(n);
        // Phase one: Bloom probes for the whole chunk.
        hits.clear();
        for tix in chunk..end {
            let mix = view.src_mix[tix];
            if view.rx_filter[(mix as usize >> 6) & fmask] & (1 << (mix % 64)) != 0 {
                hits.push((tix as u32, u32::MAX));
            }
        }
        // Phase two: resolve the survivors' reception slots — read-only
        // probes with no cross-iteration dependency, so their cache
        // misses overlap instead of chaining.
        for hit in &mut hits {
            let tix = hit.0 as usize;
            let ox = view.hashed_transfers[tix];
            let Some(hash) = ops.hashes[ox as usize] else {
                continue; // hashed_transfers holds hashed events only
            };
            if nparts > 1 && rt_part_of(hash, nparts) != part {
                continue;
            }
            let src = ops.src_devices[ox as usize];
            // A pending reception at the transfer's *source* device
            // completes a round trip.
            if let Some(rx_slot) = view
                .rx_index
                .get(view.src_mix[tix], hash, src, &view.rx_slots)
            {
                hit.1 = rx_slot;
            }
        }
        // Phase three: the stateful queue machinery, survivors only.
        for &(tix, rx_slot) in &hits {
            if rx_slot == u32::MAX {
                continue;
            }
            let queue = view.rx_queue(rx_slot);
            if heads[rx_slot as usize] as usize >= queue.len() {
                continue; // queue exhausted: data never returns
            }
            let rx = queue[heads[rx_slot as usize] as usize];
            let ox = view.hashed_transfers[tix as usize];
            trips.push((tix, ox, rx));
            // Dequeue this transfer from its own destination's queue so
            // it cannot later complete a different round trip. The slot
            // was recorded at enqueue time: no second hash lookup.
            heads[view.dest_slot[tix as usize] as usize] += 1;
        }
        chunk = end;
    }
    trips
}

/// Open-addressed round-trip-group index for [`alg2_link_groups`]
/// (linear probing, `u32::MAX` = empty, keys live in the group
/// records). Sized for the trip count up front, so it never grows.
struct RtIndex {
    mask: usize,
    slots: Box<[u32]>,
}

impl RtIndex {
    fn with_capacity(keys: usize) -> RtIndex {
        let cap = (keys * 2).next_power_of_two().max(16);
        RtIndex {
            mask: cap - 1,
            slots: vec![u32::MAX; cap].into_boxed_slice(),
        }
    }

    /// Find the group for a `(hash, src, dest)` key, appending a fresh
    /// empty group (preserving first-seen order) when the key is new.
    #[inline]
    fn find_or_insert(
        &mut self,
        hash: HashVal,
        src: DeviceId,
        dest: DeviceId,
        groups: &mut Vec<IdxRoundTripGroup>,
    ) -> u32 {
        let mix = rx_key_mix(hash, src) ^ (dest.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let mut i = mix as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s == u32::MAX {
                let gx = groups.len() as u32;
                groups.push(IdxRoundTripGroup {
                    hash,
                    src,
                    dest,
                    head: u32::MAX,
                    tail: u32::MAX,
                    len: 0,
                });
                self.slots[i] = gx;
                return gx;
            }
            let g = &groups[s as usize];
            if g.hash == hash && g.src == src && g.dest == dest {
                return s;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// Build the Algorithm 2 groups from sweep-ordered trips: group
/// creation order is first-trip order, member chains are sweep order —
/// exactly what an interleaved scan-and-link would produce.
fn alg2_link_groups(view: &EventView<'_>, trips: &[(u32, OpIx, OpIx)], out: &mut IndexFindings) {
    let ops = view.ops();
    let mut group_ix = RtIndex::with_capacity(trips.len());
    out.rt_trips.reserve(trips.len());
    // Phased like the view's reception-queue indexing: (1) gather each
    // trip's grouping key from the columns (sequential-ish reads), (2) a
    // tight probe-only loop resolving group indices (keeps many table
    // misses in flight), (3) chain linking over the now-dense group and
    // trip arrays.
    let mut keyed: Vec<(HashVal, DeviceId, DeviceId, OpIx, OpIx)> = Vec::with_capacity(trips.len());
    for &(_, ox, rx) in trips {
        let Some(hash) = ops.hashes[ox as usize] else {
            continue; // trips reference hashed transfers only
        };
        keyed.push((
            hash,
            ops.src_devices[ox as usize],
            ops.dest_devices[ox as usize],
            ox,
            rx,
        ));
    }
    let mut gxs: Vec<u32> = Vec::with_capacity(keyed.len());
    for &(hash, src, dest, _, _) in &keyed {
        gxs.push(group_ix.find_or_insert(hash, src, dest, &mut out.round_trips));
    }
    for (&gx, &(_, _, _, ox, rx)) in gxs.iter().zip(&keyed) {
        let trip = out.rt_trips.len() as u32;
        out.rt_trips.push((ox, rx, u32::MAX));
        let group = &mut out.round_trips[gx as usize];
        if group.tail == u32::MAX {
            group.head = trip;
        } else {
            out.rt_trips[group.tail as usize].2 = trip;
        }
        group.tail = trip;
        group.len += 1;
    }
}

/// Avalanche mix of an Algorithm 3 allocation key ⟨host addr, device,
/// size⟩, used for both the open-addressed group index and the
/// partition split.
#[inline]
fn ra_key_mix(host_addr: u64, device: DeviceId, bytes: u64) -> u64 {
    let mut x = host_addr
        .wrapping_add((device.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(bytes.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x
}

/// Open-addressed allocation-key → group index for Algorithm 3 (same
/// shape as [`RxIndex`]: linear probing, `u32::MAX` = empty, keys live
/// in the group records themselves). Sized for the view's full pair
/// count so it never grows, even under a skewed partition split.
struct RaIndex {
    mask: usize,
    slots: Box<[u32]>,
}

impl RaIndex {
    fn with_capacity(keys: usize) -> RaIndex {
        let cap = (keys * 2).next_power_of_two().max(16);
        RaIndex {
            mask: cap - 1,
            slots: vec![u32::MAX; cap].into_boxed_slice(),
        }
    }

    /// Find the group for a key, appending a fresh empty group
    /// (preserving first-seen order) when the key is new.
    #[inline]
    fn find_or_insert(
        &mut self,
        mix: u64,
        host_addr: u64,
        device: DeviceId,
        bytes: u64,
        groups: &mut Vec<IdxRepeatedAllocGroup>,
    ) -> u32 {
        let mut i = mix as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s == u32::MAX {
                let gx = groups.len() as u32;
                groups.push(IdxRepeatedAllocGroup {
                    host_addr,
                    device,
                    bytes,
                    head: u32::MAX,
                    tail: u32::MAX,
                    len: 0,
                });
                self.slots[i] = gx;
                return gx;
            }
            let g = &groups[s as usize];
            if g.host_addr == host_addr && g.device == device && g.bytes == bytes {
                return s;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// One Algorithm 3 partition's output: its groups (singletons
/// included) plus its local chain arena `(group, next pair)` links.
type RaPart = (Vec<IdxRepeatedAllocGroup>, Vec<(u32, u32)>);

/// Algorithm 3 scan — repeated allocations, over the shared pairing
/// table (allocation order), grouped by ⟨host addr, device, size⟩.
/// Returns **all** groups (singletons included) plus the local chain
/// arena; [`alg3_merge`] filters and orders.
fn alg3_scan(view: &EventView<'_>, part: usize, nparts: usize) -> RaPart {
    let ops = view.ops();
    let mut groups: Vec<IdxRepeatedAllocGroup> = Vec::new();
    let mut chain: Vec<(u32, u32)> = Vec::new();
    let mut index = RaIndex::with_capacity(view.pairs.len());
    // Allocation sites repeat in runs (the loop re-allocating the
    // same buffer is the pattern Algorithm 3 exists to catch), so a
    // one-entry cache short-circuits most of the index traffic.
    let mut last: Option<((u64, DeviceId, u64), u32)> = None;
    for (px, pair) in view.pairs.iter().enumerate() {
        let ax = pair.alloc as usize;
        let (host_addr, device, bytes) = (ops.src_addrs[ax], ops.dest_devices[ax], ops.bytes[ax]);
        let key = (host_addr, device, bytes);
        let gx = match last {
            Some((k, gx)) if k == key => gx,
            _ => {
                let mix = ra_key_mix(host_addr, device, bytes);
                if nparts > 1 && (mix >> 32) as usize % nparts != part {
                    continue;
                }
                index.find_or_insert(mix, host_addr, device, bytes, &mut groups)
            }
        };
        last = Some((key, gx));
        let link = chain.len() as u32;
        chain.push((px as u32, u32::MAX));
        let group = &mut groups[gx as usize];
        if group.tail == u32::MAX {
            group.head = link;
        } else {
            chain[group.tail as usize].1 = link;
        }
        group.tail = link;
        group.len += 1;
    }
    (groups, chain)
}

/// Merge Algorithm 3 partitions: concatenate the chain arenas (fixing
/// up the intra-chain links), drop singleton groups, and order the
/// rest by their first member's pair index — which *is* first-seen key
/// order, because every key lives in exactly one partition.
fn alg3_merge(parts: Vec<RaPart>, out: &mut IndexFindings) {
    let mut merged: Vec<IdxRepeatedAllocGroup> = Vec::new();
    let single = parts.len() == 1;
    for (groups, chain) in parts {
        let off = out.ra_pairs.len() as u32;
        out.ra_pairs.extend(chain.iter().map(|&(px, next)| {
            (
                px,
                if next == u32::MAX {
                    u32::MAX
                } else {
                    next + off
                },
            )
        }));
        merged.extend(groups.into_iter().filter(|g| g.len >= 2).map(|mut g| {
            g.head += off;
            g.tail += off;
            g
        }));
    }
    if !single {
        merged.sort_unstable_by_key(|g| out.ra_pairs[g.head as usize].0);
    }
    out.repeated_allocs = merged;
}

/// Algorithm 4 — unused allocations on one device: advance a kernel
/// cursor alongside the (allocation-ordered) pairings; an allocation
/// whose lifetime precedes the next kernel on its device can never
/// have been used.
fn alg4_device(view: &EventView<'_>, dev: usize, out: &mut Vec<u32>) {
    let ops = view.ops();
    let kerns = view.kernels();
    let kernels = &view.kernels_by_device[dev];
    let mut kx = 0usize;
    for &px in &view.pairs_by_device[dev] {
        let pair = &view.pairs[px as usize];
        let alloc_start = ops.starts[pair.alloc as usize];
        while kx < kernels.len() && kerns.ends[kernels[kx] as usize] < alloc_start {
            kx += 1;
        }
        let lifetime_end = view.pair_lifetime_end(pair);
        if kx == kernels.len() || kerns.starts[kernels[kx] as usize] > lifetime_end {
            out.push(px);
        }
    }
}

/// Algorithm 5 — unused transfers on one device: a candidate map from
/// source address to the last transfer that wrote from it; kernel
/// completions clear the candidates (the kernel may have consumed the
/// data).
fn alg5_device(view: &EventView<'_>, dev: usize, out: &mut Vec<(OpIx, UnusedTransferReason)>) {
    let ops = view.ops();
    let kerns = view.kernels();
    let kernels = &view.kernels_by_device[dev];
    let mut kx = 0usize;
    let mut candidates: FnvHashMap<u64, OpIx> = FnvHashMap::default();
    for &tx in &view.tx_by_device[dev] {
        let tx_start = ops.starts[tx as usize];
        let src_addr = ops.src_addrs[tx as usize];
        while kx < kernels.len() && kerns.ends[kernels[kx] as usize] < tx_start {
            kx += 1;
            candidates.clear();
        }
        if kx == kernels.len() {
            out.push((tx, UnusedTransferReason::AfterLastKernel));
        } else if kerns.starts[kernels[kx] as usize] > tx_start {
            if let Some(&cand) = candidates.get(&src_addr) {
                out.push((cand, UnusedTransferReason::OverwrittenBeforeUse));
            }
            candidates.insert(src_addr, tx);
        } else {
            // Overlaps a running kernel (asynchronous mapping):
            // conservatively forget all candidates.
            candidates.clear();
        }
    }
}

/// The process-wide fused-sweep worker count: `0` = not yet resolved.
/// Resolution order: [`set_sweep_threads`] (the CLI's
/// `--sweep-threads`), else the `ODP_SWEEP_THREADS` environment
/// variable, else `1` (sequential — the byte-identity baseline).
static SWEEP_THREADS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Pin the fused-sweep worker count (clamped to ≥ 1). Overrides
/// `ODP_SWEEP_THREADS`.
pub fn set_sweep_threads(threads: usize) {
    SWEEP_THREADS.store(threads.max(1), std::sync::atomic::Ordering::Relaxed);
}

/// The fused-sweep worker count [`detect`] will use (resolving
/// `ODP_SWEEP_THREADS` on first call; `1` = sequential).
pub fn sweep_threads() -> usize {
    let n = SWEEP_THREADS.load(std::sync::atomic::Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let resolved = std::env::var("ODP_SWEEP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    SWEEP_THREADS.store(resolved, std::sync::atomic::Ordering::Relaxed);
    resolved
}

/// Run the fused engine end to end: indexed detection plus owned
/// materialization, on [`sweep_threads`] workers. Equivalent to — and
/// the implementation behind — [`Findings::detect`].
pub fn detect(view: &EventView<'_>) -> Findings {
    detect_with(view, sweep_threads())
}

/// [`detect`] with an explicit worker count (`1` = sequential). The
/// findings are byte-identical for every count.
pub fn detect_with(view: &EventView<'_>, threads: usize) -> Findings {
    detect_indexed_with(view, threads).resolve(view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::EventFactory;

    #[test]
    fn fused_matches_standalone_on_mixed_trace() {
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(30, 60, 0), f.kernel(130, 160, 0)];
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.h2d(10, 0, 0x1000, 7, 64),
            f.h2d(20, 0, 0x1000, 7, 64), // duplicate
            f.d2h(70, 0, 0x1000, 7, 64), // round trip back to host
            f.delete(80, 0, 0x1000, 0xd000, 64),
            f.alloc(90, 0, 0x1000, 0xd000, 64), // repeated alloc
            f.h2d(100, 0, 0x1000, 9, 64),
            f.delete(170, 0, 0x1000, 0xd000, 64),
            f.h2d(180, 0, 0x2000, 11, 64), // after last kernel
        ];
        let view = EventView::new(&ops, &kernels, 1);
        let fused = detect(&view);
        let separate = Findings::detect_separate(&ops, &kernels, 1);
        assert_eq!(
            serde_json::to_string(&fused).unwrap(),
            serde_json::to_string(&separate).unwrap()
        );
        assert_eq!(fused.counts(), separate.counts());
        assert_eq!(
            detect_indexed(&view).counts(&view),
            separate.counts(),
            "indexed counts must not require materialization"
        );
    }

    #[test]
    fn empty_view_is_clean() {
        let view = EventView::new(&[], &[], 1);
        let findings = detect(&view);
        assert!(findings.counts().is_clean());
    }

    #[test]
    fn view_from_log_uses_memoized_hydration() {
        use odp_model::{CodePtr, DataOpKind, DeviceId, SimTime, TargetKind, TimeSpan};
        let mut log = TraceLog::new();
        let span = |a: u64, b: u64| TimeSpan::new(SimTime(a), SimTime(b));
        for t in [0u64, 100] {
            log.record_data_op(
                DataOpKind::Transfer,
                DeviceId::HOST,
                DeviceId::target(0),
                0x1000,
                0xd000,
                256,
                Some(0xAB),
                span(t, t + 10),
                CodePtr(0x1),
            );
            log.record_target(
                TargetKind::Kernel,
                DeviceId::target(0),
                span(t + 20, t + 40),
                CodePtr(0x2),
            );
        }
        let before = log.sort_count();
        let view = EventView::from_log(&log);
        let findings = detect(&view);
        assert_eq!(findings.counts().dd, 1);
        // A second view re-borrows the same columnar hydration: no
        // further sorts.
        let view2 = EventView::from_log(&log);
        let _ = detect(&view2);
        assert_eq!(
            log.sort_count(),
            before + 1,
            "one columnar pass covers both event families"
        );
    }
}
