//! Algorithm 2 — Identify Round-Trip Data Transfers.
//!
//! Definition 4.2: "A round-trip data transfer occurs when a device (or
//! host) A sends data to another device B, and later device A receives
//! the same unmodified data back from device B."
//!
//! The implementation follows the paper's pseudocode: first build a map
//! from `(hash, dest_device)` to a FIFO queue of reception events; then
//! walk the transfers again — a transfer `tx` completes a round trip if
//! its *source* device has a pending reception of the same hash. The
//! reception queue entry for `tx` itself (keyed by its destination) is
//! dequeued so `tx` cannot later be counted as the completing leg of a
//! different round trip.

use crate::detect::Confidence;
use odp_hash::fnv::FnvHashMap;
use odp_model::{DataOpEvent, DeviceId, HashVal};
use serde::Serialize;
use std::collections::VecDeque;

/// One completed round trip: `tx` carried the data away from the
/// origin's counterpart; `rx` is the origin's reception of the identical
/// content.
#[derive(Clone, Debug, Serialize)]
pub struct RoundTrip {
    /// The outbound leg.
    pub tx: DataOpEvent,
    /// The reception at the outbound leg's source device.
    pub rx: DataOpEvent,
    /// The pairing was forced by a streaming lookahead spill
    /// (`StreamConfig::max_frontier`) instead of confirmed in order.
    /// Always `false` on the post-mortem and uncapped streaming paths;
    /// remediation seeding ignores spilled trips.
    pub spilled: bool,
}

/// The trips of one group, stored inline when there is exactly one.
///
/// On realistic traces most `(hash, src, dest)` groups complete a single
/// round trip, and a heap `Vec` per group makes the report boundary
/// malloc-bound at million-event scale (glibc charges ~120 ns per
/// alloc/free of a trip buffer, which for hundreds of thousands of
/// groups dwarfs the gather itself). Reads go through `Deref<[RoundTrip]>`
/// so call sites treat it as a slice; it serializes exactly like a
/// `Vec<RoundTrip>`.
#[derive(Clone, Debug)]
pub enum TripList {
    /// Exactly one trip, inline — no heap allocation.
    One([RoundTrip; 1]),
    /// Two or more trips (or zero, which no detector emits).
    Many(Vec<RoundTrip>),
}

impl std::ops::Deref for TripList {
    type Target = [RoundTrip];

    #[inline]
    fn deref(&self) -> &[RoundTrip] {
        match self {
            TripList::One(t) => t,
            TripList::Many(v) => v,
        }
    }
}

impl From<Vec<RoundTrip>> for TripList {
    #[inline]
    fn from(v: Vec<RoundTrip>) -> TripList {
        match <[RoundTrip; 1]>::try_from(v) {
            Ok(one) => TripList::One(one),
            Err(v) => TripList::Many(v),
        }
    }
}

impl<'a> IntoIterator for &'a TripList {
    type Item = &'a RoundTrip;
    type IntoIter = std::slice::Iter<'a, RoundTrip>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl Serialize for TripList {
    fn to_value(&self) -> serde::Value {
        // Identical to `Vec<RoundTrip>`: a plain sequence.
        (**self).to_value()
    }
}

/// Round trips grouped by `(hash, src_device, dest_device)` as in the
/// paper.
#[derive(Clone, Debug, Serialize)]
pub struct RoundTripGroup {
    /// Content hash.
    pub hash: HashVal,
    /// The device that sent and later re-received the data.
    pub src_device: DeviceId,
    /// The intermediate device.
    pub dest_device: DeviceId,
    /// Completed trips, chronological by outbound leg.
    pub trips: TripList,
    /// Evidence trust level. Always [`Confidence::Confirmed`] on the
    /// post-mortem paths; degraded only by streaming stall recovery.
    pub confidence: Confidence,
}

impl RoundTripGroup {
    /// Bytes carried by eliminable legs (both legs of each trip).
    pub fn wasted_bytes(&self) -> u64 {
        self.trips.iter().map(|t| t.tx.bytes + t.rx.bytes).sum()
    }
}

/// Algorithm 2. `data_op_events` must be chronological.
pub fn find_round_trips(data_op_events: &[DataOpEvent]) -> Vec<RoundTripGroup> {
    // received: ⟨hash, dest_device_num⟩ → queue⟨event⟩
    let mut received: FnvHashMap<(HashVal, DeviceId), VecDeque<&DataOpEvent>> =
        FnvHashMap::default();
    for event in data_op_events {
        let (Some(hash), true) = (event.hash, event.is_transfer()) else {
            continue;
        };
        received
            .entry((hash, event.dest_device))
            .or_default()
            .push_back(event);
    }

    // round_trips: ⟨hash, src, dest⟩ → array⟨(tx, rx)⟩
    let mut round_trips: FnvHashMap<(HashVal, DeviceId, DeviceId), Vec<RoundTrip>> =
        FnvHashMap::default();
    let mut key_order: Vec<(HashVal, DeviceId, DeviceId)> = Vec::new();

    for tx_event in data_op_events {
        let (Some(hash), true) = (tx_event.hash, tx_event.is_transfer()) else {
            continue;
        };
        let rx_key = (hash, tx_event.src_device);
        let Some(rx_event) = received.get(&rx_key).and_then(|q| q.front().copied()) else {
            // Not a round trip: the data is never sent back.
            continue;
        };
        let trip_key = (hash, tx_event.src_device, tx_event.dest_device);
        let entry = round_trips.entry(trip_key).or_default();
        if entry.is_empty() {
            key_order.push(trip_key);
        }
        entry.push(RoundTrip {
            tx: tx_event.clone(),
            rx: rx_event.clone(),
            spilled: false,
        });
        // Avoid counting this tx as the completing reception of another
        // transfer's round trip.
        let tx_key = (hash, tx_event.dest_device);
        if let Some(q) = received.get_mut(&tx_key) {
            q.pop_front();
        }
    }

    key_order
        .into_iter()
        .filter_map(|key| {
            let trips = round_trips.remove(&key)?;
            Some(RoundTripGroup {
                hash: key.0,
                src_device: key.1,
                dest_device: key.2,
                trips: trips.into(),
                confidence: Confidence::Confirmed,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::EventFactory;
    use odp_model::DeviceId;

    #[test]
    fn detects_listing2_pattern() {
        // Loop iterations: D2H of result, then H2D of the same content.
        // Hashes: content after kernel i is h_i; D2H(h_i) then H2D(h_i).
        let mut f = EventFactory::new();
        let ops = vec![
            f.h2d(0, 0, 0x1000, 100, 64),  // initial send (content h=100)
            f.d2h(20, 0, 0x1000, 101, 64), // kernel mutated → h=101
            f.h2d(40, 0, 0x1000, 101, 64), // same content back → round trip
            f.d2h(60, 0, 0x1000, 102, 64),
            f.h2d(80, 0, 0x1000, 102, 64),
        ];
        let groups = find_round_trips(&ops);
        // Two round trips: dev0→host→dev0 of h=101 and h=102. The grouping
        // key is (hash, src, dest) so they are two groups of one trip.
        let total: usize = groups.iter().map(|g| g.trips.len()).sum();
        assert_eq!(total, 2, "{groups:#?}");
        for g in &groups {
            assert_eq!(g.src_device, DeviceId::target(0));
            assert_eq!(g.dest_device, DeviceId::HOST);
        }
    }

    #[test]
    fn modified_data_is_not_a_round_trip() {
        let mut f = EventFactory::new();
        let ops = vec![
            f.h2d(0, 0, 0x1000, 1, 64),
            f.d2h(20, 0, 0x1000, 2, 64), // device modified the data
        ];
        assert!(find_round_trips(&ops).is_empty());
    }

    #[test]
    fn unmodified_return_is_a_round_trip() {
        // H2D of h then D2H of h: host sent data, got identical data
        // back — the rsbench/xsbench missing-map-clause pattern (§7.5).
        let mut f = EventFactory::new();
        let ops = vec![f.h2d(0, 0, 0x1000, 7, 256), f.d2h(50, 0, 0x1000, 7, 256)];
        let groups = find_round_trips(&ops);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].trips.len(), 1);
        assert_eq!(groups[0].src_device, DeviceId::HOST);
        assert_eq!(groups[0].dest_device, DeviceId::target(0));
        assert_eq!(groups[0].wasted_bytes(), 512);
    }

    #[test]
    fn single_transfer_is_not_a_round_trip() {
        let mut f = EventFactory::new();
        let ops = vec![f.h2d(0, 0, 0x1000, 1, 64)];
        assert!(find_round_trips(&ops).is_empty());
    }

    #[test]
    fn dequeue_prevents_double_counting() {
        // Three identical transfers H2D,D2H,H2D: trip 1 = (H2D@0, D2H@1)?
        // Following the pseudocode: tx=H2D@0 checks receptions at host of
        // h → D2H@1 pending → trip; dequeues received[dev0] (H2D@0 ...
        // then H2D@2 remains). tx=D2H@1: receptions at dev0 → H2D@2 →
        // trip; dequeues received[host] (D2H@1). tx=H2D@2: receptions at
        // host → queue now empty → no trip. Total: 2 trips.
        let mut f = EventFactory::new();
        let ops = vec![
            f.h2d(0, 0, 0x1000, 7, 64),
            f.d2h(10, 0, 0x1000, 7, 64),
            f.h2d(20, 0, 0x1000, 7, 64),
        ];
        let groups = find_round_trips(&ops);
        let total: usize = groups.iter().map(|g| g.trips.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn cross_device_trips_keep_distinct_groups() {
        let mut f = EventFactory::new();
        let ops = vec![
            f.h2d(0, 0, 0x1000, 7, 64),
            f.d2h(10, 0, 0x1000, 7, 64),
            f.h2d(20, 1, 0x2000, 9, 64),
            f.d2h(30, 1, 0x2000, 9, 64),
        ];
        let groups = find_round_trips(&ops);
        assert_eq!(groups.len(), 2);
        assert_ne!(groups[0].dest_device, groups[1].dest_device);
    }
}
