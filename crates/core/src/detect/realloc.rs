//! Algorithm 3 — Identify Repeated Device Memory Allocations.
//!
//! Definition 4.3: "A repeated device memory allocation occurs when
//! memory on a target device is allocated, and subsequently deleted,
//! more than once to accommodate the mapping of the same variable."
//!
//! Allocations are grouped by `(host_addr, device, bytes)` — the
//! allocation size participates in the key "to mitigate false positives
//! in scenarios where the same memory address is used to map different
//! variables throughout a program's execution" (§5.3).

use crate::detect::pairing::{alloc_delete_pairs, AllocDeletePair};
use crate::detect::Confidence;
use odp_hash::fnv::FnvHashMap;
use odp_model::{DataOpEvent, DeviceId};
use serde::Serialize;

/// Repeated allocations of one variable on one device.
#[derive(Clone, Debug, Serialize)]
pub struct RepeatedAllocGroup {
    /// Host address of the mapped variable.
    pub host_addr: u64,
    /// The device allocated on.
    pub device: DeviceId,
    /// Allocation size (part of the key).
    pub bytes: u64,
    /// Alloc/delete pairs, chronological. `pairs[0]` is the first
    /// (necessary) allocation; the rest are repeats.
    pub pairs: Vec<AllocDeletePair>,
    /// Evidence trust level. Always [`Confidence::Confirmed`] on the
    /// post-mortem paths; degraded only by streaming stall recovery.
    pub confidence: Confidence,
}

impl RepeatedAllocGroup {
    /// Number of redundant allocation cycles.
    pub fn repeat_count(&self) -> usize {
        self.pairs.len().saturating_sub(1)
    }
}

/// Algorithm 3. `data_op_events` must be chronological.
pub fn find_repeated_allocs(data_op_events: &[DataOpEvent]) -> Vec<RepeatedAllocGroup> {
    find_repeated_allocs_keyed(data_op_events, true)
}

/// Algorithm 3 with the allocation size optionally removed from the
/// grouping key — the ablation DESIGN.md calls out. Without the size the
/// detector false-positives whenever a reused host address hosts
/// *different* variables over the program's lifetime (§5.3's motivation
/// for including it).
pub fn find_repeated_allocs_keyed(
    data_op_events: &[DataOpEvent],
    size_in_key: bool,
) -> Vec<RepeatedAllocGroup> {
    let allocs = alloc_delete_pairs(data_op_events);

    let mut repeated: FnvHashMap<(u64, DeviceId, u64), Vec<AllocDeletePair>> =
        FnvHashMap::default();
    let mut key_order: Vec<(u64, DeviceId, u64)> = Vec::new();
    for pair in allocs {
        let key = (
            pair.alloc.src_addr,
            pair.alloc.dest_device,
            if size_in_key { pair.alloc.bytes } else { 0 },
        );
        let entry = repeated.entry(key).or_default();
        if entry.is_empty() {
            key_order.push(key);
        }
        entry.push(pair);
    }

    key_order
        .into_iter()
        .filter_map(|key| {
            let pairs = repeated.remove(&key)?;
            if pairs.len() < 2 {
                return None; // remove entries without at least two allocs
            }
            Some(RepeatedAllocGroup {
                host_addr: key.0,
                device: key.1,
                bytes: if size_in_key {
                    key.2
                } else {
                    pairs.first().map_or(0, |p| p.alloc.bytes)
                },
                pairs,
                confidence: Confidence::Confirmed,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::EventFactory;

    #[test]
    fn detects_per_kernel_realloc() {
        // Listings 1/2: alloc+delete around each of three target regions.
        let mut f = EventFactory::new();
        let mut ops = Vec::new();
        for i in 0..3u64 {
            ops.push(f.alloc(i * 100, 0, 0x1000, 0xd000, 4096));
            ops.push(f.delete(i * 100 + 50, 0, 0x1000, 0xd000, 4096));
        }
        let groups = find_repeated_allocs(&ops);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].repeat_count(), 2);
        assert_eq!(groups[0].bytes, 4096);
    }

    #[test]
    fn single_allocation_is_fine() {
        let mut f = EventFactory::new();
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.delete(100, 0, 0x1000, 0xd000, 64),
        ];
        assert!(find_repeated_allocs(&ops).is_empty());
    }

    #[test]
    fn size_in_key_prevents_false_positive_on_address_reuse() {
        // §5.3: the same *host* address hosting differently-sized
        // variables (realloc'd host buffer) must not be flagged.
        let mut f = EventFactory::new();
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.delete(10, 0, 0x1000, 0xd000, 64),
            f.alloc(20, 0, 0x1000, 0xd000, 128), // different variable now
            f.delete(30, 0, 0x1000, 0xd000, 128),
        ];
        assert!(find_repeated_allocs(&ops).is_empty());
    }

    #[test]
    fn ablation_removing_size_from_key_false_positives() {
        // The same trace WITHOUT the size in the key: the address-reuse
        // scenario becomes a (false) repeated allocation — quantifying
        // why §5.3 includes the size.
        let mut f = EventFactory::new();
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.delete(10, 0, 0x1000, 0xd000, 64),
            f.alloc(20, 0, 0x1000, 0xd000, 128),
            f.delete(30, 0, 0x1000, 0xd000, 128),
        ];
        let groups = super::find_repeated_allocs_keyed(&ops, false);
        assert_eq!(groups.len(), 1, "no-size key must false-positive here");
        assert_eq!(groups[0].repeat_count(), 1);
        // And genuine repeats are still found either way.
        let ops2 = vec![
            f.alloc(100, 0, 0x2000, 0xd100, 64),
            f.delete(110, 0, 0x2000, 0xd100, 64),
            f.alloc(120, 0, 0x2000, 0xd100, 64),
            f.delete(130, 0, 0x2000, 0xd100, 64),
        ];
        assert_eq!(super::find_repeated_allocs_keyed(&ops2, false).len(), 1);
        assert_eq!(super::find_repeated_allocs_keyed(&ops2, true).len(), 1);
    }

    #[test]
    fn devices_are_separate_sites() {
        let mut f = EventFactory::new();
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.delete(10, 0, 0x1000, 0xd000, 64),
            f.alloc(20, 1, 0x1000, 0xd000, 64),
            f.delete(30, 1, 0x1000, 0xd000, 64),
        ];
        assert!(
            find_repeated_allocs(&ops).is_empty(),
            "one alloc per device"
        );
    }

    #[test]
    fn repeat_with_open_final_allocation_counts() {
        // alloc,delete,alloc (never freed): still two allocations of the
        // same variable → one repeat.
        let mut f = EventFactory::new();
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.delete(10, 0, 0x1000, 0xd000, 64),
            f.alloc(20, 0, 0x1000, 0xd000, 64),
        ];
        let groups = find_repeated_allocs(&ops);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].repeat_count(), 1);
        assert!(groups[0].pairs[1].delete.is_none());
    }
}
