//! Algorithm 1 — Identify Duplicate Data Transfers.
//!
//! Definition 4.1: "A duplicate data transfer occurs when a device (or
//! host) receives data that it had previously received." Detection is
//! content-based: transfers are grouped by `(hash, dest_device)`; any
//! group with at least two events is a set of duplicates.

use crate::detect::Confidence;
use odp_hash::fnv::FnvHashMap;
use odp_model::{DataOpEvent, DeviceId, HashVal};
use serde::Serialize;

/// A group of transfers carrying identical content to the same device.
#[derive(Clone, Debug, Serialize)]
pub struct DuplicateTransferGroup {
    /// The shared content hash.
    pub hash: HashVal,
    /// The receiving device.
    pub dest_device: DeviceId,
    /// All transfer events in the group, chronological. `events[0]` is
    /// the first (necessary) transfer; the rest are duplicates.
    pub events: Vec<DataOpEvent>,
    /// Evidence trust level. Always [`Confidence::Confirmed`] on the
    /// post-mortem paths; degraded only by streaming stall recovery.
    pub confidence: Confidence,
}

impl DuplicateTransferGroup {
    /// Number of redundant transfers in this group.
    pub fn duplicate_count(&self) -> usize {
        self.events.len().saturating_sub(1)
    }

    /// Bytes wasted by the redundant transfers.
    pub fn wasted_bytes(&self) -> u64 {
        self.events.iter().skip(1).map(|e| e.bytes).sum()
    }
}

/// Algorithm 1. `data_op_events` must be chronological.
pub fn find_duplicate_transfers(data_op_events: &[DataOpEvent]) -> Vec<DuplicateTransferGroup> {
    // received: ⟨hash, dest_device_num⟩ → array⟨event⟩
    let mut received: FnvHashMap<(HashVal, DeviceId), Vec<&DataOpEvent>> = FnvHashMap::default();
    // Insertion order of first occurrence, for deterministic output.
    let mut key_order: Vec<(HashVal, DeviceId)> = Vec::new();

    for event in data_op_events {
        let (Some(hash), true) = (event.hash, event.is_transfer()) else {
            continue;
        };
        let key = (hash, event.dest_device);
        let entry = received.entry(key).or_default();
        if entry.is_empty() {
            key_order.push(key);
        }
        entry.push(event);
    }

    let mut duplicate_transfers = Vec::new();
    for key in key_order {
        let events = &received[&key];
        if events.len() < 2 {
            continue;
        }
        duplicate_transfers.push(DuplicateTransferGroup {
            hash: key.0,
            dest_device: key.1,
            events: events.iter().map(|e| (*e).clone()).collect(),
            confidence: Confidence::Confirmed,
        });
    }
    duplicate_transfers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::EventFactory;

    #[test]
    fn detects_listing1_pattern() {
        // `a` transferred to the device before each of two target regions.
        let mut f = EventFactory::new();
        let ops = vec![
            f.h2d(0, 0, 0x1000, 0xAAAA, 4096),
            f.h2d(100, 0, 0x1000, 0xAAAA, 4096),
        ];
        let groups = find_duplicate_transfers(&ops);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].duplicate_count(), 1);
        assert_eq!(groups[0].wasted_bytes(), 4096);
        assert_eq!(groups[0].dest_device, odp_model::DeviceId::target(0));
    }

    #[test]
    fn different_content_is_not_duplicate() {
        let mut f = EventFactory::new();
        let ops = vec![f.h2d(0, 0, 0x1000, 1, 64), f.h2d(10, 0, 0x1000, 2, 64)];
        assert!(find_duplicate_transfers(&ops).is_empty());
    }

    #[test]
    fn same_content_to_different_devices_is_not_duplicate() {
        // Each device receives the data once — broadcast is legitimate.
        let mut f = EventFactory::new();
        let ops = vec![f.h2d(0, 0, 0x1000, 7, 64), f.h2d(10, 1, 0x1000, 7, 64)];
        assert!(find_duplicate_transfers(&ops).is_empty());
    }

    #[test]
    fn same_content_from_different_sources_counts() {
        // Definition 4.1 keys on the *receiver*: identical content
        // arriving twice is duplicate regardless of source variable.
        // (This is how minifmm's identical zero-initialized arrays show
        // up as DD during initialization, §7.5.)
        let mut f = EventFactory::new();
        let ops = vec![f.h2d(0, 0, 0x1000, 9, 64), f.h2d(10, 0, 0x2000, 9, 64)];
        let groups = find_duplicate_transfers(&ops);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].duplicate_count(), 1);
    }

    #[test]
    fn host_can_be_the_receiving_device() {
        let mut f = EventFactory::new();
        let ops = vec![f.d2h(0, 0, 0x1000, 5, 64), f.d2h(10, 0, 0x1000, 5, 64)];
        let groups = find_duplicate_transfers(&ops);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].dest_device, odp_model::DeviceId::HOST);
    }

    #[test]
    fn non_transfer_events_are_ignored() {
        let mut f = EventFactory::new();
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.alloc(10, 0, 0x1000, 0xd000, 64),
            f.delete(20, 0, 0x1000, 0xd000, 64),
        ];
        assert!(find_duplicate_transfers(&ops).is_empty());
    }

    #[test]
    fn groups_are_chronological_and_deterministic() {
        let mut f = EventFactory::new();
        let ops = vec![
            f.h2d(0, 0, 0x1, 1, 8),
            f.h2d(5, 0, 0x2, 2, 8),
            f.h2d(10, 0, 0x1, 1, 8),
            f.h2d(15, 0, 0x2, 2, 8),
            f.h2d(20, 0, 0x1, 1, 8),
        ];
        let groups = find_duplicate_transfers(&ops);
        assert_eq!(groups.len(), 2);
        // First-seen key first.
        assert_eq!(groups[0].hash, odp_model::HashVal(1));
        assert_eq!(groups[0].events.len(), 3);
        assert_eq!(groups[1].hash, odp_model::HashVal(2));
        // Within a group, events stay chronological.
        assert!(groups[0]
            .events
            .windows(2)
            .all(|w| w[0].span.start <= w[1].span.start));
    }
}
