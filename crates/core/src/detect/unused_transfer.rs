//! Algorithm 5 — Identify Unused Data Transfers.
//!
//! Detects transfers "that would be overwritten before any kernel could
//! possibly access \[them\] or \[that occur\] after the last active kernel on
//! the device" (§5.4). A map of *candidates* relates source addresses to
//! the last transfer that wrote to the device from them; a new transfer
//! from the same address with no intervening kernel execution proves the
//! candidate was overwritten unused. Kernel executions clear the
//! candidate map, since the kernel may have consumed the data.

use crate::detect::Confidence;
use odp_hash::fnv::FnvHashMap;
use odp_model::{DataOpEvent, TargetEvent};
use serde::Serialize;

/// Why a transfer is provably unused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum UnusedTransferReason {
    /// The transfer happened after the device's last kernel execution.
    AfterLastKernel,
    /// The transferred data was overwritten by a later transfer before
    /// any kernel ran.
    OverwrittenBeforeUse,
}

/// A provably unused transfer.
#[derive(Clone, Debug, Serialize)]
pub struct UnusedTransfer {
    /// The wasted transfer event.
    pub event: DataOpEvent,
    /// The proof category.
    pub reason: UnusedTransferReason,
    /// Evidence trust level. Always [`Confidence::Confirmed`] on the
    /// post-mortem paths; degraded only by streaming stall recovery.
    pub confidence: Confidence,
}

/// Algorithm 5. Event slices must be chronological; `kernel_events` are
/// kernel executions. Only transfers *to target devices* are analyzed
/// (the paper iterates target devices; host-bound transfers have no
/// kernels to consume them on the host side).
pub fn find_unused_transfers(
    kernel_events: &[TargetEvent],
    data_op_events: &[DataOpEvent],
    num_devices: u32,
) -> Vec<UnusedTransfer> {
    // Sort events by device.
    let mut device_tgt_events: Vec<Vec<&TargetEvent>> = vec![Vec::new(); num_devices as usize];
    for e in kernel_events {
        if let Some(ix) = e.device.target_index() {
            if ix < device_tgt_events.len() {
                device_tgt_events[ix].push(e);
            }
        }
    }
    let mut device_tx_events: Vec<Vec<&DataOpEvent>> = vec![Vec::new(); num_devices as usize];
    for e in data_op_events {
        if !e.is_transfer() {
            continue;
        }
        if let Some(ix) = e.dest_device.target_index() {
            if ix < device_tx_events.len() {
                device_tx_events[ix].push(e);
            }
        }
    }

    let mut unused_transfers = Vec::new();
    for dev_idx in 0..num_devices as usize {
        let tgt_events = &device_tgt_events[dev_idx];
        let tx_events = &device_tx_events[dev_idx];
        let mut tgt_idx = 0usize;
        // candidates: src host address → the last transfer writing from it.
        let mut candidates: FnvHashMap<u64, &DataOpEvent> = FnvHashMap::default();
        for tx in tx_events {
            // Advance past kernels that completed before this transfer —
            // each clears the candidate set (the kernel may have used
            // the data from the previous transfers).
            while tgt_idx < tgt_events.len() && tgt_events[tgt_idx].span.end < tx.span.start {
                tgt_idx += 1;
                candidates.clear();
            }
            if tgt_idx == tgt_events.len() {
                // Transfer occurs after the last active kernel.
                unused_transfers.push(UnusedTransfer {
                    event: (*tx).clone(),
                    reason: UnusedTransferReason::AfterLastKernel,
                    confidence: Confidence::Confirmed,
                });
            } else if tgt_events[tgt_idx].span.start > tx.span.start {
                // Transfer doesn't overlap with an active kernel.
                if let Some(cand) = candidates.get(&tx.src_addr) {
                    unused_transfers.push(UnusedTransfer {
                        event: (*cand).clone(),
                        reason: UnusedTransferReason::OverwrittenBeforeUse,
                        confidence: Confidence::Confirmed,
                    });
                }
                candidates.insert(tx.src_addr, tx);
            } else {
                // Transfer overlaps a running kernel (asynchronous
                // mapping): conservatively forget all candidates.
                candidates.clear();
            }
        }
    }
    unused_transfers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::EventFactory;

    #[test]
    fn transfer_consumed_by_kernel_is_used() {
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(20, 40, 0)];
        let ops = vec![f.h2d(0, 0, 0x1000, 1, 64)];
        assert!(find_unused_transfers(&kernels, &ops, 1).is_empty());
    }

    #[test]
    fn transfer_after_last_kernel_is_unused() {
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(0, 10, 0)];
        let ops = vec![f.h2d(20, 0, 0x1000, 1, 64)];
        let u = find_unused_transfers(&kernels, &ops, 1);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].reason, UnusedTransferReason::AfterLastKernel);
    }

    #[test]
    fn overwrite_before_kernel_is_unused() {
        // Two H2D from the same host address with no kernel in between:
        // the first is dead.
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(100, 120, 0)];
        let first = f.h2d(0, 0, 0x1000, 1, 64);
        let ops = vec![first.clone(), f.h2d(20, 0, 0x1000, 2, 64)];
        let u = find_unused_transfers(&kernels, &ops, 1);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].reason, UnusedTransferReason::OverwrittenBeforeUse);
        assert_eq!(
            u[0].event.id, first.id,
            "the *overwritten* transfer is flagged"
        );
    }

    #[test]
    fn kernel_between_transfers_clears_candidates() {
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(10, 20, 0), f.kernel(60, 70, 0)];
        let ops = vec![f.h2d(0, 0, 0x1000, 1, 64), f.h2d(40, 0, 0x1000, 2, 64)];
        assert!(
            find_unused_transfers(&kernels, &ops, 1).is_empty(),
            "first kernel may have consumed the first transfer"
        );
    }

    #[test]
    fn distinct_addresses_do_not_overwrite() {
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(100, 120, 0)];
        let ops = vec![f.h2d(0, 0, 0x1000, 1, 64), f.h2d(20, 0, 0x2000, 2, 64)];
        assert!(find_unused_transfers(&kernels, &ops, 1).is_empty());
    }

    #[test]
    fn no_kernels_flags_everything() {
        let mut f = EventFactory::new();
        let ops = vec![f.h2d(0, 0, 0x1000, 1, 64), f.h2d(20, 0, 0x2000, 2, 64)];
        let u = find_unused_transfers(&[], &ops, 1);
        assert_eq!(u.len(), 2);
        assert!(u
            .iter()
            .all(|x| x.reason == UnusedTransferReason::AfterLastKernel));
    }

    #[test]
    fn d2h_transfers_are_not_candidates_for_device_side_waste() {
        // Transfers *to the host* are outside Algorithm 5's per-target-
        // device scan.
        let mut f = EventFactory::new();
        let ops = vec![f.d2h(0, 0, 0x1000, 1, 64), f.d2h(20, 0, 0x1000, 2, 64)];
        assert!(find_unused_transfers(&[], &ops, 1).is_empty());
    }

    #[test]
    fn overlapping_kernel_conservatively_clears() {
        // A transfer overlapping an active kernel (async pattern): the
        // detector must not flag the earlier candidate afterwards.
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(5, 50, 0)];
        let ops = vec![
            f.h2d(0, 0, 0x1000, 1, 64),  // before/overlapping kernel start
            f.h2d(10, 0, 0x1000, 2, 64), // overlaps the running kernel
            f.h2d(60, 0, 0x1000, 3, 64), // after last kernel → flagged
        ];
        let u = find_unused_transfers(&kernels, &ops, 1);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].reason, UnusedTransferReason::AfterLastKernel);
        assert_eq!(u[0].event.hash, Some(odp_model::HashVal(3)));
    }
}
