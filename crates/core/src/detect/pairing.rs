//! `GetAllocDeletePairs` — pair each allocation event with its deletion.
//!
//! Shared by Algorithms 3 and 4. An allocation is matched to the first
//! subsequent delete of the same `(device, device address)`; allocations
//! never freed (live at program end) pair with `None`.

use odp_hash::fnv::FnvHashMap;
use odp_model::{DataOpEvent, DeviceId, SimTime};
use serde::Serialize;

/// An allocation and its (possibly absent) deletion.
#[derive(Clone, Debug, Serialize)]
pub struct AllocDeletePair {
    /// The allocation event.
    pub alloc: DataOpEvent,
    /// The matching deletion, if the allocation was ever freed.
    pub delete: Option<DataOpEvent>,
}

impl AllocDeletePair {
    /// End of the allocation's lifetime: the delete's end, or "infinity"
    /// (program end) for never-freed allocations.
    pub fn lifetime_end(&self) -> SimTime {
        self.delete
            .as_ref()
            .map(|d| d.span.end)
            .unwrap_or(SimTime(u64::MAX))
    }
}

/// Pair allocs with deletes. `data_op_events` must be chronological; the
/// result preserves allocation order.
pub fn alloc_delete_pairs(data_op_events: &[DataOpEvent]) -> Vec<AllocDeletePair> {
    // (device, dev_addr) → index of the open pair in `pairs`.
    let mut open: FnvHashMap<(DeviceId, u64), usize> = FnvHashMap::default();
    let mut pairs: Vec<AllocDeletePair> = Vec::new();

    for event in data_op_events {
        if event.is_alloc() {
            let key = (event.dest_device, event.dest_addr);
            // A new allocation at an address shadows any stale open entry
            // (would indicate a missed delete in the log).
            open.insert(key, pairs.len());
            pairs.push(AllocDeletePair {
                alloc: event.clone(),
                delete: None,
            });
        } else if event.is_delete() {
            let key = (event.dest_device, event.dest_addr);
            if let Some(ix) = open.remove(&key) {
                pairs[ix].delete = Some(event.clone());
            }
            // A delete with no open alloc is a runtime anomaly; the
            // detectors simply ignore it.
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::EventFactory;

    #[test]
    fn pairs_in_allocation_order() {
        let mut f = EventFactory::new();
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.alloc(5, 0, 0x2000, 0xd100, 64),
            f.delete(10, 0, 0x2000, 0xd100, 64),
            f.delete(15, 0, 0x1000, 0xd000, 64),
        ];
        let pairs = alloc_delete_pairs(&ops);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].alloc.src_addr, 0x1000);
        assert_eq!(pairs[0].delete.as_ref().unwrap().span.start.0, 15);
        assert_eq!(pairs[1].alloc.src_addr, 0x2000);
        assert_eq!(pairs[1].delete.as_ref().unwrap().span.start.0, 10);
    }

    #[test]
    fn address_reuse_pairs_correctly() {
        // The same device address allocated, freed, allocated again —
        // each alloc pairs with *its* delete.
        let mut f = EventFactory::new();
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.delete(10, 0, 0x1000, 0xd000, 64),
            f.alloc(20, 0, 0x1000, 0xd000, 64),
            f.delete(30, 0, 0x1000, 0xd000, 64),
        ];
        let pairs = alloc_delete_pairs(&ops);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].delete.as_ref().unwrap().span.start.0, 10);
        assert_eq!(pairs[1].delete.as_ref().unwrap().span.start.0, 30);
    }

    #[test]
    fn leaked_allocation_has_open_lifetime() {
        let mut f = EventFactory::new();
        let ops = vec![f.alloc(0, 0, 0x1000, 0xd000, 64)];
        let pairs = alloc_delete_pairs(&ops);
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].delete.is_none());
        assert_eq!(pairs[0].lifetime_end(), SimTime(u64::MAX));
    }

    #[test]
    fn same_address_on_different_devices_is_distinct() {
        let mut f = EventFactory::new();
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.alloc(5, 1, 0x1000, 0xd000, 64),
            f.delete(10, 1, 0x1000, 0xd000, 64),
        ];
        let pairs = alloc_delete_pairs(&ops);
        assert_eq!(pairs.len(), 2);
        assert!(pairs[0].delete.is_none(), "device 0 alloc still open");
        assert!(pairs[1].delete.is_some());
    }

    #[test]
    fn stray_delete_is_ignored() {
        let mut f = EventFactory::new();
        let ops = vec![f.delete(0, 0, 0x1000, 0xd000, 64)];
        assert!(alloc_delete_pairs(&ops).is_empty());
    }
}
