//! Online/streaming detection: the five §5 algorithms advanced live,
//! one event at a time, from the tool's OMPT callbacks.
//!
//! The fused engine ([`crate::detect::engine`]) runs the five detectors
//! as incremental state machines, but only over a fully hydrated trace
//! after program exit. [`StreamingEngine`] feeds the *same* state
//! machines during the run, so findings can be emitted while the
//! program still executes — early enough to drive mapping decisions —
//! and still materialize, at [`StreamingEngine::finalize`], findings
//! **byte-identical** to [`Findings::detect`] over the same trace.
//!
//! # The two ordering problems streaming has to solve
//!
//! **Arrival order is completion order, not start order.** OMPT end
//! callbacks fire when operations *finish*; overlapping (async) spans
//! therefore arrive out of chronological start order, while every
//! detector's precondition is `(start, log order)`. The engine keeps a
//! shard-run reorder pipeline ([`crate::detect::reorder`]): each
//! recording shard appends to an in-order run lane (arrival within a
//! shard is near-sorted), a k-way loser-tree merge releases the global
//! minimum, and genuine intra-shard inversions fall back to a small
//! side pocket. Events release only at or below the caller-supplied
//! *watermark* — the earliest begin time of any still-open operation
//! (see [`odp_ompt::StreamClock`]). The buffer is bounded by the number
//! of concurrently open operations, not by trace length.
//!
//! **Algorithm 2 needs lookahead.** Post-mortem, the round-trip pass
//! consults reception queues built from the *full* trace: whether a
//! transfer completes a round trip can depend on a re-send that has not
//! happened yet. The streaming engine runs the exact reference sweep
//! behind a *confirmed frontier*: transfers whose outcome is already
//! determined by past events retire immediately; the first undecided
//! transfer stalls the frontier, and everything behind it waits in a
//! compact window (16 bytes per transfer, no event clones) that either
//! retires the moment the awaited re-send arrives or is reconciled at
//! finalize. Because nothing behind the frontier advances while it is
//! stalled, every queue head the sweep reads has exactly the value the
//! post-mortem pass would see — this is what makes finalize output
//! bit-exact instead of approximate. For steady-state workloads (data
//! ping-pongs or content re-sends keep consuming the queues) the
//! window stays O(1); [`StreamingEngine::buffer_stats`] exposes the
//! high-water marks so tests can pin that down.
//!
//! Algorithms 1 and 3 are naturally incremental (a duplicate or a
//! repeated allocation is final the moment the second occurrence
//! lands). Algorithms 4 and 5 carry per-device pending queues: an
//! allocation or transfer waits only until the next kernel on its
//! device (or finalize) proves the decision, mirroring the reference
//! cursor sweeps exactly.
//!
//! All detection state is index-based (`u32`/`u64` sequence numbers);
//! the engine never clones an event after the reorder buffer releases
//! it. Findings are materialized once, at the report boundary, from the
//! trace's hydrated [`EventView`].

use crate::detect::engine::{EventView, OutOfRangeEvents};
use crate::detect::reorder::{RunMergeBuffer, SortKey};
use crate::detect::{
    AllocDeletePair, Confidence, DuplicateTransferGroup, Findings, IssueCounts, RepeatedAllocGroup,
    RoundTrip, RoundTripGroup, UnusedAlloc, UnusedTransfer, UnusedTransferReason,
};
use odp_hash::fnv::FnvHashMap;
use odp_model::{
    CodePtr, DataOpEvent, DeviceId, HashVal, SimTime, TargetEvent, TargetKind, TraceHealth,
};
use std::collections::VecDeque;

/// A logged event's sequence number ([`odp_model::EventId`] value) — how
/// the streaming engine refers to events without holding them.
pub type Seq = u64;

/// Streaming-engine configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamConfig {
    /// Analyze exactly this many target devices (events naming devices
    /// beyond the count are excluded from Algorithms 4/5 and counted in
    /// [`StreamingEngine::out_of_range`], matching [`EventView::new`]).
    /// `None` grows the per-device machines on demand, matching the
    /// post-mortem path's inferred device count.
    pub num_devices: Option<u32>,
    /// Hard cap on Algorithm 2's lookahead window. On adversarial
    /// traces — every transfer a unique hash that never returns — the
    /// confirmed frontier grows with trace length; with a cap, the
    /// oldest undecided transfers are *spilled*: resolved against the
    /// reception queues as they stand (almost always "no round trip")
    /// and retired, trading exactness of late-completing trips for a
    /// guaranteed memory ceiling. Spills are counted in
    /// [`StreamBufferStats::frontier_spilled`] and surfaced through
    /// [`StreamingEngine::spill_warning`]; while the count stays zero,
    /// finalize remains byte-identical to post-mortem detection.
    /// `None` (default) never spills.
    pub max_frontier: Option<usize>,
}

/// One event in arrival (completion) order — what a sharded collector
/// buffers per thread before the merged watermark feeds the engine.
#[derive(Clone, Debug)]
pub enum StreamEvent {
    /// A data operation (alloc/transfer/delete/...).
    Op(DataOpEvent),
    /// A target construct; only kernels reach the detectors.
    Kernel(TargetEvent),
}

/// A finding emitted while the program is still running. Events are
/// referenced by sequence number; resolve them against the trace after
/// the run. Each finding additionally carries the offending event's
/// *site* — host address and code pointer — which is everything a
/// remediation policy ([`crate::remedy`]) needs to key a mapping
/// rewrite without resolving sequence numbers mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamFinding {
    /// Algorithm 1: `event` re-delivered content first seen in `first`.
    DuplicateTransfer {
        /// Shared content hash.
        hash: HashVal,
        /// Sending device of the redundant transfer.
        src_device: DeviceId,
        /// Receiving device.
        dest_device: DeviceId,
        /// Host-side address of the transferred variable.
        host_addr: u64,
        /// The redundant transfer's call site.
        codeptr: CodePtr,
        /// The redundant transfer.
        event: Seq,
        /// The first delivery of this content.
        first: Seq,
        /// 1-based occurrence number (2 = first duplicate).
        occurrence: u32,
        /// Trust level of the evidence (degraded once the stream was
        /// force-released; degraded findings never seed remediation).
        confidence: Confidence,
    },
    /// Algorithm 2: `tx` carried content away and `rx` returned it.
    RoundTrip {
        /// Content hash.
        hash: HashVal,
        /// Device that sent and re-received the data.
        src_device: DeviceId,
        /// Intermediate device.
        dest_device: DeviceId,
        /// Host-side address of the bounced variable (of the `tx` leg).
        host_addr: u64,
        /// The outbound leg's call site.
        codeptr: CodePtr,
        /// Outbound leg.
        tx: Seq,
        /// Completing reception.
        rx: Seq,
        /// The trip was resolved by a [`StreamConfig::max_frontier`]
        /// spill — the pairing was forced against the reception queues
        /// *as they stood*, not confirmed in frontier order, so it may
        /// not be a real round trip. Remediation must never seed a
        /// `skip_from` rule from a spilled trip (dropping a copy-back
        /// on unconfirmed evidence would be unsound).
        spilled: bool,
        /// Trust level of the evidence (degraded once the stream was
        /// force-released; degraded findings never seed remediation).
        confidence: Confidence,
    },
    /// Algorithm 3: `alloc` re-allocated an already-seen mapping.
    RepeatedAlloc {
        /// Host address of the mapped variable.
        host_addr: u64,
        /// Device allocated on.
        device: DeviceId,
        /// Allocation size.
        bytes: u64,
        /// The repeated allocation's call site.
        codeptr: CodePtr,
        /// The repeated allocation event.
        alloc: Seq,
        /// 1-based occurrence number (2 = first repeat).
        occurrence: u32,
        /// Trust level of the evidence (degraded once the stream was
        /// force-released; degraded findings never seed remediation).
        confidence: Confidence,
    },
    /// Algorithm 4: no kernel could have used this allocation.
    UnusedAlloc {
        /// Device allocated on.
        device: DeviceId,
        /// Host address of the mapped variable.
        host_addr: u64,
        /// The allocation's call site.
        codeptr: CodePtr,
        /// The allocation event.
        alloc: Seq,
        /// Its deletion, if freed.
        delete: Option<Seq>,
        /// Trust level of the evidence (degraded once the stream was
        /// force-released; degraded findings never seed remediation).
        confidence: Confidence,
    },
    /// Algorithm 5: a provably unused transfer.
    UnusedTransfer {
        /// Destination device.
        device: DeviceId,
        /// Host-side source address of the wasted transfer.
        host_addr: u64,
        /// The wasted transfer's call site.
        codeptr: CodePtr,
        /// The wasted transfer.
        event: Seq,
        /// Why it is provably unused.
        reason: UnusedTransferReason,
        /// Trust level of the evidence (degraded once the stream was
        /// force-released; degraded findings never seed remediation).
        confidence: Confidence,
    },
}

impl StreamFinding {
    /// The finding's evidence trust level.
    pub fn confidence(&self) -> Confidence {
        match *self {
            StreamFinding::DuplicateTransfer { confidence, .. }
            | StreamFinding::RoundTrip { confidence, .. }
            | StreamFinding::RepeatedAlloc { confidence, .. }
            | StreamFinding::UnusedAlloc { confidence, .. }
            | StreamFinding::UnusedTransfer { confidence, .. } => confidence,
        }
    }
}

/// The host-side address of a transfer: the source of an H2D, the
/// destination of a D2H (device-to-device transfers key on the source).
/// Shared with [`crate::remedy`], whose rules must key on exactly the
/// address the runtime presents at map clauses.
pub(crate) fn host_side_addr(e: &DataOpEvent) -> u64 {
    if e.src_device.is_host() {
        e.src_addr
    } else if e.dest_device.is_host() {
        e.dest_addr
    } else {
        e.src_addr
    }
}

/// High-water marks of the engine's bounded windows. For steady-state
/// workloads each peak is independent of trace length.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamBufferStats {
    /// Events currently in the reorder buffer.
    pub buffered_now: usize,
    /// Reorder-buffer high-water mark (bounded by open-op concurrency).
    pub buffered_peak: usize,
    /// Transfers currently behind the Algorithm 2 frontier.
    pub frontier_now: usize,
    /// Frontier-window high-water mark.
    pub frontier_peak: usize,
    /// Per-device pending work (pairs + transfers + buffered kernels).
    pub device_pending_now: usize,
    /// Per-device pending high-water mark.
    pub device_pending_peak: usize,
    /// Undecided transfers force-retired by [`StreamConfig::max_frontier`].
    /// Non-zero means late round trips may have been missed (finalize is
    /// no longer guaranteed byte-identical to post-mortem detection).
    pub frontier_spilled: usize,
    /// Intra-shard arrival inversions the reorder pipeline routed to its
    /// side pocket (events that completed after a later-starting event
    /// of the same shard). High values mean the trace is not near-sorted
    /// and the run-lane fast path is not engaging.
    pub reorder_inversions: usize,
    /// Side-pocket high-water mark (bounded by genuine overlap, not
    /// trace length).
    pub reorder_pocket_peak: usize,
}

/// Reorder-buffer entry, released in `(start, id, family)` order — the
/// same key the trace log's hydration sorts by (families tie
/// arbitrarily; the detectors only compare spans across families). The
/// key is computed once at push time and carried beside the entry in
/// the reorder pipeline's lane arenas, so releases never re-derive it.
#[derive(Debug)]
enum BufEntry {
    Op(DataOpEvent),
    Kernel(TargetEvent),
}

impl BufEntry {
    fn key(&self) -> SortKey {
        match self {
            BufEntry::Op(e) => (e.span.start, e.id.0, 0),
            BufEntry::Kernel(k) => (k.span.start, k.id.0, 1),
        }
    }
}

/// The shard an event id originated from: ids embed the recording
/// shard in their high 32 bits (see `TraceLog::merge_shards`), which is
/// what routes each event to its in-order run lane.
#[inline]
fn shard_of(seq: Seq) -> u32 {
    (seq >> 32) as u32
}

/// One reception queue — the streaming twin of the fused engine's
/// `RxSlot`, holding sequence numbers instead of borrowed events.
#[derive(Debug)]
struct Slot {
    hash: HashVal,
    dest: DeviceId,
    /// Receptions, chronological (append order behind the watermark).
    events: Vec<Seq>,
    /// Confirmed-consumed prefix (Algorithm 2 dequeues).
    head: u32,
}

/// A hashed transfer whose round-trip outcome is not yet determined.
#[derive(Debug)]
struct FrontierTx {
    seq: Seq,
    hash: HashVal,
    src: DeviceId,
    /// Host-side address + call site, carried into the live finding.
    host_addr: u64,
    codeptr: CodePtr,
    /// Slot index of the transfer's own `(hash, dest)` queue.
    dest_slot: u32,
}

#[derive(Debug)]
struct TripGroup {
    hash: HashVal,
    src: DeviceId,
    dest: DeviceId,
    /// `(tx, rx, spilled)` — `spilled` marks force-retired pairings.
    trips: Vec<(Seq, Seq, bool)>,
}

/// The streaming twin of an alloc/delete pairing.
#[derive(Debug)]
struct StreamPair {
    alloc_seq: Seq,
    alloc_start: SimTime,
    /// Host address + call site of the allocation (live-finding info).
    alloc_haddr: u64,
    alloc_codeptr: CodePtr,
    delete_seq: Option<Seq>,
    /// Valid iff `delete_seq.is_some()`.
    delete_end: SimTime,
}

#[derive(Debug)]
struct ReallocGroup {
    host_addr: u64,
    device: DeviceId,
    bytes: u64,
    pair_ixs: Vec<u32>,
}

/// A buffered kernel span (per-device queues for Algorithms 4/5).
#[derive(Clone, Copy, Debug)]
struct KSpan {
    start: SimTime,
    end: SimTime,
}

/// A transfer awaiting its device's next kernel (Algorithm 5).
#[derive(Clone, Copy, Debug)]
struct PendingTx {
    seq: Seq,
    start: SimTime,
    src_addr: u64,
    codeptr: CodePtr,
}

/// Per-target-device state machines for Algorithms 4 and 5.
#[derive(Debug, Default)]
struct DeviceMachine {
    /// Algorithm 4's kernel cursor: kernels not yet passed.
    kq4: VecDeque<KSpan>,
    /// Pairings awaiting a decision, allocation order.
    pending_pairs: VecDeque<u32>,
    /// Decided-unused pairings, allocation order.
    unused: Vec<u32>,
    /// Algorithm 5's kernel cursor.
    kq5: VecDeque<KSpan>,
    /// Transfers awaiting the device's next kernel.
    pending_tx: VecDeque<PendingTx>,
    /// Source address → last transfer writing from it (candidates),
    /// with its call site for the live finding.
    candidates: FnvHashMap<u64, (Seq, CodePtr)>,
    /// Decided-unused transfers, reference emission order.
    unused_tx: Vec<(Seq, UnusedTransferReason)>,
}

impl DeviceMachine {
    fn pending_len(&self) -> usize {
        self.kq4.len() + self.kq5.len() + self.pending_pairs.len() + self.pending_tx.len()
    }
}

/// The online detection engine. Push events (in completion order),
/// advance the watermark as open operations retire, and finalize against
/// the hydrated trace to obtain findings byte-identical to
/// [`Findings::detect`].
#[derive(Debug, Default)]
pub struct StreamingEngine {
    /// Fixed device count, or `None` to grow on demand.
    fixed_devices: Option<u32>,
    /// Algorithm 2 lookahead hard cap (`None` = unbounded/exact).
    max_frontier: Option<usize>,
    /// Reorder buffer: per-shard in-order run lanes merged by a
    /// loser tree, with a side pocket for genuine intra-shard
    /// inversions (see [`crate::detect::reorder`]).
    buffer: RunMergeBuffer<BufEntry>,
    /// Everything at or below this start time has been released.
    watermark: SimTime,
    /// Last released key, for the monotonicity debug check.
    last_released: Option<(SimTime, Seq, u8)>,

    /// Reception queues in first-enqueue order (Algorithms 1/2).
    slots: Vec<Slot>,
    slot_index: FnvHashMap<(HashVal, DeviceId), u32>,
    /// Algorithm 2's bounded lookahead window.
    frontier: VecDeque<FrontierTx>,
    trip_groups: Vec<TripGroup>,
    trip_index: FnvHashMap<(HashVal, DeviceId, DeviceId), u32>,

    /// Alloc/delete pairings in allocation order (Algorithms 3/4).
    pairs: Vec<StreamPair>,
    open_pairs: FnvHashMap<(DeviceId, u64), u32>,
    realloc_groups: Vec<ReallocGroup>,
    realloc_index: FnvHashMap<(u64, DeviceId, u64), u32>,

    /// Per-target-device machines (Algorithms 4/5), index = device.
    machines: Vec<DeviceMachine>,

    /// Live findings not yet drained.
    emitted: Vec<StreamFinding>,
    counts: IssueCounts,
    out_of_range: OutOfRangeEvents,
    stats: StreamBufferStats,
    finalized: bool,

    /// Set by the first forced release: every finding emitted (and
    /// everything materialized) from then on is [`Confidence::Degraded`].
    degraded: bool,
    /// Last key released by a forced release. Events arriving at or
    /// below it can no longer be ordered correctly and are quarantined
    /// as late (counted in [`TraceHealth::late`]).
    forced_floor: Option<(SimTime, Seq, u8)>,
    /// Stream-side degradation counters (late quarantines, forced
    /// releases, events missing at finalize).
    health: TraceHealth,
}

impl StreamingEngine {
    /// A new engine.
    pub fn new(cfg: StreamConfig) -> StreamingEngine {
        StreamingEngine {
            fixed_devices: cfg.num_devices,
            max_frontier: cfg.max_frontier,
            ..Default::default()
        }
    }

    /// Buffer an incoming event (any completion order) — the entry
    /// point a sharded collector drains its per-thread queues through.
    pub fn push(&mut self, ev: StreamEvent) {
        match ev {
            StreamEvent::Op(e) => self.push_data_op(e),
            StreamEvent::Kernel(k) => self.push_target(k),
        }
    }

    /// Buffer an incoming data operation (any completion order).
    pub fn push_data_op(&mut self, e: DataOpEvent) {
        debug_assert!(!self.finalized, "push after finalize");
        let key = (e.span.start, e.id.0, 0);
        if self.quarantine_late(key) {
            return;
        }
        self.buffer.push(shard_of(e.id.0), key, BufEntry::Op(e));
        self.note_buffered();
    }

    /// Buffer an incoming kernel execution. Non-kernel target constructs
    /// are ignored (no detector consumes them).
    pub fn push_target(&mut self, k: TargetEvent) {
        debug_assert!(!self.finalized, "push after finalize");
        if k.kind != TargetKind::Kernel {
            return;
        }
        let key = (k.span.start, k.id.0, 1);
        if self.quarantine_late(key) {
            return;
        }
        self.buffer.push(shard_of(k.id.0), key, BufEntry::Kernel(k));
        self.note_buffered();
    }

    /// Buffer a whole drained batch, then advance once — the sharded
    /// collector's ring-drain entry point. Equivalent to pushing each
    /// event and calling [`StreamingEngine::advance_watermark`] with
    /// `watermark` (when `Some`; `None` = nothing settled yet, buffer
    /// only), but the reorder-buffer peak bookkeeping and the release
    /// sweep are amortized over the batch instead of paid per event —
    /// the buffer only grows inside the loop, so its peak is its size
    /// at the end of the loop.
    pub fn ingest_batch<I>(&mut self, events: I, watermark: Option<SimTime>)
    where
        I: IntoIterator<Item = StreamEvent>,
    {
        debug_assert!(!self.finalized, "ingest after finalize");
        for ev in events {
            match ev {
                StreamEvent::Op(e) => {
                    let key = (e.span.start, e.id.0, 0);
                    if !self.quarantine_late(key) {
                        self.buffer.push(shard_of(e.id.0), key, BufEntry::Op(e));
                    }
                }
                StreamEvent::Kernel(k) => {
                    let key = (k.span.start, k.id.0, 1);
                    if k.kind == TargetKind::Kernel && !self.quarantine_late(key) {
                        self.buffer.push(shard_of(k.id.0), key, BufEntry::Kernel(k));
                    }
                }
            }
        }
        self.note_buffered();
        if let Some(watermark) = watermark {
            self.advance_watermark(watermark);
        }
    }

    /// After a forced release, events ordered at or below the forced
    /// floor arrived too late to release in order: quarantine them
    /// (counted, never ingested) instead of violating release
    /// monotonicity.
    fn quarantine_late(&mut self, key: (SimTime, Seq, u8)) -> bool {
        if self.forced_floor.is_some_and(|floor| key <= floor) {
            self.health.late += 1;
            return true;
        }
        false
    }

    /// Release every buffered event whose start is at or below
    /// `watermark` into the detection state machines, in chronological
    /// `(start, id)` order. The caller guarantees no future event can
    /// start at or below the watermark (see [`odp_ompt::StreamClock`]).
    pub fn advance_watermark(&mut self, watermark: SimTime) {
        if watermark > self.watermark {
            self.watermark = watermark;
        }
        let wm = self.watermark;
        while let Some(entry) = self.buffer.pop_if(|key| key.0 <= wm) {
            debug_assert!(
                self.last_released.is_none_or(|last| last <= entry.key()),
                "watermark violated: released {:?} after {:?} (watermark {:?})",
                entry.key(),
                self.last_released,
                self.watermark
            );
            self.last_released = Some(entry.key());
            match entry {
                BufEntry::Op(e) => self.ingest_op(&e),
                BufEntry::Kernel(k) => self.ingest_kernel(&k),
            }
        }
        self.note_peaks();
    }

    /// Issue counts of everything emitted so far. After finalize this
    /// equals the materialized findings' [`Findings::counts`].
    pub fn live_counts(&self) -> IssueCounts {
        self.counts
    }

    /// Drain the findings emitted since the last call.
    pub fn take_findings(&mut self) -> Vec<StreamFinding> {
        std::mem::take(&mut self.emitted)
    }

    /// Release **everything** in the reorder buffer regardless of the
    /// watermark — the stall-recovery escape hatch. Call when a
    /// [`odp_ompt::StallDetector`] declares the merged watermark wedged
    /// (a shard stopped delivering End callbacks): the buffered events
    /// drain in `(start, id)` order so detection can proceed, but the
    /// watermark's no-future-event promise is gone — an event may yet
    /// arrive that belonged before something just released. The engine
    /// therefore marks itself degraded: every finding from here on
    /// (live and materialized) carries [`Confidence::Degraded`], and
    /// later events at or below the forced floor are quarantined as
    /// late. Returns the number of events released.
    pub fn force_release_all(&mut self) -> usize {
        let released = self.buffer.len();
        if released == 0 {
            return 0;
        }
        self.degraded = true;
        self.health.forced_releases += released as u64;
        while let Some(entry) = self.buffer.pop_if(|_| true) {
            // Merge order keeps this batch internally monotonic, and
            // everything <= the old watermark was already released.
            self.last_released = Some(entry.key());
            match entry {
                BufEntry::Op(e) => self.ingest_op(&e),
                BufEntry::Kernel(k) => self.ingest_kernel(&k),
            }
        }
        self.forced_floor = self.last_released;
        self.note_peaks();
        released
    }

    /// True once a forced release degraded the stream: findings are no
    /// longer backed by a settled event order.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Degradation counters accumulated by the engine itself: late
    /// quarantines, forced releases, and events missing at finalize.
    /// Collector-side counters (orphans, truncations, ...) live with
    /// the tool; merge both for the full picture.
    pub fn health(&self) -> TraceHealth {
        self.health
    }

    /// Events excluded from Algorithms 4/5 because they named devices at
    /// or beyond the configured count (fixed-device mode only).
    pub fn out_of_range(&self) -> OutOfRangeEvents {
        self.out_of_range
    }

    /// Current and peak sizes of the engine's bounded windows.
    pub fn buffer_stats(&self) -> StreamBufferStats {
        let mut s = self.stats;
        s.buffered_now = self.buffer.len();
        s.frontier_now = self.frontier.len();
        s.device_pending_now = self.machines.iter().map(|m| m.pending_len()).sum();
        s.reorder_inversions = self.buffer.inversions() as usize;
        s.reorder_pocket_peak = self.buffer.pocket_peak();
        s
    }

    /// A report warning when [`StreamConfig::max_frontier`] forced
    /// spills (late round trips may be under-counted), else `None`.
    pub fn spill_warning(&self) -> Option<String> {
        let spilled = self.stats.frontier_spilled;
        if spilled == 0 {
            return None;
        }
        let cap = self.max_frontier.unwrap_or(0);
        Some(format!(
            "warning: the Algorithm 2 lookahead window hit its hard cap ({cap}); \
             {spilled} undecided transfer(s) were retired early — round trips \
             completing after the spill are not reported"
        ))
    }

    /// Run every state machine to completion and materialize owned
    /// findings from the trace's hydrated view — byte-identical to
    /// [`Findings::detect`] over the same events. Call once, after the
    /// monitored program finished; `view` must hydrate the same trace
    /// the engine observed.
    pub fn finalize(&mut self, view: &EventView<'_>) -> Findings {
        assert!(!self.finalized, "StreamingEngine::finalize called twice");
        self.finalized = true;

        // Nothing is open anymore: release the whole reorder buffer.
        self.watermark = SimTime(u64::MAX);
        while let Some(entry) = self.buffer.pop_if(|_| true) {
            debug_assert!(self.last_released.is_none_or(|last| last <= entry.key()));
            self.last_released = Some(entry.key());
            match entry {
                BufEntry::Op(e) => self.ingest_op(&e),
                BufEntry::Kernel(k) => self.ingest_kernel(&k),
            }
        }
        self.note_peaks();

        // Algorithm 2: the reception queues are final; every transfer
        // still behind the frontier resolves against them (re-sends that
        // never happened are now provably never happening).
        while let Some(tx) = self.frontier.pop_front() {
            self.try_complete_trip(&tx);
        }

        // Algorithms 4/5: no kernel will ever arrive; drain the pending
        // queues with the end-of-trace rules.
        for dev in 0..self.machines.len() {
            self.alg4_advance(dev, true);
            while let Some(tx) = self.machines[dev].pending_tx.pop_front() {
                self.machines[dev]
                    .unused_tx
                    .push((tx.seq, UnusedTransferReason::AfterLastKernel));
                self.emit(StreamFinding::UnusedTransfer {
                    device: DeviceId::target(dev as u32),
                    host_addr: tx.src_addr,
                    codeptr: tx.codeptr,
                    event: tx.seq,
                    reason: UnusedTransferReason::AfterLastKernel,
                    confidence: self.confidence(),
                });
                self.counts.ut += 1;
            }
        }

        self.materialize(view)
    }

    // ---- event routing --------------------------------------------------

    fn ingest_op(&mut self, e: &DataOpEvent) {
        if e.is_transfer() {
            if let Some(hash) = e.hash {
                self.on_hashed_transfer(e, hash);
            }
            if let Some(ix) = e.dest_device.target_index() {
                if self.in_range(ix) {
                    self.alg5_on_transfer(ix, e);
                } else {
                    self.out_of_range.transfers += 1;
                }
            }
        } else if e.is_alloc() {
            self.on_alloc(e);
        } else if e.is_delete() {
            self.on_delete(e);
        }
    }

    fn ingest_kernel(&mut self, k: &TargetEvent) {
        let Some(ix) = k.device.target_index() else {
            return;
        };
        if !self.in_range(ix) {
            self.out_of_range.kernels += 1;
            return;
        }
        let span = KSpan {
            start: k.span.start,
            end: k.span.end,
        };
        let m = self.machine(ix);
        m.kq4.push_back(span);
        m.kq5.push_back(span);
        self.alg4_advance(ix, false);
        self.alg5_on_kernel(ix);
    }

    fn in_range(&self, ix: usize) -> bool {
        match self.fixed_devices {
            Some(nd) => ix < nd as usize,
            // Grow-on-demand mode still bounds growth: a corrupted
            // callback naming device 0x4000_0000 must be quarantined,
            // not given a billion-entry machine table. The cap matches
            // `infer_num_devices`, so finalize's view agrees on which
            // events are out of range.
            None => ix < crate::detect::MAX_PLAUSIBLE_DEVICES as usize,
        }
    }

    fn machine(&mut self, ix: usize) -> &mut DeviceMachine {
        if ix >= self.machines.len() {
            self.machines.resize_with(ix + 1, DeviceMachine::default);
        }
        &mut self.machines[ix]
    }

    // ---- Algorithms 1 + 2 ----------------------------------------------

    fn on_hashed_transfer(&mut self, e: &DataOpEvent, hash: HashVal) {
        // Enqueue into the (hash, dest) reception queue — Algorithm 1's
        // group membership is final immediately.
        let slot_ix = *self
            .slot_index
            .entry((hash, e.dest_device))
            .or_insert_with(|| {
                self.slots.push(Slot {
                    hash,
                    dest: e.dest_device,
                    events: Vec::new(),
                    head: 0,
                });
                (self.slots.len() - 1) as u32
            });
        let slot = &mut self.slots[slot_ix as usize];
        slot.events.push(e.id.0);
        if slot.events.len() >= 2 {
            let (first, occurrence) = (slot.events[0], slot.events.len() as u32);
            self.emit(StreamFinding::DuplicateTransfer {
                hash,
                src_device: e.src_device,
                dest_device: e.dest_device,
                host_addr: host_side_addr(e),
                codeptr: e.codeptr,
                event: e.id.0,
                first,
                occurrence,
                confidence: self.confidence(),
            });
            self.counts.dd += 1;
        }

        // Algorithm 2: the new reception may retire stalled transfers at
        // the front of the frontier, then this transfer joins the back.
        self.frontier.push_back(FrontierTx {
            seq: e.id.0,
            hash,
            src: e.src_device,
            host_addr: host_side_addr(e),
            codeptr: e.codeptr,
            dest_slot: slot_ix,
        });
        self.stats.frontier_peak = self.stats.frontier_peak.max(self.frontier.len());
        self.alg2_advance_frontier();
        // Hard cap: force-retire the oldest undecided transfers. Each
        // spilled transfer is resolved against the queues as they stand
        // — a re-send that has not happened yet is treated as never
        // happening, the trade the cap buys its memory ceiling with.
        if let Some(cap) = self.max_frontier {
            while self.frontier.len() > cap {
                let Some(tx) = self.frontier.pop_front() else {
                    break;
                };
                self.stats.frontier_spilled += 1;
                self.try_complete_trip(&tx);
            }
            // Spilling unblocked whatever stalled behind the front.
            self.alg2_advance_frontier();
        }
    }

    /// Retire frontier transfers while their outcome is determined by
    /// events already seen. The front transfer stalls when its source
    /// slot has no unconsumed reception *yet* — a future re-send could
    /// still complete the trip, so nothing behind it may advance (the
    /// pending dequeue could change every later queue read).
    fn alg2_advance_frontier(&mut self) {
        while let Some(front) = self.frontier.front() {
            let undecided = match self.slot_index.get(&(front.hash, front.src)) {
                None => true,
                Some(&sx) => {
                    let s = &self.slots[sx as usize];
                    (s.head as usize) >= s.events.len()
                }
            };
            if undecided {
                break;
            }
            let Some(tx) = self.frontier.pop_front() else {
                break;
            };
            self.try_complete_trip(&tx);
        }
    }

    /// The reference sweep body for one transfer: completes a round trip
    /// if its source device holds an unconsumed reception of the same
    /// content, dequeuing the transfer's own reception entry so it can
    /// never complete a second trip.
    ///
    /// A spill-popped head is by definition undecided, so the spill
    /// itself never pairs — but it retires the head *without* consuming
    /// the reception its future re-send would have consumed, so every
    /// pairing completed after the first spill reads queue state the
    /// exact algorithm might not have produced. All such trips are
    /// therefore tagged `spilled` (unconfirmed) in both the live
    /// finding and the materialized trip; with no spills ever, nothing
    /// is tagged and finalize stays byte-identical to post-mortem.
    fn try_complete_trip(&mut self, tx: &FrontierTx) {
        let spilled = self.stats.frontier_spilled > 0;
        let Some(&sx) = self.slot_index.get(&(tx.hash, tx.src)) else {
            return;
        };
        let rx = {
            let s = &self.slots[sx as usize];
            if (s.head as usize) >= s.events.len() {
                return; // the data never returns: not a round trip
            }
            s.events[s.head as usize]
        };
        let dest = self.slots[tx.dest_slot as usize].dest;
        let key = (tx.hash, tx.src, dest);
        let gx = *self.trip_index.entry(key).or_insert_with(|| {
            self.trip_groups.push(TripGroup {
                hash: tx.hash,
                src: tx.src,
                dest,
                trips: Vec::new(),
            });
            (self.trip_groups.len() - 1) as u32
        });
        self.trip_groups[gx as usize]
            .trips
            .push((tx.seq, rx, spilled));
        // Consume the front of the transfer's own destination queue.
        self.slots[tx.dest_slot as usize].head += 1;
        self.emit(StreamFinding::RoundTrip {
            hash: tx.hash,
            src_device: tx.src,
            dest_device: dest,
            host_addr: tx.host_addr,
            codeptr: tx.codeptr,
            tx: tx.seq,
            rx,
            spilled,
            confidence: self.confidence(),
        });
        self.counts.rt += 1;
    }

    // ---- Algorithms 3 + 4 ----------------------------------------------

    fn on_alloc(&mut self, e: &DataOpEvent) {
        let pair_ix = self.pairs.len() as u32;
        // A new allocation at an address shadows any stale open entry
        // (same contract as `alloc_delete_pairs`).
        self.open_pairs
            .insert((e.dest_device, e.dest_addr), pair_ix);
        self.pairs.push(StreamPair {
            alloc_seq: e.id.0,
            alloc_start: e.span.start,
            alloc_haddr: e.src_addr,
            alloc_codeptr: e.codeptr,
            delete_seq: None,
            delete_end: SimTime(0),
        });

        // Algorithm 3: group membership is final at allocation time.
        let key = (e.src_addr, e.dest_device, e.bytes);
        let gx = *self.realloc_index.entry(key).or_insert_with(|| {
            self.realloc_groups.push(ReallocGroup {
                host_addr: e.src_addr,
                device: e.dest_device,
                bytes: e.bytes,
                pair_ixs: Vec::new(),
            });
            (self.realloc_groups.len() - 1) as u32
        });
        let g = &mut self.realloc_groups[gx as usize];
        g.pair_ixs.push(pair_ix);
        if g.pair_ixs.len() >= 2 {
            let occurrence = g.pair_ixs.len() as u32;
            self.emit(StreamFinding::RepeatedAlloc {
                host_addr: e.src_addr,
                device: e.dest_device,
                bytes: e.bytes,
                codeptr: e.codeptr,
                alloc: e.id.0,
                occurrence,
                confidence: self.confidence(),
            });
            self.counts.ra += 1;
        }

        // Algorithm 4: the pairing waits for a kernel able to prove use.
        if let Some(ix) = e.dest_device.target_index() {
            if self.in_range(ix) {
                self.machine(ix).pending_pairs.push_back(pair_ix);
                self.alg4_advance(ix, false);
            } else {
                self.out_of_range.allocs += 1;
            }
        }
    }

    fn on_delete(&mut self, e: &DataOpEvent) {
        if let Some(pix) = self.open_pairs.remove(&(e.dest_device, e.dest_addr)) {
            let p = &mut self.pairs[pix as usize];
            p.delete_seq = Some(e.id.0);
            p.delete_end = e.span.end;
        }
        // A delete with no open alloc is a runtime anomaly; ignored.
    }

    /// Decide pending pairings in allocation order. The front pairing is
    /// undecidable only while no kernel with `end >= alloc.start` has
    /// arrived on its device; any kernel arriving later starts at or
    /// after the allocation (chronological release), so "no delete yet"
    /// already proves the allocation's lifetime reaches that kernel.
    /// With `at_end` (finalize) an exhausted kernel cursor is no longer
    /// a stall but the reference's "no kernel ever used it" verdict.
    fn alg4_advance(&mut self, dev: usize, at_end: bool) {
        loop {
            let Some(&pix) = self.machines[dev].pending_pairs.front() else {
                return;
            };
            let p = &self.pairs[pix as usize];
            let (alloc_start, deleted, delete_end) =
                (p.alloc_start, p.delete_seq.is_some(), p.delete_end);
            let m = &mut self.machines[dev];
            while m.kq4.front().is_some_and(|k| k.end < alloc_start) {
                m.kq4.pop_front();
            }
            let unused = match m.kq4.front() {
                Some(k) => deleted && k.start > delete_end,
                None if at_end => true,
                None => return, // wait for the device's next kernel
            };
            m.pending_pairs.pop_front();
            if unused {
                m.unused.push(pix);
                self.emit_unused_alloc(dev, pix);
            }
        }
    }

    fn emit_unused_alloc(&mut self, dev: usize, pix: u32) {
        let p = &self.pairs[pix as usize];
        let finding = StreamFinding::UnusedAlloc {
            device: DeviceId::target(dev as u32),
            host_addr: p.alloc_haddr,
            codeptr: p.alloc_codeptr,
            alloc: p.alloc_seq,
            delete: p.delete_seq,
            confidence: self.confidence(),
        };
        self.emit(finding);
        self.counts.ua += 1;
    }

    // ---- Algorithm 5 ---------------------------------------------------

    fn alg5_on_transfer(&mut self, dev: usize, e: &DataOpEvent) {
        let tx = PendingTx {
            seq: e.id.0,
            start: e.span.start,
            src_addr: e.src_addr,
            codeptr: e.codeptr,
        };
        self.machine(dev); // ensure the device table covers `dev`
        let conf = self.confidence();
        let m = &mut self.machines[dev];
        if !m.pending_tx.is_empty() {
            m.pending_tx.push_back(tx); // preserve order behind the stall
            return;
        }
        if let Some(stalled) =
            Self::alg5_process_tx(m, tx, dev, conf, &mut self.emitted, &mut self.counts)
        {
            m.pending_tx.push_back(stalled); // queue was empty: order holds
        }
    }

    /// The reference per-transfer step: advance the kernel cursor
    /// (clearing candidates per passed kernel), then classify against
    /// the next kernel — or return the transfer to stall until one
    /// arrives.
    fn alg5_process_tx(
        m: &mut DeviceMachine,
        tx: PendingTx,
        dev: usize,
        confidence: Confidence,
        emitted: &mut Vec<StreamFinding>,
        counts: &mut IssueCounts,
    ) -> Option<PendingTx> {
        while m.kq5.front().is_some_and(|k| k.end < tx.start) {
            m.kq5.pop_front();
            m.candidates.clear();
        }
        match m.kq5.front() {
            None => return Some(tx),
            Some(k) if k.start > tx.start => {
                if let Some(&(cand, cand_cp)) = m.candidates.get(&tx.src_addr) {
                    m.unused_tx
                        .push((cand, UnusedTransferReason::OverwrittenBeforeUse));
                    emitted.push(StreamFinding::UnusedTransfer {
                        device: DeviceId::target(dev as u32),
                        host_addr: tx.src_addr,
                        codeptr: cand_cp,
                        event: cand,
                        reason: UnusedTransferReason::OverwrittenBeforeUse,
                        confidence,
                    });
                    counts.ut += 1;
                }
                m.candidates.insert(tx.src_addr, (tx.seq, tx.codeptr));
            }
            Some(_) => {
                // Overlaps a running kernel (asynchronous mapping):
                // conservatively forget all candidates.
                m.candidates.clear();
            }
        }
        None
    }

    /// A kernel arrived: transfers that stalled on an empty cursor can
    /// now classify (the new kernel starts at or after each of them, so
    /// it is exactly the reference's `kernels[idx]`).
    fn alg5_on_kernel(&mut self, dev: usize) {
        let conf = self.confidence();
        let m = &mut self.machines[dev];
        while !m.kq5.is_empty() {
            let Some(tx) = m.pending_tx.pop_front() else {
                break;
            };
            if let Some(stalled) =
                Self::alg5_process_tx(m, tx, dev, conf, &mut self.emitted, &mut self.counts)
            {
                m.pending_tx.push_front(stalled); // re-stalled: keep order
                break;
            }
        }
    }

    // ---- bookkeeping & materialization ----------------------------------

    fn emit(&mut self, f: StreamFinding) {
        self.emitted.push(f);
    }

    /// Confidence of findings emitted right now.
    fn confidence(&self) -> Confidence {
        if self.degraded {
            Confidence::Degraded
        } else {
            Confidence::Confirmed
        }
    }

    fn note_buffered(&mut self) {
        self.stats.buffered_peak = self.stats.buffered_peak.max(self.buffer.len());
    }

    fn note_peaks(&mut self) {
        let pending: usize = self.machines.iter().map(|m| m.pending_len()).sum();
        self.stats.device_pending_peak = self.stats.device_pending_peak.max(pending);
        self.stats.frontier_peak = self.stats.frontier_peak.max(self.frontier.len());
    }

    /// Materialize owned findings from the hydrated view, in exactly the
    /// orders the fused engine (and the standalone passes) produce.
    ///
    /// A streamed sequence number absent from the view (the collector
    /// quarantined or lost the record after the engine saw the event)
    /// does not panic: the affected finding — or the affected event
    /// within its group — is dropped, counted in
    /// [`TraceHealth::missing_at_finalize`], and the whole
    /// materialization is downgraded to [`Confidence::Degraded`].
    fn materialize(&mut self, view: &EventView<'_>) -> Findings {
        let mut by_seq: FnvHashMap<Seq, u32> =
            FnvHashMap::with_capacity_and_hasher(view.op_count(), Default::default());
        for (ix, id) in view.ops().ids.iter().enumerate() {
            by_seq.insert(id.0, ix as u32);
        }
        let missing = std::cell::Cell::new(0u64);
        let ev = |seq: Seq| -> Option<DataOpEvent> {
            match by_seq.get(&seq) {
                Some(&ix) => Some(view.op(ix)),
                None => {
                    missing.set(missing.get() + 1);
                    None
                }
            }
        };
        let pair = |p: &StreamPair| -> Option<AllocDeletePair> {
            Some(AllocDeletePair {
                alloc: ev(p.alloc_seq)?,
                // A missing delete record degrades the pair to
                // "never freed" rather than dropping it.
                delete: p.delete_seq.and_then(&ev),
            })
        };
        let confidence = self.confidence();

        let findings = Findings {
            duplicates: self
                .slots
                .iter()
                .filter(|s| s.events.len() >= 2)
                .filter_map(|s| {
                    let events: Vec<DataOpEvent> = s.events.iter().filter_map(|&q| ev(q)).collect();
                    (events.len() >= 2).then_some(DuplicateTransferGroup {
                        hash: s.hash,
                        dest_device: s.dest,
                        events,
                        confidence,
                    })
                })
                .collect(),
            round_trips: self
                .trip_groups
                .iter()
                .filter_map(|g| {
                    let trips: Vec<RoundTrip> = g
                        .trips
                        .iter()
                        .filter_map(|&(tx, rx, spilled)| {
                            Some(RoundTrip {
                                tx: ev(tx)?,
                                rx: ev(rx)?,
                                spilled,
                            })
                        })
                        .collect();
                    (!trips.is_empty()).then_some(RoundTripGroup {
                        hash: g.hash,
                        src_device: g.src,
                        dest_device: g.dest,
                        trips: trips.into(),
                        confidence,
                    })
                })
                .collect(),
            repeated_allocs: self
                .realloc_groups
                .iter()
                .filter(|g| g.pair_ixs.len() >= 2)
                .filter_map(|g| {
                    let pairs: Vec<AllocDeletePair> = g
                        .pair_ixs
                        .iter()
                        .filter_map(|&px| pair(&self.pairs[px as usize]))
                        .collect();
                    (pairs.len() >= 2).then_some(RepeatedAllocGroup {
                        host_addr: g.host_addr,
                        device: g.device,
                        bytes: g.bytes,
                        pairs,
                        confidence,
                    })
                })
                .collect(),
            unused_allocs: self
                .machines
                .iter()
                .flat_map(|m| m.unused.iter())
                .filter_map(|&px| {
                    Some(UnusedAlloc {
                        pair: pair(&self.pairs[px as usize])?,
                        confidence,
                    })
                })
                .collect(),
            unused_transfers: self
                .machines
                .iter()
                .flat_map(|m| m.unused_tx.iter())
                .filter_map(|&(seq, reason)| {
                    Some(UnusedTransfer {
                        event: ev(seq)?,
                        reason,
                        confidence,
                    })
                })
                .collect(),
        };
        let mut findings = findings;
        self.health.missing_at_finalize += missing.get();
        if missing.get() > 0 {
            // The view disagrees with the stream: nothing materialized
            // here is trustworthy evidence anymore.
            self.degraded = true;
            for g in &mut findings.duplicates {
                g.confidence = Confidence::Degraded;
            }
            for g in &mut findings.round_trips {
                g.confidence = Confidence::Degraded;
            }
            for g in &mut findings.repeated_allocs {
                g.confidence = Confidence::Degraded;
            }
            for g in &mut findings.unused_allocs {
                g.confidence = Confidence::Degraded;
            }
            for g in &mut findings.unused_transfers {
                g.confidence = Confidence::Degraded;
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::EventFactory;
    use odp_model::TimeSpan;

    /// Feed events in chronological order with a trailing watermark.
    fn feed_chronological(
        engine: &mut StreamingEngine,
        ops: &[DataOpEvent],
        kernels: &[TargetEvent],
    ) {
        let mut merged: Vec<BufEntry> = ops.iter().cloned().map(BufEntry::Op).collect();
        merged.extend(kernels.iter().cloned().map(BufEntry::Kernel));
        merged.sort_by_key(|e| e.key());
        for entry in merged {
            let end = match &entry {
                BufEntry::Op(e) => e.span.end,
                BufEntry::Kernel(k) => k.span.end,
            };
            match entry {
                BufEntry::Op(e) => engine.push_data_op(e),
                BufEntry::Kernel(k) => engine.push_target(k),
            }
            engine.advance_watermark(end);
        }
    }

    #[test]
    fn streaming_matches_postmortem_on_mixed_trace() {
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(30, 60, 0), f.kernel(130, 160, 0)];
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.h2d(10, 0, 0x1000, 7, 64),
            f.h2d(20, 0, 0x1000, 7, 64), // duplicate
            f.d2h(70, 0, 0x1000, 7, 64), // round trip back to host
            f.delete(80, 0, 0x1000, 0xd000, 64),
            f.alloc(90, 0, 0x1000, 0xd000, 64), // repeated alloc
            f.h2d(100, 0, 0x1000, 9, 64),
            f.delete(170, 0, 0x1000, 0xd000, 64),
            f.h2d(180, 0, 0x2000, 11, 64), // after last kernel
        ];
        let mut engine = StreamingEngine::default();
        feed_chronological(&mut engine, &ops, &kernels);
        let live = engine.take_findings();
        assert!(!live.is_empty(), "findings must be emitted mid-stream");
        let view = EventView::new(&ops, &kernels, 1);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect(&ops, &kernels, 1);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap()
        );
        assert_eq!(engine.live_counts(), postmortem.counts());
    }

    #[test]
    fn out_of_order_completion_is_reordered_by_watermark() {
        // Op A spans 0..200 (completes last); op B spans 50..60 and a
        // kernel spans 70..80 — both complete while A is open. Arrival
        // order is B, kernel, A; chronological order is A, B, kernel.
        let mut f = EventFactory::new();
        let mut a = f.h2d(0, 0, 0x1000, 5, 64);
        a.span = TimeSpan::new(SimTime(0), SimTime(200));
        let mut b = f.h2d(50, 0, 0x1000, 5, 64); // duplicate of A's content
        b.span = TimeSpan::new(SimTime(50), SimTime(60));
        let kernel = f.kernel(70, 80, 0);

        let mut engine = StreamingEngine::default();
        // B completes at 60; A (begun at 0) is still open → watermark 0.
        engine.push_data_op(b.clone());
        engine.advance_watermark(SimTime(0));
        assert_eq!(engine.buffer_stats().buffered_now, 1, "B must wait on A");
        engine.push_target(kernel.clone());
        engine.advance_watermark(SimTime(0));
        // A completes: everything drains in (start, id) order.
        engine.push_data_op(a.clone());
        engine.advance_watermark(SimTime(200));
        assert_eq!(engine.buffer_stats().buffered_now, 0);

        let ops = {
            let mut v = vec![a, b];
            v.sort_by_key(|e| (e.span.start, e.id));
            v
        };
        let kernels = vec![kernel];
        let view = EventView::new(&ops, &kernels, 1);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect(&ops, &kernels, 1);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap()
        );
        assert_eq!(streamed.counts().dd, 1);
    }

    #[test]
    fn round_trip_retires_when_the_resend_arrives() {
        let mut f = EventFactory::new();
        let ops = vec![f.h2d(0, 0, 0x1000, 7, 256), f.d2h(50, 0, 0x1000, 7, 256)];
        let mut engine = StreamingEngine::default();

        engine.push_data_op(ops[0].clone());
        engine.advance_watermark(SimTime(10));
        assert!(
            engine.take_findings().is_empty(),
            "outbound leg alone is provisional"
        );
        assert_eq!(engine.buffer_stats().frontier_now, 1);

        engine.push_data_op(ops[1].clone());
        engine.advance_watermark(SimTime(60));
        let live = engine.take_findings();
        assert!(
            live.iter()
                .any(|l| matches!(l, StreamFinding::RoundTrip { .. })),
            "trip must retire as soon as the reception lands: {live:?}"
        );

        let view = EventView::new(&ops, &[], 1);
        let streamed = engine.finalize(&view);
        assert_eq!(streamed.counts().rt, 1);
    }

    #[test]
    fn steady_state_windows_stay_bounded() {
        // Iterative ping-pong: the same content travels out and back each
        // iteration, kernels keep the Algorithm 4/5 cursors moving. Every
        // window's high-water mark must be independent of trace length.
        fn run(iters: u64) -> StreamBufferStats {
            let mut engine = StreamingEngine::default();
            let mut f = EventFactory::new();
            for i in 0..iters {
                let t = i * 100;
                let mut ops = vec![
                    f.alloc(t, 0, 0x1000, 0xd000, 64),
                    f.h2d(t + 10, 0, 0x1000, 7, 64),
                    f.d2h(t + 70, 0, 0x1000, 7, 64),
                    f.delete(t + 80, 0, 0x1000, 0xd000, 64),
                ];
                let kernel = f.kernel(t + 30, t + 60, 0);
                for op in ops.drain(..2) {
                    engine.push_data_op(op);
                }
                engine.push_target(kernel);
                for op in ops {
                    engine.push_data_op(op);
                }
                engine.advance_watermark(SimTime(t + 90));
            }
            engine.buffer_stats()
        }
        let small = run(50);
        let large = run(500);
        assert_eq!(
            small.frontier_peak, large.frontier_peak,
            "Algorithm 2 window must not grow with trace length"
        );
        assert_eq!(small.buffered_peak, large.buffered_peak);
        assert_eq!(small.device_pending_peak, large.device_pending_peak);
        assert!(large.frontier_peak <= 4, "{large:?}");
        assert!(large.device_pending_peak <= 8, "{large:?}");
    }

    #[test]
    fn frontier_hard_cap_bounds_adversarial_traces() {
        // Adversarial input: every transfer carries a unique hash that
        // never returns, so every transfer is undecided forever and the
        // exact frontier grows linearly with the trace.
        fn run(cap: Option<usize>, n: u64) -> (StreamingEngine, Vec<DataOpEvent>) {
            let mut f = EventFactory::new();
            let ops: Vec<DataOpEvent> = (0..n)
                .map(|i| f.h2d(i * 20, 0, 0x1000, 1_000 + i, 64))
                .collect();
            let mut engine = StreamingEngine::new(StreamConfig {
                num_devices: None,
                max_frontier: cap,
            });
            for op in &ops {
                engine.push(StreamEvent::Op(op.clone()));
                engine.advance_watermark(op.span.end);
            }
            (engine, ops)
        }

        let (exact, _) = run(None, 500);
        assert!(
            exact.buffer_stats().frontier_peak >= 500,
            "uncapped frontier grows with the trace: {:?}",
            exact.buffer_stats()
        );
        assert_eq!(exact.spill_warning(), None);

        let (mut capped, ops) = run(Some(32), 500);
        let stats = capped.buffer_stats();
        assert!(
            stats.frontier_peak <= 33,
            "high-water mark must respect the cap: {stats:?}"
        );
        assert_eq!(stats.frontier_spilled, 500 - 32);
        assert!(capped
            .spill_warning()
            .is_some_and(|w| w.contains("hard cap") && w.contains("468")));

        // Never-returning transfers are not round trips either way, so
        // even the capped engine's finalize matches post-mortem here.
        let view = EventView::new(&ops, &[], 1);
        let streamed = capped.finalize(&view);
        let postmortem = Findings::detect(&ops, &[], 1);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap()
        );
    }

    #[test]
    fn spilled_transfers_give_up_late_round_trips_with_a_warning() {
        // The documented trade: a transfer spilled before its re-send
        // arrives loses its round trip; the warning says so.
        let mut f = EventFactory::new();
        let mut ops = vec![f.h2d(0, 0, 0x1000, 7, 64)];
        for i in 0..50u64 {
            ops.push(f.h2d(10 + i * 10, 0, 0x2000, 100 + i, 64));
        }
        // The re-send that would complete hash 7's round trip, far past
        // the cap.
        ops.push(f.d2h(2_000, 0, 0x1000, 7, 64));

        let mut engine = StreamingEngine::new(StreamConfig {
            num_devices: None,
            max_frontier: Some(8),
        });
        for op in &ops {
            engine.push_data_op(op.clone());
            engine.advance_watermark(op.span.end);
        }
        let view = EventView::new(&ops, &[], 1);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect(&ops, &[], 1);
        // Exact detection pairs the outbound H2D with its late return.
        assert_eq!(postmortem.counts().rt, 1);
        assert!(postmortem
            .round_trips
            .iter()
            .any(|g| g.src_device.is_host()));
        // The spilled engine lost that pairing (the return leg may still
        // complete a reverse-direction trip, but the host-outbound group
        // is gone) — and the divergence is announced.
        assert!(
            !streamed.round_trips.iter().any(|g| g.src_device.is_host()),
            "spilled outbound trip must not be reported: {streamed:?}"
        );
        assert_ne!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap(),
            "this trace is built to diverge after the spill"
        );
        assert!(engine.spill_warning().is_some(), "divergence must warn");
        assert!(engine.buffer_stats().frontier_spilled > 0);
    }

    #[test]
    fn fixed_device_mode_counts_out_of_range_events() {
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(10, 20, 3)];
        let ops = vec![
            f.alloc(0, 3, 0x1000, 0xd000, 64),
            f.h2d(5, 3, 0x1000, 7, 64),
        ];
        let mut engine = StreamingEngine::new(StreamConfig {
            num_devices: Some(1),
            ..Default::default()
        });
        feed_chronological(&mut engine, &ops, &kernels);
        let view = EventView::new(&ops, &kernels, 1);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect(&ops, &kernels, 1);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap()
        );
        assert_eq!(engine.out_of_range(), view.out_of_range());
        assert_eq!(engine.out_of_range().total(), 3);
        assert!(view
            .out_of_range()
            .warning(1)
            .is_some_and(|w| w.contains("Algorithms 4/5")));
    }

    #[test]
    fn live_findings_reference_real_events() {
        let mut f = EventFactory::new();
        let ops = vec![f.h2d(0, 0, 0x1000, 7, 64), f.h2d(20, 0, 0x1000, 7, 64)];
        let mut engine = StreamingEngine::default();
        feed_chronological(&mut engine, &ops, &[]);
        let live = engine.take_findings();
        match live.as_slice() {
            [StreamFinding::DuplicateTransfer {
                event,
                first,
                occurrence,
                ..
            }] => {
                assert_eq!(*first, ops[0].id.0);
                assert_eq!(*event, ops[1].id.0);
                assert_eq!(*occurrence, 2);
            }
            other => panic!("expected one duplicate finding, got {other:?}"),
        }
    }
}
