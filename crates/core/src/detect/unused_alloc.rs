//! Algorithm 4 — Identify Unused Device Memory Allocations.
//!
//! Definition 4.4 (allocation half): a mapping is unused when the device
//! never utilizes the allocated region during its lifetime. Without
//! memory-access instrumentation the detectable subset is "all
//! allocations whose lifetimes do not intersect with the execution of any
//! active kernel on that device" (§5.4) — such an allocation *cannot
//! possibly* have been used.

use crate::detect::pairing::{alloc_delete_pairs, AllocDeletePair};
use crate::detect::Confidence;
use odp_model::{DataOpEvent, SimTime, TargetEvent};
use serde::Serialize;

/// An allocation that no kernel execution could have used.
#[derive(Clone, Debug, Serialize)]
pub struct UnusedAlloc {
    /// The allocation and its deletion.
    pub pair: AllocDeletePair,
    /// Evidence trust level. Always [`Confidence::Confirmed`] on the
    /// post-mortem paths; degraded only by streaming stall recovery.
    pub confidence: Confidence,
}

/// Algorithm 4. Both event slices must be chronological;
/// `kernel_events` are the target kernel-execution events.
pub fn find_unused_allocs(
    kernel_events: &[TargetEvent],
    data_op_events: &[DataOpEvent],
    num_devices: u32,
) -> Vec<UnusedAlloc> {
    let alloc_events = alloc_delete_pairs(data_op_events);

    // Sort events by device.
    let mut device_tgt_events: Vec<Vec<&TargetEvent>> = vec![Vec::new(); num_devices as usize];
    for e in kernel_events {
        if let Some(ix) = e.device.target_index() {
            if ix < device_tgt_events.len() {
                device_tgt_events[ix].push(e);
            }
        }
    }
    let mut device_allocs: Vec<Vec<&AllocDeletePair>> = vec![Vec::new(); num_devices as usize];
    for pair in &alloc_events {
        if let Some(ix) = pair.alloc.dest_device.target_index() {
            if ix < device_allocs.len() {
                device_allocs[ix].push(pair);
            }
        }
    }

    // Find allocations that do not overlap with target execution.
    let mut unused_allocs = Vec::new();
    for dev_idx in 0..num_devices as usize {
        let tgt_events = &device_tgt_events[dev_idx];
        let allocs = &device_allocs[dev_idx];
        let mut tgt_idx = 0usize;
        for pair in allocs {
            // Skip kernels that finished before this allocation existed.
            while tgt_idx < tgt_events.len() && tgt_events[tgt_idx].span.end < pair.alloc.span.start
            {
                tgt_idx += 1;
            }
            let delete_end: SimTime = pair.lifetime_end();
            if tgt_idx == tgt_events.len() || tgt_events[tgt_idx].span.start > delete_end {
                unused_allocs.push(UnusedAlloc {
                    pair: (*pair).clone(),
                    confidence: Confidence::Confirmed,
                });
            }
        }
    }
    unused_allocs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::EventFactory;

    #[test]
    fn allocation_spanning_a_kernel_is_used() {
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(20, 40, 0)];
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.delete(50, 0, 0x1000, 0xd000, 64),
        ];
        assert!(find_unused_allocs(&kernels, &ops, 1).is_empty());
    }

    #[test]
    fn allocation_between_kernels_is_unused() {
        // Lifetime falls entirely in the gap between two kernels.
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(0, 10, 0), f.kernel(100, 110, 0)];
        let ops = vec![
            f.alloc(20, 0, 0x1000, 0xd000, 64),
            f.delete(30, 0, 0x1000, 0xd000, 64),
        ];
        let unused = find_unused_allocs(&kernels, &ops, 1);
        assert_eq!(unused.len(), 1);
    }

    #[test]
    fn allocation_after_last_kernel_is_unused() {
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(0, 10, 0)];
        let ops = vec![
            f.alloc(20, 0, 0x1000, 0xd000, 64),
            f.delete(30, 0, 0x1000, 0xd000, 64),
        ];
        assert_eq!(find_unused_allocs(&kernels, &ops, 1).len(), 1);
    }

    #[test]
    fn no_kernels_at_all_makes_every_alloc_unused() {
        let mut f = EventFactory::new();
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),
            f.delete(10, 0, 0x1000, 0xd000, 64),
            f.alloc(20, 0, 0x2000, 0xd100, 64),
            f.delete(30, 0, 0x2000, 0xd100, 64),
        ];
        assert_eq!(find_unused_allocs(&[], &ops, 1).len(), 2);
    }

    #[test]
    fn never_freed_allocation_uses_open_lifetime() {
        // Alloc before the only kernel, never freed → lifetime extends to
        // program end, overlapping the kernel → used.
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(50, 60, 0)];
        let ops = vec![f.alloc(0, 0, 0x1000, 0xd000, 64)];
        assert!(find_unused_allocs(&kernels, &ops, 1).is_empty());
    }

    #[test]
    fn kernels_on_other_devices_do_not_count() {
        // Device 1 runs kernels, device 0's allocation is still unused.
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(20, 40, 1)];
        let ops = vec![
            f.alloc(20, 0, 0x1000, 0xd000, 64),
            f.delete(50, 0, 0x1000, 0xd000, 64),
        ];
        let unused = find_unused_allocs(&kernels, &ops, 2);
        assert_eq!(unused.len(), 1);
    }

    #[test]
    fn boundary_touch_counts_as_use() {
        // Kernel starting exactly when the delete ends: the comparison is
        // strict (`start > delete.end`), so touching intervals are "used"
        // — matching the paper's pseudocode.
        let mut f = EventFactory::new();
        let kernels = vec![f.kernel(32, 40, 0)];
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),   // ends at 5
            f.delete(30, 0, 0x1000, 0xd000, 64), // span 30..32
        ];
        assert!(find_unused_allocs(&kernels, &ops, 1).is_empty());
    }
}
