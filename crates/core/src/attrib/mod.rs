//! Source attribution — the libdw/DWARF substrate.
//!
//! The native tool resolves each event's `codeptr_ra` to `file:line`
//! through DWARF debug info read with libdw (§6, Figure 1); programs must
//! be compiled with `-g` for line numbers. Our simulated programs
//! register equivalent debug info here: modules with address-ranged line
//! tables, resolved by binary search exactly like a `.debug_line`
//! lookup.
//!
//! Workloads build their "compilation" with [`SourceFile`], which both
//! allocates code pointers and registers their locations, so directive
//! call sites in workload code carry honest line attribution.

use odp_hash::fnv::FnvHashMap;
use odp_model::{CodePtr, SourceLoc};
use serde::Serialize;

/// A line-table entry: `[addr, next.addr)` maps to `line` of `file`.
#[derive(Clone, Debug, Serialize)]
struct LineEntry {
    addr: u64,
    file_ix: u32,
    func_ix: u32,
    line: u32,
}

/// Debug information for the monitored program.
#[derive(Clone, Debug, Default, Serialize)]
pub struct DebugInfo {
    files: Vec<String>,
    functions: Vec<String>,
    /// Sorted by address (a DWARF line program, flattened).
    entries: Vec<LineEntry>,
    /// Exact-pointer overrides (highest precedence).
    exact: FnvHashMap<u64, (u32, u32, u32)>,
    sorted: bool,
}

impl DebugInfo {
    /// Empty debug info ("compiled without `-g`"): every resolution
    /// fails, as for an unstripped-but-debugless binary.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern_file(&mut self, file: &str) -> u32 {
        match self.files.iter().position(|f| f == file) {
            Some(ix) => ix as u32,
            None => {
                self.files.push(file.to_string());
                (self.files.len() - 1) as u32
            }
        }
    }

    fn intern_func(&mut self, func: &str) -> u32 {
        match self.functions.iter().position(|f| f == func) {
            Some(ix) => ix as u32,
            None => {
                self.functions.push(func.to_string());
                (self.functions.len() - 1) as u32
            }
        }
    }

    /// Register an exact code pointer → location mapping.
    pub fn register(&mut self, codeptr: CodePtr, file: &str, line: u32, function: &str) {
        let f = self.intern_file(file);
        let fun = self.intern_func(function);
        self.exact.insert(codeptr.0, (f, fun, line));
    }

    /// Register a line-table range entry starting at `addr`.
    pub fn register_range(&mut self, addr: u64, file: &str, line: u32, function: &str) {
        let f = self.intern_file(file);
        let fun = self.intern_func(function);
        self.entries.push(LineEntry {
            addr,
            file_ix: f,
            func_ix: fun,
            line,
        });
        self.sorted = false;
    }

    /// Finish construction: sort the line table (idempotent; `resolve`
    /// calls it implicitly through `resolved` views being pre-sorted).
    pub fn seal(&mut self) {
        self.entries.sort_by_key(|e| e.addr);
        self.sorted = true;
    }

    /// Resolve a code pointer to a source location.
    pub fn resolve(&self, codeptr: CodePtr) -> Option<SourceLoc> {
        if codeptr.is_null() {
            return None;
        }
        if let Some(&(f, fun, line)) = self.exact.get(&codeptr.0) {
            return Some(SourceLoc::new(
                self.files[f as usize].clone(),
                line,
                self.functions[fun as usize].clone(),
            ));
        }
        if !self.sorted || self.entries.is_empty() {
            return None;
        }
        // Greatest entry with addr <= codeptr — the `.debug_line` row.
        let ix = match self.entries.binary_search_by_key(&codeptr.0, |e| e.addr) {
            Ok(ix) => ix,
            Err(0) => return None,
            Err(ins) => ins - 1,
        };
        let e = &self.entries[ix];
        Some(SourceLoc::new(
            self.files[e.file_ix as usize].clone(),
            e.line,
            self.functions[e.func_ix as usize].clone(),
        ))
    }

    /// Number of registered locations (exact + ranged).
    pub fn len(&self) -> usize {
        self.exact.len() + self.entries.len()
    }

    /// No registrations?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A synthetic "source file" that allocates code pointers for directive
/// call sites as it registers them — the workload-facing builder.
#[derive(Debug)]
pub struct SourceFile<'a> {
    dbg: &'a mut DebugInfo,
    file: String,
    next_addr: u64,
}

impl<'a> SourceFile<'a> {
    /// Start a file whose code occupies addresses from `base`.
    pub fn new(dbg: &'a mut DebugInfo, file: impl Into<String>, base: u64) -> Self {
        SourceFile {
            dbg,
            file: file.into(),
            next_addr: base,
        }
    }

    /// Allocate a code pointer for a directive at `line` inside
    /// `function`, registering its attribution.
    pub fn line(&mut self, line: u32, function: &str) -> CodePtr {
        let ptr = CodePtr(self.next_addr);
        self.next_addr += 0x10; // one call site's worth of code
        self.dbg.register(ptr, &self.file, line, function);
        ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_resolution() {
        let mut d = DebugInfo::new();
        d.register(CodePtr(0x400100), "bfs.c", 42, "BFSGraph");
        let loc = d.resolve(CodePtr(0x400100)).unwrap();
        assert_eq!(loc.file, "bfs.c");
        assert_eq!(loc.line, 42);
        assert_eq!(loc.function, "BFSGraph");
    }

    #[test]
    fn null_pointer_resolves_to_none() {
        let mut d = DebugInfo::new();
        d.register(CodePtr(0x1), "x.c", 1, "f");
        assert!(d.resolve(CodePtr::NULL).is_none());
    }

    #[test]
    fn range_resolution_binary_search() {
        let mut d = DebugInfo::new();
        d.register_range(0x1000, "a.c", 10, "f");
        d.register_range(0x1100, "a.c", 20, "g");
        d.register_range(0x1200, "b.c", 5, "h");
        d.seal();
        assert_eq!(d.resolve(CodePtr(0x1000)).unwrap().line, 10);
        assert_eq!(d.resolve(CodePtr(0x10ff)).unwrap().line, 10);
        assert_eq!(d.resolve(CodePtr(0x1100)).unwrap().line, 20);
        assert_eq!(d.resolve(CodePtr(0x1250)).unwrap().file, "b.c");
        assert!(d.resolve(CodePtr(0xfff)).is_none(), "below first entry");
    }

    #[test]
    fn exact_beats_range() {
        let mut d = DebugInfo::new();
        d.register_range(0x1000, "a.c", 10, "f");
        d.register(CodePtr(0x1050), "a.c", 15, "f_inlined");
        d.seal();
        assert_eq!(d.resolve(CodePtr(0x1050)).unwrap().line, 15);
        assert_eq!(d.resolve(CodePtr(0x1040)).unwrap().line, 10);
    }

    #[test]
    fn source_file_builder_allocates_distinct_ptrs() {
        let mut d = DebugInfo::new();
        let (p1, p2);
        {
            let mut sf = SourceFile::new(&mut d, "hotspot.c", 0x400000);
            p1 = sf.line(120, "compute_tran_temp");
            p2 = sf.line(135, "compute_tran_temp");
        }
        assert_ne!(p1, p2);
        assert_eq!(d.resolve(p1).unwrap().line, 120);
        assert_eq!(d.resolve(p2).unwrap().line, 135);
        assert_eq!(d.resolve(p2).unwrap().file, "hotspot.c");
    }

    #[test]
    fn missing_debug_info_resolves_nothing() {
        let d = DebugInfo::new();
        assert!(d.resolve(CodePtr(0x400100)).is_none());
        assert!(d.is_empty());
    }
}
