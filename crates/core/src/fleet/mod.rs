//! Fleet-scale trace aggregation: many-producer ingest, deterministic
//! compaction, cross-run rollup, and the corpus differ.
//!
//! The ROADMAP's north star is a fleet where millions of runs stream
//! findings into one aggregate view. This module is that backend's
//! in-process core, layered on the persistent trace format
//! ([`odp_trace::persist`]):
//!
//! ```text
//! producer threads ──► FleetIngest::submit(run_id, artifact bytes)
//!                            │   (serialized shard streams, any order)
//!                            ▼
//!                      FleetIngest::compact()
//!                        per run: lenient-decode every submission,
//!                        canonically order the shard columns, re-merge
//!                        with the k-way (start, id) shard merge, run
//!                        the fused engine ──► RunReport
//!                            │
//!                            ▼
//!                      Corpus { runs, fleet }
//!                        fleet rollup keyed by (codeptr, device, kind)
//!                            │
//!                            ▼
//!                      diff_corpora(base, new) ──► new/fixed/persisting
//!                        (the CI regression gate: `odp trace diff`)
//! ```
//!
//! Every stage is **scheduling-independent**: submissions may arrive in
//! any interleaving from any number of threads, and the compacted
//! corpus — including its JSON rendering — is identical, because event
//! ids embed their shard and the compactor orders everything by
//! content, never by arrival. The `fleet_ingest` stress suite pins this
//! under free-running and pinned harnesses.

use crate::analysis::infer_num_devices_columnar;
use crate::detect::{EventView, Findings, IssueCounts};
use odp_model::TraceHealth;
use odp_trace::persist::{load_trace_lenient, ShardColumns, TraceArtifact, TraceMeta};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which of the five §5 inefficiency classes a finding belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FindingKind {
    /// Algorithm 1: duplicate data transfer.
    DuplicateTransfer,
    /// Algorithm 2: round-trip data transfer.
    RoundTrip,
    /// Algorithm 3: repeated device memory allocation.
    RepeatedAlloc,
    /// Algorithm 4: unused device memory allocation.
    UnusedAlloc,
    /// Algorithm 5: unused data transfer.
    UnusedTransfer,
}

impl FindingKind {
    /// Table 1-style short code.
    pub fn code(self) -> &'static str {
        match self {
            FindingKind::DuplicateTransfer => "DD",
            FindingKind::RoundTrip => "RT",
            FindingKind::RepeatedAlloc => "RA",
            FindingKind::UnusedAlloc => "UA",
            FindingKind::UnusedTransfer => "UT",
        }
    }
}

/// One run's findings at one source site, keyed the way the fleet
/// rollup (and the static-mapping consumer downstream) wants them:
/// `(codeptr, device, kind)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteFinding {
    /// Source site (code pointer of the offending directive).
    pub codeptr: u64,
    /// Raw device number the waste landed on (-1 = host).
    pub device: i32,
    /// Inefficiency class.
    pub kind: FindingKind,
    /// Redundant instances at this site (duplicates, trips, repeats…).
    pub count: u64,
    /// Bytes wasted at this site.
    pub bytes: u64,
}

/// The per-run row of a corpus: identity, health, Table 1 counts, and
/// the site-keyed findings the rollup aggregates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Producer-chosen run identifier (e.g. `babelstream-0`).
    pub run_id: String,
    /// Monitored program name from the trace metadata.
    pub program: String,
    /// Merged quarantine accounting across the run's submissions.
    pub health: TraceHealth,
    /// Table 1-style issue counts from the fused engine.
    pub counts: IssueCounts,
    /// Findings keyed by `(codeptr, device, kind)`, ascending.
    pub findings: Vec<SiteFinding>,
}

/// One `(codeptr, device, kind)` site aggregated across every run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetEntry {
    /// Source site.
    pub codeptr: u64,
    /// Raw device number.
    pub device: i32,
    /// Inefficiency class.
    pub kind: FindingKind,
    /// Number of runs exhibiting the finding at this site.
    pub runs: u64,
    /// Total redundant instances across those runs.
    pub count: u64,
    /// Total bytes wasted across those runs.
    pub bytes: u64,
}

/// The fleet rollup: every finding site across every run, ascending by
/// `(codeptr, device, kind)`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Aggregated entries.
    pub entries: Vec<FleetEntry>,
}

/// A compacted corpus: per-run reports plus the fleet rollup. The
/// durable, diffable artifact `odp trace save` writes and
/// `odp trace diff` gates on.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    /// Per-run reports, ascending by `run_id`.
    pub runs: Vec<RunReport>,
    /// Cross-run rollup keyed by `(codeptr, device, kind)`.
    pub fleet: FleetReport,
}

impl Corpus {
    /// Deterministic pretty-JSON rendering (insertion-ordered objects,
    /// content-ordered arrays — byte-stable across schedulers).
    pub fn to_json(&self) -> String {
        // Invariant, not event data: the corpus is plain serializable
        // types; serialization cannot fail.
        #[allow(clippy::expect_used)]
        serde_json::to_string_pretty(self).expect("corpus serialization cannot fail")
    }

    /// Parse a corpus back from its JSON rendering.
    pub fn from_json(s: &str) -> Result<Corpus, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

/// Extract `(codeptr, device, kind)`-keyed site findings from a fused
/// detection result, mirroring the report's waste accounting: counts
/// are redundant instances (first occurrences are necessary and not
/// charged), bytes are the eliminable bytes.
pub fn site_findings(findings: &Findings) -> Vec<SiteFinding> {
    let mut sites: BTreeMap<(u64, i32, FindingKind), (u64, u64)> = BTreeMap::new();
    let mut add = |codeptr: u64, device: i32, kind: FindingKind, bytes: u64| {
        let e = sites.entry((codeptr, device, kind)).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes;
    };
    for g in &findings.duplicates {
        for e in g.events.iter().skip(1) {
            add(
                e.codeptr.0,
                g.dest_device.raw(),
                FindingKind::DuplicateTransfer,
                e.bytes,
            );
        }
    }
    for g in &findings.round_trips {
        for t in g.trips.iter() {
            add(
                t.rx.codeptr.0,
                g.dest_device.raw(),
                FindingKind::RoundTrip,
                t.tx.bytes + t.rx.bytes,
            );
        }
    }
    for g in &findings.repeated_allocs {
        for p in g.pairs.iter().skip(1) {
            add(
                p.alloc.codeptr.0,
                g.device.raw(),
                FindingKind::RepeatedAlloc,
                g.bytes,
            );
        }
    }
    for ua in &findings.unused_allocs {
        add(
            ua.pair.alloc.codeptr.0,
            ua.pair.alloc.dest_device.raw(),
            FindingKind::UnusedAlloc,
            ua.pair.alloc.bytes,
        );
    }
    for ut in &findings.unused_transfers {
        add(
            ut.event.codeptr.0,
            ut.event.dest_device.raw(),
            FindingKind::UnusedTransfer,
            ut.event.bytes,
        );
    }
    sites
        .into_iter()
        .map(|((codeptr, device, kind), (count, bytes))| SiteFinding {
            codeptr,
            device,
            kind,
            count,
            bytes,
        })
        .collect()
}

/// Many-producer ingest service: concurrent producers submit serialized
/// trace artifacts ([`TraceArtifact::to_bytes`] output) under a run id;
/// [`FleetIngest::compact`] batch-merges each run deterministically and
/// rolls the fleet report up.
///
/// One run's shards may arrive split across any number of submissions,
/// in any order, from any thread. The compactor never trusts arrival
/// order: shard columns are canonically re-ordered by content before
/// the k-way `(start, id)` merge, so the corpus is a pure function of
/// the submitted bytes.
#[derive(Default)]
pub struct FleetIngest {
    /// run id → serialized submissions (arrival-ordered; order is
    /// deliberately ignored by compaction).
    runs: Mutex<BTreeMap<String, Vec<Vec<u8>>>>,
}

impl FleetIngest {
    /// An empty ingest service.
    pub fn new() -> FleetIngest {
        FleetIngest::default()
    }

    /// Submit one serialized trace artifact for `run_id`. Cheap (one
    /// lock, one move); safe from any thread.
    pub fn submit(&self, run_id: &str, bytes: Vec<u8>) {
        self.runs
            .lock()
            .entry(run_id.to_string())
            .or_default()
            .push(bytes);
    }

    /// Number of runs with at least one submission.
    pub fn run_count(&self) -> usize {
        self.runs.lock().len()
    }

    /// Compact every run and roll the fleet report up. Deterministic:
    /// independent of submission order, thread count, and interleaving.
    pub fn compact(&self) -> Corpus {
        let runs = self.runs.lock();
        let mut reports = Vec::with_capacity(runs.len());
        for (run_id, submissions) in runs.iter() {
            reports.push(compact_run(run_id, submissions));
        }
        drop(runs);
        let fleet = rollup(&reports);
        Corpus {
            runs: reports,
            fleet,
        }
    }
}

/// Canonical sort key for a shard-columns block: its own serialized
/// bytes. Total, content-based, and independent of arrival order; ties
/// are exact duplicates, for which order cannot matter.
fn shard_sort_key(s: &ShardColumns) -> Vec<u8> {
    TraceArtifact {
        meta: TraceMeta::default(),
        health: TraceHealth::default(),
        shards: vec![s.clone()],
    }
    .to_bytes()
}

/// Deterministically merge one run's submissions and run the fused
/// engine over the combined trace.
fn compact_run(run_id: &str, submissions: &[Vec<u8>]) -> RunReport {
    let artifacts: Vec<TraceArtifact> = submissions.iter().map(|b| load_trace_lenient(b)).collect();

    let mut health = TraceHealth::default();
    let mut meta = TraceMeta::default();
    let mut programs: Vec<&str> = Vec::new();
    let mut shards: Vec<ShardColumns> = Vec::new();
    for a in &artifacts {
        health.merge(&a.health);
        meta.total_time_ns = meta.total_time_ns.max(a.meta.total_time_ns);
        meta.peak_alloc_bytes += a.meta.peak_alloc_bytes;
        meta.duplicate_ids += a.meta.duplicate_ids;
        if !a.meta.program.is_empty() {
            programs.push(&a.meta.program);
        }
        shards.extend(a.shards.iter().cloned());
    }
    programs.sort_unstable();
    meta.program = programs.first().map(|p| p.to_string()).unwrap_or_default();

    // Arrival order carries no meaning; content order does. Sorting by
    // serialized shard bytes makes the combined part order — and with
    // it the (start, id, part) merge — a pure function of the data.
    shards.sort_by_cached_key(shard_sort_key);

    // Producers are not trusted to keep (shard, seq) ids unique across
    // submissions: count every id claimed by more than one shard block
    // (within a block, merge-time accounting already ran on save).
    let mut claims: BTreeMap<u64, u64> = BTreeMap::new();
    for s in &shards {
        let mut ids: Vec<u64> = s
            .ops
            .ids
            .iter()
            .chain(s.targets.ids.iter())
            .map(|i| i.0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            *claims.entry(id).or_insert(0) += 1;
        }
    }
    let cross_duplicates: u64 = claims.values().map(|&c| c - 1).sum();
    health.duplicate_ids += cross_duplicates;

    let artifact = TraceArtifact {
        meta,
        health,
        shards,
    };
    let cols = artifact.columnar();
    let view = EventView::over(&cols, infer_num_devices_columnar(&cols));
    let findings = Findings::detect_fused(&view);
    RunReport {
        run_id: run_id.to_string(),
        program: artifact.meta.program.clone(),
        health: artifact.health,
        counts: findings.counts(),
        findings: site_findings(&findings),
    }
}

/// Aggregate per-run site findings into the fleet rollup.
pub fn rollup(runs: &[RunReport]) -> FleetReport {
    let mut entries: BTreeMap<(u64, i32, FindingKind), (u64, u64, u64)> = BTreeMap::new();
    for run in runs {
        for f in &run.findings {
            let e = entries
                .entry((f.codeptr, f.device, f.kind))
                .or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += f.count;
            e.2 += f.bytes;
        }
    }
    FleetReport {
        entries: entries
            .into_iter()
            .map(
                |((codeptr, device, kind), (runs, count, bytes))| FleetEntry {
                    codeptr,
                    device,
                    kind,
                    runs,
                    count,
                    bytes,
                },
            )
            .collect(),
    }
}

/// The differ's classification of two corpora's fleet rollups.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CorpusDiff {
    /// Sites present in the new corpus but not the baseline — the
    /// regressions a CI gate fails on.
    pub new: Vec<FleetEntry>,
    /// Sites present in the baseline but gone from the new corpus.
    pub fixed: Vec<FleetEntry>,
    /// Sites present in both (entry values from the new corpus).
    pub persisting: Vec<FleetEntry>,
}

impl CorpusDiff {
    /// Does this diff fail a regression gate?
    pub fn is_regression(&self) -> bool {
        !self.new.is_empty()
    }

    /// Deterministic pretty-JSON rendering.
    pub fn to_json(&self) -> String {
        // Invariant, not event data — plain serializable types.
        #[allow(clippy::expect_used)]
        serde_json::to_string_pretty(self).expect("diff serialization cannot fail")
    }

    /// Human-readable summary, one line per site.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut section = |title: &str, entries: &[FleetEntry]| {
            out.push_str(&format!("{title}: {}\n", entries.len()));
            for e in entries {
                out.push_str(&format!(
                    "  {} codeptr 0x{:x} dev {} — {} finding(s), {} byte(s), {} run(s)\n",
                    e.kind.code(),
                    e.codeptr,
                    e.device,
                    e.count,
                    e.bytes,
                    e.runs,
                ));
            }
        };
        section("new", &self.new);
        section("fixed", &self.fixed);
        section("persisting", &self.persisting);
        out
    }
}

/// Compare two corpora's fleet rollups site by site, classifying every
/// `(codeptr, device, kind)` key as new, fixed, or persisting.
pub fn diff_corpora(base: &Corpus, new: &Corpus) -> CorpusDiff {
    let key = |e: &FleetEntry| (e.codeptr, e.device, e.kind);
    let base_keys: BTreeMap<_, &FleetEntry> =
        base.fleet.entries.iter().map(|e| (key(e), e)).collect();
    let new_keys: BTreeMap<_, &FleetEntry> =
        new.fleet.entries.iter().map(|e| (key(e), e)).collect();
    let mut diff = CorpusDiff::default();
    for (k, e) in &new_keys {
        if base_keys.contains_key(k) {
            diff.persisting.push(**e);
        } else {
            diff.new.push(**e);
        }
    }
    for (k, e) in &base_keys {
        if !new_keys.contains_key(k) {
            diff.fixed.push(**e);
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_model::{CodePtr, DataOpKind, DeviceId, SimTime, TargetKind, TimeSpan};
    use odp_trace::TraceLog;

    fn span(a: u64, b: u64) -> TimeSpan {
        TimeSpan::new(SimTime(a), SimTime(b))
    }

    /// A trace with one duplicate-transfer site: the same payload sent
    /// to device 0 twice from codeptr 0x100, plus a kernel so the
    /// transfers count as used.
    fn duplicate_trace() -> TraceLog {
        let mut log = TraceLog::new();
        for t in [0u64, 20] {
            log.record_data_op(
                DataOpKind::Transfer,
                DeviceId::HOST,
                DeviceId::target(0),
                0x1000,
                0x8000,
                64,
                Some(0xfeed),
                span(t, t + 10),
                CodePtr(0x100),
            );
            log.record_target(
                TargetKind::Kernel,
                DeviceId::target(0),
                span(t + 11, t + 15),
                CodePtr(0x200),
            );
        }
        log
    }

    fn corpus_of(log: &TraceLog, run_id: &str) -> Corpus {
        let ingest = FleetIngest::new();
        let artifact = TraceArtifact::from_log(log, "test", TraceHealth::default());
        ingest.submit(run_id, artifact.to_bytes());
        ingest.compact()
    }

    #[test]
    fn compaction_reports_site_findings() {
        let corpus = corpus_of(&duplicate_trace(), "dup-0");
        assert_eq!(corpus.runs.len(), 1);
        let run = &corpus.runs[0];
        assert_eq!(run.run_id, "dup-0");
        assert_eq!(run.counts.dd, 1);
        let dd: Vec<_> = run
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::DuplicateTransfer)
            .collect();
        assert_eq!(dd.len(), 1);
        assert_eq!(dd[0].codeptr, 0x100);
        assert_eq!(dd[0].device, 0);
        assert_eq!(dd[0].count, 1);
        assert_eq!(dd[0].bytes, 64);
        assert_eq!(corpus.fleet.entries.len(), run.findings.len());
    }

    #[test]
    fn corpus_json_round_trips() {
        let corpus = corpus_of(&duplicate_trace(), "dup-0");
        let json = corpus.to_json();
        let parsed = Corpus::from_json(&json).unwrap();
        assert_eq!(parsed, corpus);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn diff_classifies_new_fixed_persisting() {
        let base = corpus_of(&duplicate_trace(), "run");
        let clean = corpus_of(&TraceLog::new(), "run");
        let d = diff_corpora(&base, &clean);
        assert!(!d.is_regression());
        assert!(d.new.is_empty());
        assert_eq!(d.fixed.len(), base.fleet.entries.len());
        assert!(d.persisting.is_empty());

        let d2 = diff_corpora(&clean, &base);
        assert!(d2.is_regression());
        assert_eq!(d2.new.len(), base.fleet.entries.len());

        let d3 = diff_corpora(&base, &base);
        assert!(!d3.is_regression());
        assert_eq!(d3.persisting.len(), base.fleet.entries.len());
        assert!(d3.render().contains("persisting"));
    }

    #[test]
    fn split_submissions_merge_like_one() {
        // One run's two shards submitted separately must compact to the
        // same corpus as one combined submission.
        let mut a = TraceLog::for_shard(0);
        let mut b = TraceLog::for_shard(1);
        for t in [0u64, 20] {
            a.record_data_op(
                DataOpKind::Transfer,
                DeviceId::HOST,
                DeviceId::target(0),
                0x1000,
                0x8000,
                64,
                Some(0xfeed),
                span(t, t + 10),
                CodePtr(0x100),
            );
        }
        b.record_target(
            TargetKind::Kernel,
            DeviceId::target(0),
            span(31, 35),
            CodePtr(0x200),
        );

        let combined = FleetIngest::new();
        let merged = TraceLog::merge_shards(vec![
            {
                let mut l = TraceLog::for_shard(0);
                for t in [0u64, 20] {
                    l.record_data_op(
                        DataOpKind::Transfer,
                        DeviceId::HOST,
                        DeviceId::target(0),
                        0x1000,
                        0x8000,
                        64,
                        Some(0xfeed),
                        span(t, t + 10),
                        CodePtr(0x100),
                    );
                }
                l
            },
            {
                let mut l = TraceLog::for_shard(1);
                l.record_target(
                    TargetKind::Kernel,
                    DeviceId::target(0),
                    span(31, 35),
                    CodePtr(0x200),
                );
                l
            },
        ]);
        combined.submit(
            "r",
            TraceArtifact::from_log(&merged, "p", TraceHealth::default()).to_bytes(),
        );

        let split = FleetIngest::new();
        // Reverse arrival order on purpose.
        split.submit(
            "r",
            TraceArtifact::from_log(&b, "p", TraceHealth::default()).to_bytes(),
        );
        split.submit(
            "r",
            TraceArtifact::from_log(&a, "p", TraceHealth::default()).to_bytes(),
        );

        assert_eq!(split.compact().to_json(), combined.compact().to_json());
    }

    #[test]
    fn colliding_submissions_are_counted_as_duplicates() {
        // Two producers both claim shard 0 with overlapping seqs.
        let log = duplicate_trace();
        let ingest = FleetIngest::new();
        let bytes = TraceArtifact::from_log(&log, "p", TraceHealth::default()).to_bytes();
        ingest.submit("r", bytes.clone());
        ingest.submit("r", bytes);
        let corpus = ingest.compact();
        let run = &corpus.runs[0];
        assert_eq!(
            run.health.duplicate_ids, 4,
            "every id claimed twice: 2 ops + 2 kernels"
        );
        assert!(run.health.warning().is_some());
    }

    #[test]
    fn corrupt_submission_degrades_health_not_process() {
        let ingest = FleetIngest::new();
        ingest.submit("r", b"definitely not a trace".to_vec());
        let corpus = ingest.compact();
        assert_eq!(corpus.runs[0].health.unreadable, 1);
        assert_eq!(corpus.runs[0].counts, IssueCounts::default());
    }
}
