//! The OMPT client — what `libompdataperf.so` is to a native program.
//!
//! [`OmpDataPerfTool`] registers for the EMI target callbacks, hashes
//! every transfer payload with the configured algorithm (timing itself,
//! which yields the Table 4 "effective hash rate"), and appends compact
//! records to a [`TraceLog`]. On pre-5.1 runtimes it falls back to the
//! deprecated begin-only callbacks with the §A.6 degradation warning; on
//! runtimes without target callbacks it reports itself unusable.
//!
//! Construction returns the tool plus a [`ToolHandle`] sharing its
//! collector, so the harness can extract the trace after the runtime
//! finishes with the boxed tool.

use crate::collision::CollisionAudit;
use crate::detect::{IssueCounts, StreamConfig, StreamFinding, StreamingEngine};
use odp_hash::fnv::FnvHashMap;
use odp_hash::HashAlgoId;
use odp_model::{DataOpKind, SimDuration, SimTime, TargetKind, TimeSpan};
use odp_ompt::{
    CallbackKind, DataOpCallback, DataOpType, Endpoint, RuntimeCapabilities, StreamClock,
    SubmitCallback, TargetCallback, TargetConstructKind, Tool, ToolRegistration,
};
use odp_trace::TraceLog;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Tool configuration (the CLI's flags, §A.5.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct ToolConfig {
    /// Content-hash algorithm (default: `t1ha0_avx2`, §B.1).
    pub hash_algo: HashAlgoId,
    /// Enable the §B.1 collision audit (stores payload copies).
    pub collision_audit: bool,
    /// Suppress warnings (`-q`).
    pub quiet: bool,
    /// Verbose output (`-v`).
    pub verbose: bool,
    /// Run the streaming detection engine online (`--stream`): every
    /// callback additionally feeds the five §5 state machines, emitting
    /// findings while the program runs. Post-run, the engine finalizes
    /// to findings byte-identical to the post-mortem path.
    pub stream: bool,
}

/// Wall-clock hashing meter (Table 4's "effective hash rate").
#[derive(Clone, Copy, Debug, Default)]
pub struct HashMeter {
    /// Payload bytes hashed.
    pub bytes: u64,
    /// Wall-clock nanoseconds spent hashing.
    pub nanos: u64,
}

impl HashMeter {
    /// Effective rate in GB/s (decimal).
    pub fn gb_per_s(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.bytes as f64 / self.nanos as f64
        }
    }
}

/// Everything the tool accumulates during a run.
#[derive(Debug, Default)]
pub struct Collector {
    /// The event log.
    pub log: TraceLog,
    /// Hash-rate meter.
    pub hash_meter: HashMeter,
    /// Collision audit store.
    pub audit: CollisionAudit,
    /// `info:` console lines (§A.6).
    pub info: Vec<String>,
    /// `warning:` console lines.
    pub warnings: Vec<String>,
    /// Operating against a pre-EMI runtime (durations unavailable).
    pub degraded: bool,
    /// No target callbacks at all — nothing can be profiled.
    pub unusable: bool,
    /// Program finished (finalize ran).
    pub finalized: bool,
    /// The online detection engine (`--stream` mode only). Lives behind
    /// the same lock as the log, so the per-callback cost stays at one
    /// lock acquisition.
    pub stream: Option<StreamingEngine>,
}

/// Shared handle for extracting results after the run.
#[derive(Clone)]
pub struct ToolHandle {
    shared: Arc<Mutex<Collector>>,
}

impl ToolHandle {
    /// Run `f` against the collector.
    pub fn with<R>(&self, f: impl FnOnce(&Collector) -> R) -> R {
        f(&self.shared.lock())
    }

    /// Take the trace log out (leaves an empty one behind).
    pub fn take_trace(&self) -> TraceLog {
        std::mem::take(&mut self.shared.lock().log)
    }

    /// Effective hash rate in GB/s.
    pub fn hash_rate_gb_per_s(&self) -> f64 {
        self.shared.lock().hash_meter.gb_per_s()
    }

    /// Snapshot of the hash meter.
    pub fn hash_meter(&self) -> HashMeter {
        self.shared.lock().hash_meter
    }

    /// Accumulated console lines (info then warnings).
    pub fn console_lines(&self) -> Vec<String> {
        let c = self.shared.lock();
        c.info.iter().chain(c.warnings.iter()).cloned().collect()
    }

    /// Is the tool in degraded (non-EMI) mode?
    pub fn degraded(&self) -> bool {
        self.shared.lock().degraded
    }

    /// Could the tool register any target callbacks at all?
    pub fn unusable(&self) -> bool {
        self.shared.lock().unusable
    }

    /// Number of hash collisions the audit observed.
    pub fn collision_count(&self) -> usize {
        self.shared.lock().audit.collisions().len()
    }

    /// Is the streaming engine attached?
    pub fn streaming(&self) -> bool {
        self.shared.lock().stream.is_some()
    }

    /// Drain the findings the streaming engine emitted since the last
    /// call (empty when streaming is off). Safe to call while the
    /// program runs — this is the live consumption point.
    pub fn take_stream_findings(&self) -> Vec<StreamFinding> {
        self.shared
            .lock()
            .stream
            .as_mut()
            .map(|e| e.take_findings())
            .unwrap_or_default()
    }

    /// Issue counts of everything the streaming engine has emitted so
    /// far (`None` when streaming is off).
    pub fn stream_counts(&self) -> Option<IssueCounts> {
        self.shared.lock().stream.as_ref().map(|e| e.live_counts())
    }

    /// Take the streaming engine out for finalization against the
    /// extracted trace (leaves streaming detached).
    pub fn take_stream_engine(&self) -> Option<StreamingEngine> {
        self.shared.lock().stream.take()
    }
}

/// The tool. Attach with `runtime.attach_tool(Box::new(tool))`.
pub struct OmpDataPerfTool {
    cfg: ToolConfig,
    shared: Arc<Mutex<Collector>>,
    /// Cached copy of the collector's `degraded` flag, decided once at
    /// `initialize` — callbacks read this instead of taking the lock a
    /// second time per event (the runtime drives all callbacks from one
    /// thread; the collector's copy exists for the handle's observers).
    degraded: bool,
    /// Reorder watermark for the streaming engine: tracks open data ops
    /// and kernel submits (the two event families the detectors
    /// consume).
    clock: StreamClock,
    /// host_op_id → begin time of the open data op.
    open_ops: FnvHashMap<u64, SimTime>,
    /// target_id → begin time of the open kernel submit.
    open_submits: FnvHashMap<u64, SimTime>,
    /// (target_id, construct discriminant) → begin time.
    open_targets: FnvHashMap<(u64, u8), SimTime>,
}

impl OmpDataPerfTool {
    /// Build a tool and its extraction handle.
    pub fn new(cfg: ToolConfig) -> (OmpDataPerfTool, ToolHandle) {
        let shared = Arc::new(Mutex::new(Collector {
            audit: CollisionAudit::new(cfg.collision_audit),
            stream: cfg
                .stream
                .then(|| StreamingEngine::new(StreamConfig::default())),
            ..Default::default()
        }));
        let handle = ToolHandle {
            shared: shared.clone(),
        };
        (
            OmpDataPerfTool {
                cfg,
                shared,
                degraded: false,
                clock: StreamClock::new(),
                open_ops: FnvHashMap::default(),
                open_submits: FnvHashMap::default(),
                open_targets: FnvHashMap::default(),
            },
            handle,
        )
    }

    /// The tool's configuration.
    pub fn config(&self) -> ToolConfig {
        self.cfg
    }

    fn hash_payload(&self, c: &mut Collector, payload: &[u8]) -> u64 {
        let t = Instant::now();
        let h = self.cfg.hash_algo.hash(payload);
        let dt = t.elapsed().as_nanos() as u64;
        c.hash_meter.bytes += payload.len() as u64;
        c.hash_meter.nanos += dt.max(1);
        c.audit.record(payload, h);
        h
    }
}

fn data_op_kind(t: DataOpType) -> DataOpKind {
    match t {
        DataOpType::Alloc => DataOpKind::Alloc,
        DataOpType::TransferToDevice | DataOpType::TransferFromDevice => DataOpKind::Transfer,
        DataOpType::Delete => DataOpKind::Delete,
        DataOpType::Associate => DataOpKind::Associate,
        DataOpType::Disassociate => DataOpKind::Disassociate,
    }
}

fn target_kind(c: TargetConstructKind) -> TargetKind {
    match c {
        TargetConstructKind::Target => TargetKind::Region,
        TargetConstructKind::TargetData => TargetKind::DataRegion,
        TargetConstructKind::TargetEnterData => TargetKind::EnterData,
        TargetConstructKind::TargetExitData => TargetKind::ExitData,
        TargetConstructKind::TargetUpdate => TargetKind::Update,
    }
}

fn construct_tag(c: TargetConstructKind) -> u8 {
    match c {
        TargetConstructKind::Target => 0,
        TargetConstructKind::TargetData => 1,
        TargetConstructKind::TargetEnterData => 2,
        TargetConstructKind::TargetExitData => 3,
        TargetConstructKind::TargetUpdate => 4,
    }
}

impl Tool for OmpDataPerfTool {
    fn initialize(&mut self, caps: &RuntimeCapabilities) -> ToolRegistration {
        let mut c = self.shared.lock();
        c.info.push(format!(
            "info: OpenMP OMPT interface version {}",
            caps.ompt_version
        ));
        c.info
            .push(format!("info: OpenMP runtime {}", caps.runtime_name));
        if let Some(flag) = caps.requires_recompile_flag {
            c.info.push(format!(
                "info: this runtime requires programs to be compiled with {flag} for OMPT tools to engage"
            ));
        }

        let emi = ToolRegistration::negotiate(
            &[
                CallbackKind::TargetEmi,
                CallbackKind::TargetDataOpEmi,
                CallbackKind::TargetSubmitEmi,
            ],
            caps,
        );
        if emi.fully_granted() {
            return emi;
        }

        let legacy = ToolRegistration::negotiate(
            &[
                CallbackKind::Target,
                CallbackKind::TargetDataOp,
                CallbackKind::TargetSubmit,
            ],
            caps,
        );
        if legacy.granted(CallbackKind::TargetDataOp) {
            c.degraded = true;
            self.degraded = true;
            if !self.cfg.quiet {
                c.warnings.push(format!(
                    "warning: OMPDataPerf requires OMPT interface version 5.1 (or later), \
                     but found version {}. Some features may be degraded.",
                    caps.ompt_version
                ));
            }
            return legacy;
        }

        c.unusable = true;
        if !self.cfg.quiet {
            c.warnings.push(format!(
                "warning: the OpenMP runtime ({}) provides no OMPT target callbacks; \
                 OMPDataPerf cannot profile this program.",
                caps.runtime_name
            ));
        }
        ToolRegistration::default()
    }

    fn on_target(&mut self, cb: &TargetCallback) {
        let key = (cb.target_id, construct_tag(cb.construct));
        match cb.endpoint {
            // Degraded mode: begin-only → record an instantaneous marker
            // (pre-EMI runtimes never deliver End).
            Endpoint::Begin if self.degraded => {
                self.shared.lock().log.record_target(
                    target_kind(cb.construct),
                    cb.device,
                    TimeSpan::at(cb.time),
                    cb.codeptr_ra,
                );
            }
            Endpoint::Begin => {
                self.open_targets.insert(key, cb.time);
            }
            Endpoint::End => {
                let start = self.open_targets.remove(&key).unwrap_or(cb.time);
                self.shared.lock().log.record_target(
                    target_kind(cb.construct),
                    cb.device,
                    TimeSpan::new(start, cb.time),
                    cb.codeptr_ra,
                );
            }
        }
    }

    fn on_data_op(&mut self, cb: &DataOpCallback<'_>) {
        match cb.endpoint {
            // Degraded (non-EMI) runtimes never send End: record now
            // with zero duration, hashing the payload that a pointer-
            // chasing tool reads at op start.
            Endpoint::Begin if self.degraded => {
                let mut c = self.shared.lock();
                let hash = cb.payload.map(|p| self.hash_payload(&mut c, p)).or(
                    if data_op_kind(cb.optype) == DataOpKind::Transfer {
                        Some(0)
                    } else {
                        None
                    },
                );
                let event = c.log.record_data_op(
                    data_op_kind(cb.optype),
                    cb.src_device,
                    cb.dest_device,
                    cb.src_addr,
                    cb.dest_addr,
                    cb.bytes,
                    hash,
                    TimeSpan::at(cb.time),
                    cb.codeptr_ra,
                );
                if self.cfg.stream {
                    self.clock.observe(cb.time);
                    let watermark = self.clock.watermark();
                    if let Some(engine) = c.stream.as_mut() {
                        engine.push_data_op(event);
                        engine.advance_watermark(watermark);
                    }
                }
            }
            Endpoint::Begin => {
                if self.cfg.stream {
                    self.clock.open(cb.time);
                }
                self.open_ops.insert(cb.host_op_id, cb.time);
            }
            Endpoint::End => {
                // Close the clock only for a *matched* Begin: an
                // unmatched End's fallback time could coincide with a
                // different op's open entry and corrupt the watermark.
                let start = match self.open_ops.remove(&cb.host_op_id) {
                    Some(begin) => {
                        if self.cfg.stream {
                            self.clock.close(begin, cb.time);
                        }
                        begin
                    }
                    None => {
                        if self.cfg.stream {
                            self.clock.observe(cb.time);
                        }
                        cb.time
                    }
                };
                let mut c = self.shared.lock();
                let hash = cb.payload.map(|p| self.hash_payload(&mut c, p));
                let event = c.log.record_data_op(
                    data_op_kind(cb.optype),
                    cb.src_device,
                    cb.dest_device,
                    cb.src_addr,
                    cb.dest_addr,
                    cb.bytes,
                    hash,
                    TimeSpan::new(start, cb.time),
                    cb.codeptr_ra,
                );
                if self.cfg.stream {
                    let watermark = self.clock.watermark();
                    if let Some(engine) = c.stream.as_mut() {
                        engine.push_data_op(event);
                        engine.advance_watermark(watermark);
                    }
                }
            }
        }
    }

    fn on_submit(&mut self, cb: &SubmitCallback) {
        match cb.endpoint {
            Endpoint::Begin if self.degraded => {
                let mut c = self.shared.lock();
                let event = c.log.record_target(
                    TargetKind::Kernel,
                    cb.device,
                    TimeSpan::at(cb.time),
                    cb.codeptr_ra,
                );
                if self.cfg.stream {
                    self.clock.observe(cb.time);
                    let watermark = self.clock.watermark();
                    if let Some(engine) = c.stream.as_mut() {
                        engine.push_target(event);
                        engine.advance_watermark(watermark);
                    }
                }
            }
            Endpoint::Begin => {
                if self.cfg.stream {
                    self.clock.open(cb.time);
                }
                self.open_submits.insert(cb.target_id, cb.time);
            }
            Endpoint::End => {
                // Matched-Begin-only close: see on_data_op.
                let start = match self.open_submits.remove(&cb.target_id) {
                    Some(begin) => {
                        if self.cfg.stream {
                            self.clock.close(begin, cb.time);
                        }
                        begin
                    }
                    None => {
                        if self.cfg.stream {
                            self.clock.observe(cb.time);
                        }
                        cb.time
                    }
                };
                let mut c = self.shared.lock();
                let event = c.log.record_target(
                    TargetKind::Kernel,
                    cb.device,
                    TimeSpan::new(start, cb.time),
                    cb.codeptr_ra,
                );
                if self.cfg.stream {
                    let watermark = self.clock.watermark();
                    if let Some(engine) = c.stream.as_mut() {
                        engine.push_target(event);
                        engine.advance_watermark(watermark);
                    }
                }
            }
        }
    }

    fn finalize(&mut self, total_time_ns: u64) {
        let mut c = self.shared.lock();
        c.log.set_total_time(SimDuration(total_time_ns));
        c.finalized = true;
        if self.cfg.verbose {
            let rate = c.hash_meter.gb_per_s();
            c.info
                .push(format!("info: effective hash rate {rate:.1} GB/s"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_model::DeviceId;
    use odp_ompt::CompilerProfile;

    fn data_op<'a>(
        endpoint: Endpoint,
        host_op_id: u64,
        optype: DataOpType,
        time: u64,
        payload: Option<&'a [u8]>,
    ) -> DataOpCallback<'a> {
        DataOpCallback {
            endpoint,
            target_id: 1,
            host_op_id,
            optype,
            src_device: DeviceId::HOST,
            src_addr: 0x1000,
            dest_device: DeviceId::target(0),
            dest_addr: 0xd000,
            bytes: payload.map(|p| p.len() as u64).unwrap_or(64),
            codeptr_ra: odp_model::CodePtr(0x42),
            time: SimTime(time),
            payload,
        }
    }

    #[test]
    fn emi_begin_end_produces_one_record_with_duration() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let payload = vec![7u8; 256];
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            5,
            DataOpType::TransferToDevice,
            100,
            None,
        ));
        tool.on_data_op(&data_op(
            Endpoint::End,
            5,
            DataOpType::TransferToDevice,
            150,
            Some(&payload),
        ));
        tool.finalize(1_000);
        let trace = handle.take_trace();
        let events = trace.data_op_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].span.duration().as_nanos(), 50);
        assert!(events[0].hash.is_some());
        assert_eq!(
            events[0].hash.unwrap().0,
            HashAlgoId::default().hash(&payload)
        );
    }

    #[test]
    fn hash_meter_accumulates() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let payload = vec![1u8; 1024];
        for i in 0..10 {
            tool.on_data_op(&data_op(
                Endpoint::Begin,
                i,
                DataOpType::TransferToDevice,
                0,
                None,
            ));
            tool.on_data_op(&data_op(
                Endpoint::End,
                i,
                DataOpType::TransferToDevice,
                10,
                Some(&payload),
            ));
        }
        let m = handle.hash_meter();
        assert_eq!(m.bytes, 10 * 1024);
        assert!(m.nanos > 0);
        assert!(handle.hash_rate_gb_per_s() > 0.0);
    }

    #[test]
    fn degraded_runtime_sets_warning_and_zero_durations() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        let caps = CompilerProfile::LlvmClang.capabilities_pre_emi();
        let reg = tool.initialize(&caps);
        assert!(reg.granted(CallbackKind::TargetDataOp));
        assert!(handle.degraded());
        assert!(handle
            .console_lines()
            .iter()
            .any(|l| l.contains("Some features may be degraded")));
        let payload = vec![2u8; 64];
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            1,
            DataOpType::TransferToDevice,
            100,
            Some(&payload),
        ));
        tool.finalize(500);
        let trace = handle.take_trace();
        let events = trace.data_op_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].span.duration().as_nanos(), 0, "begin-only");
        assert!(events[0].hash.is_some());
    }

    #[test]
    fn gcc_runtime_is_unusable() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        let reg = tool.initialize(&CompilerProfile::GnuGcc.capabilities());
        assert!(reg.requested.is_empty());
        assert!(handle.unusable());
        assert!(handle
            .console_lines()
            .iter()
            .any(|l| l.contains("cannot profile")));
    }

    #[test]
    fn quiet_mode_suppresses_warnings() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig {
            quiet: true,
            ..Default::default()
        });
        tool.initialize(&CompilerProfile::GnuGcc.capabilities());
        assert!(handle.unusable());
        assert!(!handle
            .console_lines()
            .iter()
            .any(|l| l.starts_with("warning")));
    }

    #[test]
    fn collision_audit_sees_payloads() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig {
            collision_audit: true,
            ..Default::default()
        });
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let p1 = vec![1u8; 128];
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            1,
            DataOpType::TransferToDevice,
            0,
            None,
        ));
        tool.on_data_op(&data_op(
            Endpoint::End,
            1,
            DataOpType::TransferToDevice,
            10,
            Some(&p1),
        ));
        assert_eq!(handle.collision_count(), 0);
        handle.with(|c| assert_eq!(c.audit.checks(), 1));
    }

    #[test]
    fn streaming_tool_matches_postmortem_with_out_of_order_completion() {
        use crate::detect::{EventView, Findings};
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig {
            stream: true,
            ..Default::default()
        });
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        assert!(handle.streaming());

        let payload = vec![9u8; 128];
        // Op 1 opens at t=0 and stays open while op 2 (same content →
        // duplicate) and a kernel complete inside it: records land in
        // completion order 2, kernel, 1 — chronological order 1, 2, kernel.
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            1,
            DataOpType::TransferToDevice,
            0,
            None,
        ));
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            2,
            DataOpType::TransferToDevice,
            50,
            None,
        ));
        tool.on_data_op(&data_op(
            Endpoint::End,
            2,
            DataOpType::TransferToDevice,
            60,
            Some(&payload),
        ));
        let submit = |endpoint, time| SubmitCallback {
            endpoint,
            target_id: 7,
            device: DeviceId::target(0),
            requested_num_teams: 1,
            codeptr_ra: odp_model::CodePtr(0x77),
            time: SimTime(time),
        };
        tool.on_submit(&submit(Endpoint::Begin, 70));
        tool.on_submit(&submit(Endpoint::End, 80));
        // The streaming engine must not have released anything past the
        // still-open op 1 (its begin pins the watermark at 0).
        handle.with(|c| {
            let stats = c.stream.as_ref().unwrap().buffer_stats();
            assert!(stats.buffered_now >= 2, "events wait on the open op");
        });
        tool.on_data_op(&data_op(
            Endpoint::End,
            1,
            DataOpType::TransferToDevice,
            200,
            Some(&payload),
        ));
        tool.finalize(1_000);

        let trace = handle.take_trace();
        let mut engine = handle.take_stream_engine().expect("streaming engine");
        let live = engine.take_findings();
        assert!(!live.is_empty(), "duplicate must be found live");
        let view = EventView::from_log(&trace);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect_fused(&view);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap()
        );
        assert_eq!(streamed.counts().dd, 1);
    }

    #[test]
    fn unmatched_end_does_not_corrupt_the_watermark() {
        use crate::detect::{EventView, Findings};
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig {
            stream: true,
            ..Default::default()
        });
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let payload = vec![4u8; 64];
        // Op 1 opens at t=100 and stays open. An *unmatched* End (op 2,
        // no Begin) arrives at the same t=100: its fallback begin time
        // coincides with op 1's open entry and must not close it.
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            1,
            DataOpType::TransferToDevice,
            100,
            None,
        ));
        tool.on_data_op(&data_op(
            Endpoint::End,
            2,
            DataOpType::TransferToDevice,
            100,
            Some(&payload),
        ));
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            3,
            DataOpType::TransferToDevice,
            150,
            None,
        ));
        tool.on_data_op(&data_op(
            Endpoint::End,
            3,
            DataOpType::TransferToDevice,
            160,
            Some(&payload),
        ));
        // Op 1 is still open: nothing may have been released past t=99.
        handle.with(|c| {
            let stats = c.stream.as_ref().unwrap().buffer_stats();
            assert_eq!(stats.buffered_now, 2, "both events must wait on op 1");
        });
        tool.on_data_op(&data_op(
            Endpoint::End,
            1,
            DataOpType::TransferToDevice,
            200,
            Some(&payload),
        ));
        tool.finalize(500);
        let trace = handle.take_trace();
        let mut engine = handle.take_stream_engine().unwrap();
        let view = EventView::from_log(&trace);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect_fused(&view);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap()
        );
    }

    #[test]
    fn streaming_off_by_default() {
        let (_tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        assert!(!handle.streaming());
        assert!(handle.stream_counts().is_none());
        assert!(handle.take_stream_findings().is_empty());
        assert!(handle.take_stream_engine().is_none());
    }

    #[test]
    fn submit_pairs_become_kernel_records() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let cb = |endpoint, time| SubmitCallback {
            endpoint,
            target_id: 9,
            device: DeviceId::target(0),
            requested_num_teams: 4,
            codeptr_ra: odp_model::CodePtr(0x99),
            time: SimTime(time),
        };
        tool.on_submit(&cb(Endpoint::Begin, 100));
        tool.on_submit(&cb(Endpoint::End, 400));
        let trace = handle.take_trace();
        let kernels = trace.kernel_events();
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].span.duration().as_nanos(), 300);
    }
}
