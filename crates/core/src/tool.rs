//! The OMPT client — what `libompdataperf.so` is to a native program.
//!
//! [`OmpDataPerfTool`] registers for the EMI target callbacks, hashes
//! every transfer payload with the configured algorithm (timing itself,
//! which yields the Table 4 "effective hash rate"), and appends compact
//! records to a [`TraceLog`]. On pre-5.1 runtimes it falls back to the
//! deprecated begin-only callbacks with the §A.6 degradation warning; on
//! runtimes without target callbacks it reports itself unusable.
//!
//! # Sharded multi-threaded collection
//!
//! A real OpenMP runtime drives OMPT callbacks from *every* runtime
//! thread. The collector is therefore sharded: each runtime thread owns
//! one [`OmpDataPerfTool`] instance (fork more with
//! [`ToolHandle::fork_tool`]), and the per-callback fast path touches
//! **only that thread's shard** — its own [`TraceLog`] shard (event ids
//! embed the shard, so the post-run [`TraceLog::merge_shards`] is
//! deterministic regardless of OS scheduling), its own hash meter, its
//! own [`StreamClock`], and its own lock-free SPSC ingest ring
//! ([`odp_ompt::ring`]). Cross-thread traffic on the fast path is one
//! slot write + release store into the ring, plus — every K-th event,
//! via [`PublishBatcher`] — a pair of atomic stores into the
//! [`GlobalWatermark`]. **Zero global lock acquisitions.**
//!
//! Streaming mode adds an amortized batch step: after queuing its
//! event, a callback *tries* to take the engine lock; whoever succeeds
//! snapshots the merged watermark, sweeps every shard's ring (and its
//! bounded spill, fed only when a ring overflows) into the
//! [`StreamingEngine`]'s reorder buffer in one
//! [`StreamingEngine::ingest_batch`] call, and advances it. A failed
//! `try_lock` just means another thread is already draining — the next
//! advance catches up. Blocking observers (`take_stream_findings`,
//! taps, finalize, stats) drain with `flush`: they first re-publish
//! every dirty shard clock, because batched publication deliberately
//! lets the published bound lag the real clock (lagging is always
//! conservative — never unsound — but a flush is what makes everything
//! decidable *now* actually decided). The snapshot-*then*-drain order
//! is what makes all of this sound: each shard queues an event
//! *before* publishing the clock edge that could unblock it, so any
//! event at or below a snapshotted merged watermark is already visible
//! to the sweep.
//!
//! Lock order (outermost first): engine → shard list → one shard →
//! control, engine → drain batch → ingest list → one spill/consumer,
//! and engine → tap list → one tap buffer (the findings tee). The fast
//! path takes only its own shard's (uncontended) lock — and its own
//! spill's, only when the ring overflows; `control` guards cold data
//! (console lines, flags, the opt-in collision audit, which serializes
//! by design); taps are touched only by findings consumers, never by
//! callbacks.
//!
//! Construction returns the tool plus a [`ToolHandle`] sharing its
//! collector, so the harness can extract the merged trace after the
//! runtime finishes with the boxed tools.

use crate::collision::CollisionAudit;
use crate::detect::{
    IssueCounts, StreamBufferStats, StreamConfig, StreamEvent, StreamFinding, StreamingEngine,
};
use odp_hash::fnv::FnvHashMap;
use odp_hash::HashAlgoId;
use odp_model::{DataOpKind, SimDuration, SimTime, TargetKind, TimeSpan, TraceHealth};
use odp_ompt::{
    ring, CallbackKind, DataOpCallback, DataOpType, Endpoint, GlobalWatermark, PublishBatcher,
    RuntimeCapabilities, ShardSlot, StallDetector, StreamClock, SubmitCallback, TargetCallback,
    TargetConstructKind, Tool, ToolRegistration,
};
use odp_trace::TraceLog;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Tool configuration (the CLI's flags, §A.5.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct ToolConfig {
    /// Content-hash algorithm (default: `t1ha0_avx2`, §B.1).
    pub hash_algo: HashAlgoId,
    /// Enable the §B.1 collision audit (stores payload copies; the
    /// audit store is shared, so audited callbacks serialize on it).
    pub collision_audit: bool,
    /// Suppress warnings (`-q`).
    pub quiet: bool,
    /// Verbose output (`-v`).
    pub verbose: bool,
    /// Run the streaming detection engine online (`--stream`): every
    /// callback additionally feeds the five §5 state machines, emitting
    /// findings while the program runs. Post-run, the engine finalizes
    /// to findings byte-identical to the post-mortem path (unless
    /// `stream_max_frontier` forced spills).
    pub stream: bool,
    /// Hard cap for Algorithm 2's lookahead window
    /// ([`StreamConfig::max_frontier`]); `None` keeps streaming exact.
    pub stream_max_frontier: Option<usize>,
    /// Wall-clock budget the streaming drain will wait on a
    /// non-advancing merged watermark while events are buffered before
    /// force-releasing the reorder buffer (`--stall-timeout`). A wedged
    /// or dead shard pins the watermark forever; the forced release
    /// keeps the pipeline live at the cost of tagging every finding
    /// decided afterwards [`crate::Confidence::Degraded`]. `None`
    /// (default) waits indefinitely.
    pub stall_timeout: Option<std::time::Duration>,
    /// Capacity of each shard's SPSC ingest ring (streaming mode),
    /// rounded up to a power of two; `None` = 1024. A full ring never
    /// blocks or drops: overflowing events take the mutex-protected
    /// spill path (counted in [`ToolHandle::spilled_events`]).
    pub ring_capacity: Option<usize>,
    /// Publish a shard's clock to the global watermark every K-th
    /// event edge instead of every edge; `None` =
    /// [`PublishBatcher::DEFAULT_EVERY`]. Retreat-risk edges always
    /// publish immediately, and blocking drains flush, so batching
    /// trades only drain latency — never soundness or final coverage.
    pub publish_every: Option<u32>,
}

/// Wall-clock hashing meter (Table 4's "effective hash rate").
#[derive(Clone, Copy, Debug, Default)]
pub struct HashMeter {
    /// Payload bytes hashed.
    pub bytes: u64,
    /// Wall-clock nanoseconds spent hashing.
    pub nanos: u64,
}

impl HashMeter {
    /// Effective rate in GB/s (decimal).
    pub fn gb_per_s(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.bytes as f64 / self.nanos as f64
        }
    }
}

/// Default capacity of a shard's SPSC ingest ring.
const DEFAULT_RING_CAPACITY: usize = 1024;

/// The consumer-facing side of one shard's ingest channel: the ring's
/// consumer half plus the bounded overflow spill. Shared between the
/// producer (spill only) and the drain path; the ring itself needs no
/// lock — the consumer mutex only serializes successive drainers.
struct IngestShared {
    /// Consumer half of the shard's SPSC ring.
    consumer: Mutex<ring::Consumer<StreamEvent>>,
    /// Overflow events that arrived while the ring was full. The
    /// producer pushes here (briefly locking) only on overflow, so the
    /// common case never touches this mutex.
    spill: Mutex<Vec<StreamEvent>>,
    /// Total events that ever took the spill path (monotonic).
    spilled: AtomicU64,
}

/// One runtime thread's slice of the collector. Only the owning thread
/// touches it on the fast path; the handle's observers lock it briefly
/// to aggregate, and flushing drains lock it to re-publish the clock.
struct ShardState {
    /// This thread's trace shard (event ids embed the shard id).
    log: TraceLog,
    /// This thread's hash-rate meter.
    hash_meter: HashMeter,
    /// Evidence this shard quarantined instead of recording (orphaned
    /// `End`s, truncated payload hashes).
    health: TraceHealth,
    /// This thread's reorder clock. Lives under the shard lock (not in
    /// the tool) so a flushing drain can publish it fresh.
    clock: StreamClock,
    /// Amortizes watermark publication to every K-th edge.
    batcher: PublishBatcher,
    /// This shard's watermark-publish slot.
    slot: ShardSlot,
    /// Producer half of the ingest ring (streaming mode only). Under
    /// the shard lock, which only the owning thread takes on the fast
    /// path — so pushes stay effectively single-producer and
    /// uncontended.
    ring: Option<ring::Producer<StreamEvent>>,
    /// The shared side of the ingest channel (spill on overflow).
    ingest: Option<Arc<IngestShared>>,
}

impl ShardState {
    /// Hand `event` to the streaming consumer (ring; spill when full)
    /// and note the clock edge, publishing this shard's slot when the
    /// batcher says it is due. The caller holds the shard lock and has
    /// already applied the edge to `clock`. The order is load-bearing:
    /// the event must be queued *before* the publish that could
    /// unblock it (the drain's snapshot-then-sweep soundness).
    fn queue_and_note(&mut self, shared: &ToolShared, event: Option<StreamEvent>) {
        if let (Some(event), Some(ring)) = (event, self.ring.as_mut()) {
            if let Err(event) = ring.push(event) {
                if let Some(ingest) = self.ingest.as_ref() {
                    ingest.spill.lock().push(event);
                    ingest.spilled.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if self.batcher.note(&self.clock) {
            shared.watermark.publish(self.slot, &self.clock);
            self.batcher.mark_published(&self.clock);
        }
    }
}

/// Cold shared state: console lines, negotiation flags, the audit.
#[derive(Debug, Default)]
struct Control {
    /// Collision audit store (shared across shards by design: a
    /// collision between payloads hashed on different threads must
    /// still be caught).
    audit: CollisionAudit,
    /// `info:` console lines (§A.6).
    info: Vec<String>,
    /// `warning:` console lines.
    warnings: Vec<String>,
    /// Operating against a pre-EMI runtime (durations unavailable).
    degraded: bool,
    /// No target callbacks at all — nothing can be profiled.
    unusable: bool,
    /// First shard already performed the `initialize` handshake.
    initialized: bool,
    /// Shards created so far.
    spawned_shards: usize,
    /// Shards whose runtime called `finalize`.
    finalized_shards: usize,
    /// Every spawned shard finalized (program finished).
    finalized: bool,
}

/// One tee subscriber's buffer of not-yet-consumed findings.
type TapBuf = Arc<Mutex<Vec<StreamFinding>>>;

/// Everything the shards share.
struct ToolShared {
    cfg: ToolConfig,
    control: Mutex<Control>,
    /// All shards, fork order (= shard id order).
    shards: Mutex<Vec<Arc<Mutex<ShardState>>>>,
    /// Per-shard ingest channels, fork order (streaming mode only).
    ingests: Mutex<Vec<Arc<IngestShared>>>,
    /// Scratch buffer the drain reuses across sweeps. Guarded by the
    /// engine lock in practice (only a drainer touches it); its own
    /// mutex keeps the type honest. Lock order: engine → batch.
    batch: Mutex<Vec<StreamEvent>>,
    /// The online detection engine (`stream` mode only). Fast-path
    /// callbacks never block on it: they `try_lock` to drain.
    engine: Mutex<Option<StreamingEngine>>,
    /// Per-shard clock merge (lock-free).
    watermark: GlobalWatermark,
    /// The watermark stall detector (`stall_timeout` + `stream` only).
    /// Lock order: engine → stall (the drain consults it while holding
    /// the engine).
    stall: Mutex<Option<StallDetector>>,
    /// The live-findings tee: every finding harvested from the engine
    /// is appended to **each** registered tap, so independent consumers
    /// (a snapshot poller, a remediation policy) compose instead of
    /// stealing from one drain-once stream.
    taps: Mutex<Vec<TapBuf>>,
    /// The handle's default stream ([`ToolHandle::take_stream_findings`])
    /// — registered as a tap lazily, on first use, so runs whose only
    /// consumers are explicit taps (e.g. `--remediate` without a
    /// poller) never accumulate an undrained buffer.
    default_tap: Mutex<Option<TapBuf>>,
}

impl ToolShared {
    /// Sweep every shard's ingest ring (and spill) into the engine and
    /// advance it to the merged watermark. `engine` must be locked by
    /// the caller.
    ///
    /// `flush` is for blocking observers: batched publication lets the
    /// published bound lag each shard's real clock (conservative, so
    /// events can sit queued behind a stale bound), and a flushing
    /// drain first re-publishes every dirty shard fresh so everything
    /// decidable *now* is decided. The callback fast path passes
    /// `false` — it must never take another shard's lock.
    fn drain_locked(&self, engine: &mut StreamingEngine, flush: bool) {
        if flush {
            let shards = self.shards.lock();
            for shard in shards.iter() {
                let mut shard = shard.lock();
                let s = &mut *shard;
                if s.batcher.dirty() {
                    self.watermark.publish(s.slot, &s.clock);
                    s.batcher.mark_published(&s.clock);
                }
            }
        }
        // Snapshot BEFORE sweeping: every event at or below this merged
        // watermark was queued before its shard published the edge that
        // enabled it (shards queue, then publish), so the sweep below
        // is guaranteed to see it.
        let watermark = self.watermark.merged();
        let mut batch = self.batch.lock();
        {
            let ingests = self.ingests.lock();
            for ingest in ingests.iter() {
                // Spill before ring: spilled events predate whatever
                // the producer pushed after the consumer freed space.
                // (The engine's reorder buffer re-sorts either way.)
                batch.append(&mut ingest.spill.lock());
                ingest.consumer.lock().pop_all(&mut batch);
            }
        }
        // `None` = some shard may still emit at time zero: buffer only.
        engine.ingest_batch(batch.drain(..), watermark);
        drop(batch);
        // Stall recovery: a wedged shard (open Begin, thread never
        // progressing) pins the merged watermark and would buffer the
        // stream forever. Past the configured timeout the drain
        // force-releases the reorder buffer; the engine tags every
        // finding decided afterwards as degraded.
        let mut stall = self.stall.lock();
        if let Some(detector) = stall.as_mut() {
            if detector.check(watermark, engine.buffer_stats().buffered_now) {
                let released = engine.force_release_all();
                if released > 0 {
                    detector.force_released();
                    if !self.cfg.quiet {
                        self.control.lock().warnings.push(format!(
                            "warning: merged watermark stalled past the timeout; \
                             force-released {released} buffered event(s) — \
                             findings are now degraded evidence"
                        ));
                    }
                }
            }
        }
    }

    /// Opportunistic drain from the callback fast path: never blocks.
    fn maybe_drain(&self) {
        if !self.cfg.stream {
            return;
        }
        let Some(mut guard) = self.engine.try_lock() else {
            return; // another thread is already draining
        };
        if let Some(engine) = guard.as_mut() {
            self.drain_locked(engine, false);
        }
    }

    /// Blocking (flushing) drain for observers and finalization.
    fn drain_all(&self) {
        let mut guard = self.engine.lock();
        if let Some(engine) = guard.as_mut() {
            self.drain_locked(engine, true);
        }
    }

    /// Move the engine's emitted findings into every registered tap.
    /// `engine` must be locked by the caller.
    fn harvest_locked(&self, engine: &mut StreamingEngine) {
        let new = engine.take_findings();
        if new.is_empty() {
            return;
        }
        let taps = self.taps.lock();
        for tap in taps.iter() {
            tap.lock().extend(new.iter().copied());
        }
    }

    /// The default stream's tap, registered on first use.
    fn default_tap(&self) -> TapBuf {
        let mut slot = self.default_tap.lock();
        match &*slot {
            Some(tap) => tap.clone(),
            None => {
                let tap: TapBuf = Arc::new(Mutex::new(Vec::new()));
                self.taps.lock().push(tap.clone());
                *slot = Some(tap.clone());
                tap
            }
        }
    }

    /// Drain shard queues into the engine and harvest everything it
    /// emitted into the taps. `block` decides whether to wait for a
    /// contended engine lock or skip (another thread is already at it).
    fn drain_and_harvest(&self, block: bool) {
        let mut guard = if block {
            self.engine.lock()
        } else {
            match self.engine.try_lock() {
                Some(guard) => guard,
                None => return,
            }
        };
        if let Some(engine) = guard.as_mut() {
            // Observer-initiated: flush even on the try_lock path (the
            // lock was free; shard locks are brief and uncontended).
            self.drain_locked(engine, true);
            self.harvest_locked(engine);
        }
    }
}

/// An independent subscription to the live findings stream. Register
/// with [`ToolHandle::tap_stream_findings`] **before** the run starts;
/// every finding the engine emits from then on is delivered to every
/// registered tap (the tee), so a live console poller and a remediation
/// policy can both consume the full stream concurrently.
#[derive(Clone)]
pub struct FindingsTap {
    shared: Arc<ToolShared>,
    buf: TapBuf,
}

impl FindingsTap {
    /// Drain the findings delivered to this tap since the last call.
    /// Sweeps every shard's pending events and harvests the engine
    /// first, so the caller sees everything decidable at the current
    /// merged watermark.
    pub fn take(&self) -> Vec<StreamFinding> {
        self.shared.drain_and_harvest(true);
        std::mem::take(&mut *self.buf.lock())
    }

    /// Like [`FindingsTap::take`], but never waits on a contended
    /// engine lock (another thread drains on our behalf): returns
    /// whatever has already been delivered. The cheap per-consult pump
    /// for per-thread advisors.
    pub fn try_take(&self) -> Vec<StreamFinding> {
        self.shared.drain_and_harvest(false);
        std::mem::take(&mut *self.buf.lock())
    }
}

/// Shared handle for forking shards and extracting results.
#[derive(Clone)]
pub struct ToolHandle {
    shared: Arc<ToolShared>,
}

impl ToolHandle {
    /// Fork a tool for one more runtime thread (at most
    /// [`OmpDataPerfTool::MAX_SHARDS`] in total). All forks share this
    /// handle's collector: their trace shards merge deterministically in
    /// [`ToolHandle::take_trace`], their clocks merge in the global
    /// watermark, and their streamed events feed one engine. Fork every
    /// shard *before* the run starts: once the merged watermark has
    /// advanced, a late shard's early-time events could no longer be
    /// ordered ahead of already-released ones.
    pub fn fork_tool(&self) -> OmpDataPerfTool {
        OmpDataPerfTool::new_shard(self.shared.clone())
    }

    /// Number of shards forked so far.
    pub fn shard_count(&self) -> usize {
        self.shared.control.lock().spawned_shards
    }

    /// Take the merged trace out (leaves empty shard logs behind).
    /// Shard streams merge by `(start, shard, per-shard order)` — the
    /// output is independent of how the OS scheduled the recording
    /// threads.
    pub fn take_trace(&self) -> TraceLog {
        let shards = self.shared.shards.lock();
        let logs: Vec<TraceLog> = shards
            .iter()
            .map(|s| std::mem::take(&mut s.lock().log))
            .collect();
        TraceLog::merge_shards(logs)
    }

    /// Aggregate hash meter across all shards.
    pub fn hash_meter(&self) -> HashMeter {
        let shards = self.shared.shards.lock();
        let mut total = HashMeter::default();
        for s in shards.iter() {
            let s = s.lock();
            total.bytes += s.hash_meter.bytes;
            total.nanos += s.hash_meter.nanos;
        }
        total
    }

    /// Effective hash rate in GB/s (aggregate).
    pub fn hash_rate_gb_per_s(&self) -> f64 {
        self.hash_meter().gb_per_s()
    }

    /// Accumulated console lines (info then warnings).
    pub fn console_lines(&self) -> Vec<String> {
        let c = self.shared.control.lock();
        c.info.iter().chain(c.warnings.iter()).cloned().collect()
    }

    /// Is the tool in degraded (non-EMI) mode?
    pub fn degraded(&self) -> bool {
        self.shared.control.lock().degraded
    }

    /// Could the tool register any target callbacks at all?
    pub fn unusable(&self) -> bool {
        self.shared.control.lock().unusable
    }

    /// Number of hash collisions the audit observed.
    pub fn collision_count(&self) -> usize {
        self.shared.control.lock().audit.collisions().len()
    }

    /// Number of payloads the collision audit checked.
    pub fn audit_checks(&self) -> u64 {
        self.shared.control.lock().audit.checks()
    }

    /// Bytes of payload copies the collision audit retains.
    pub fn audit_retained_bytes(&self) -> usize {
        self.shared.control.lock().audit.retained_bytes()
    }

    /// Is the streaming engine attached?
    pub fn streaming(&self) -> bool {
        self.shared.engine.lock().is_some()
    }

    /// Drain the findings the streaming engine emitted since the last
    /// call (empty when streaming is off). Safe to call while the
    /// program runs — this is the live consumption point. Sweeps every
    /// shard's pending events first, so the caller sees everything
    /// decidable at the current merged watermark. This is the handle's
    /// *default* tee subscription (registered lazily on first call — it
    /// observes findings emitted from then on); explicit taps
    /// ([`ToolHandle::tap_stream_findings`]) receive the same findings
    /// independently.
    pub fn take_stream_findings(&self) -> Vec<StreamFinding> {
        if !self.shared.cfg.stream {
            return Vec::new();
        }
        let tap = self.shared.default_tap();
        self.shared.drain_and_harvest(true);
        let mut buf = tap.lock();
        std::mem::take(&mut *buf)
    }

    /// Register an independent live-findings subscription (the tee).
    /// Every finding emitted after registration is delivered to every
    /// tap *and* the default stream; register before the run starts so
    /// nothing is missed.
    pub fn tap_stream_findings(&self) -> FindingsTap {
        let buf: TapBuf = Arc::new(Mutex::new(Vec::new()));
        self.shared.taps.lock().push(buf.clone());
        FindingsTap {
            shared: self.shared.clone(),
            buf,
        }
    }

    /// Issue counts of everything the streaming engine has emitted so
    /// far (`None` when streaming is off).
    pub fn stream_counts(&self) -> Option<IssueCounts> {
        let mut guard = self.shared.engine.lock();
        guard.as_mut().map(|engine| {
            self.shared.drain_locked(engine, true);
            engine.live_counts()
        })
    }

    /// Current streaming window sizes (`None` when streaming is off).
    /// Drains first — otherwise events sitting in the ingest rings
    /// would be invisible to the count.
    pub fn stream_buffer_stats(&self) -> Option<StreamBufferStats> {
        let mut guard = self.shared.engine.lock();
        guard.as_mut().map(|engine| {
            self.shared.drain_locked(engine, true);
            engine.buffer_stats()
        })
    }

    /// Events that overflowed their shard's ingest ring and took the
    /// mutex-protected spill path instead (streaming mode; total
    /// across shards). Nothing is ever lost or reordered either way —
    /// a growing count just means [`ToolConfig::ring_capacity`] is
    /// undersized for the callback rate between drains.
    pub fn spilled_events(&self) -> u64 {
        let ingests = self.shared.ingests.lock();
        ingests
            .iter()
            .map(|i| i.spilled.load(Ordering::Relaxed))
            .sum()
    }

    /// Aggregate trace health: what the collector and the streaming
    /// engine quarantined instead of trusting. Tool-side orphaned
    /// `End`s and truncated payloads come from the shards; late events,
    /// forced releases, and finalize misses come from the engine.
    /// Duplicate event ids are detected at merge time — fold
    /// [`TraceLog::duplicate_id_count`] of the extracted trace in
    /// separately.
    pub fn trace_health(&self) -> TraceHealth {
        let mut health = TraceHealth::default();
        // Lock order: engine → shard list → one shard.
        let guard = self.shared.engine.lock();
        if let Some(engine) = guard.as_ref() {
            health.merge(&engine.health());
        }
        let shards = self.shared.shards.lock();
        for s in shards.iter() {
            health.merge(&s.lock().health);
        }
        health
    }

    /// Take the streaming engine out for finalization against the
    /// extracted trace (leaves streaming detached). Performs a final
    /// full drain first, so no shard-buffered event is lost.
    pub fn take_stream_engine(&self) -> Option<StreamingEngine> {
        let mut guard = self.shared.engine.lock();
        if let Some(engine) = guard.as_mut() {
            self.shared.drain_locked(engine, true);
        }
        guard.take()
    }
}

/// The tool. Attach with `runtime.attach_tool(Box::new(tool))`; for a
/// multi-threaded runtime, attach one [`ToolHandle::fork_tool`] result
/// per runtime thread.
pub struct OmpDataPerfTool {
    cfg: ToolConfig,
    shared: Arc<ToolShared>,
    /// This instance's shard (only owner on the fast path).
    shard: Arc<Mutex<ShardState>>,
    /// This shard's watermark-publish slot.
    slot: ShardSlot,
    /// Cached copy of the collector's `degraded` flag, decided once at
    /// `initialize` — callbacks read this instead of taking a lock a
    /// second time per event.
    degraded: bool,
    /// host_op_id → begin time of the open data op.
    open_ops: FnvHashMap<u64, SimTime>,
    /// target_id → begin time of the open kernel submit.
    open_submits: FnvHashMap<u64, SimTime>,
    /// (target_id, construct discriminant) → begin time.
    open_targets: FnvHashMap<(u64, u8), SimTime>,
}

impl OmpDataPerfTool {
    /// Maximum number of shards one collector supports (the global
    /// watermark's fixed slot capacity).
    pub const MAX_SHARDS: usize = GlobalWatermark::DEFAULT_SHARDS;

    /// Build the first shard and the extraction handle.
    pub fn new(cfg: ToolConfig) -> (OmpDataPerfTool, ToolHandle) {
        let shared = Arc::new(ToolShared {
            cfg,
            control: Mutex::new(Control {
                audit: CollisionAudit::new(cfg.collision_audit),
                ..Default::default()
            }),
            shards: Mutex::new(Vec::new()),
            ingests: Mutex::new(Vec::new()),
            batch: Mutex::new(Vec::new()),
            engine: Mutex::new(cfg.stream.then(|| {
                StreamingEngine::new(StreamConfig {
                    num_devices: None,
                    max_frontier: cfg.stream_max_frontier,
                })
            })),
            watermark: GlobalWatermark::with_capacity(GlobalWatermark::DEFAULT_SHARDS),
            stall: Mutex::new(
                cfg.stall_timeout
                    .filter(|_| cfg.stream)
                    .map(StallDetector::new),
            ),
            taps: Mutex::new(Vec::new()),
            default_tap: Mutex::new(None),
        });
        let handle = ToolHandle {
            shared: shared.clone(),
        };
        (OmpDataPerfTool::new_shard(shared), handle)
    }

    fn new_shard(shared: Arc<ToolShared>) -> OmpDataPerfTool {
        let slot = shared.watermark.register();
        let cfg = shared.cfg;
        // The ingest channel exists only in streaming mode: non-stream
        // runs never queue events, so they skip the ring allocation.
        let (producer, ingest) = if cfg.stream {
            let (tx, rx) = ring::spsc(cfg.ring_capacity.unwrap_or(DEFAULT_RING_CAPACITY));
            let ingest = Arc::new(IngestShared {
                consumer: Mutex::new(rx),
                spill: Mutex::new(Vec::new()),
                spilled: AtomicU64::new(0),
            });
            shared.ingests.lock().push(ingest.clone());
            (Some(tx), Some(ingest))
        } else {
            (None, None)
        };
        let shard = Arc::new(Mutex::new(ShardState {
            log: TraceLog::for_shard(slot.index() as u32),
            hash_meter: HashMeter::default(),
            health: TraceHealth::default(),
            clock: StreamClock::new(),
            batcher: PublishBatcher::new(
                cfg.publish_every.unwrap_or(PublishBatcher::DEFAULT_EVERY),
            ),
            slot,
            ring: producer,
            ingest,
        }));
        shared.shards.lock().push(shard.clone());
        shared.control.lock().spawned_shards += 1;
        OmpDataPerfTool {
            cfg,
            shared,
            shard,
            slot,
            degraded: false,
            open_ops: FnvHashMap::default(),
            open_submits: FnvHashMap::default(),
            open_targets: FnvHashMap::default(),
        }
    }

    /// The tool's configuration.
    pub fn config(&self) -> ToolConfig {
        self.cfg
    }

    /// This instance's shard id.
    pub fn shard(&self) -> u32 {
        self.slot.index() as u32
    }

    /// Hash a payload against this shard's meter (and the shared audit
    /// when enabled — the documented serialization point of audit mode).
    fn hash_payload(&self, shard: &mut ShardState, payload: &[u8]) -> u64 {
        let t = Instant::now();
        let h = self.cfg.hash_algo.hash(payload);
        let dt = t.elapsed().as_nanos() as u64;
        shard.hash_meter.bytes += payload.len() as u64;
        shard.hash_meter.nanos += dt.max(1);
        if self.cfg.collision_audit {
            self.shared.control.lock().audit.record(payload, h);
        }
        h
    }
}

fn data_op_kind(t: DataOpType) -> DataOpKind {
    match t {
        DataOpType::Alloc => DataOpKind::Alloc,
        DataOpType::TransferToDevice | DataOpType::TransferFromDevice => DataOpKind::Transfer,
        DataOpType::Delete => DataOpKind::Delete,
        DataOpType::Associate => DataOpKind::Associate,
        DataOpType::Disassociate => DataOpKind::Disassociate,
    }
}

fn target_kind(c: TargetConstructKind) -> TargetKind {
    match c {
        TargetConstructKind::Target => TargetKind::Region,
        TargetConstructKind::TargetData => TargetKind::DataRegion,
        TargetConstructKind::TargetEnterData => TargetKind::EnterData,
        TargetConstructKind::TargetExitData => TargetKind::ExitData,
        TargetConstructKind::TargetUpdate => TargetKind::Update,
    }
}

fn construct_tag(c: TargetConstructKind) -> u8 {
    match c {
        TargetConstructKind::Target => 0,
        TargetConstructKind::TargetData => 1,
        TargetConstructKind::TargetEnterData => 2,
        TargetConstructKind::TargetExitData => 3,
        TargetConstructKind::TargetUpdate => 4,
    }
}

impl Tool for OmpDataPerfTool {
    fn initialize(&mut self, caps: &RuntimeCapabilities) -> ToolRegistration {
        let mut c = self.shared.control.lock();
        let first = !c.initialized;
        c.initialized = true;
        if first {
            c.info.push(format!(
                "info: OpenMP OMPT interface version {}",
                caps.ompt_version
            ));
            c.info
                .push(format!("info: OpenMP runtime {}", caps.runtime_name));
            if let Some(flag) = caps.requires_recompile_flag {
                c.info.push(format!(
                    "info: this runtime requires programs to be compiled with {flag} for OMPT tools to engage"
                ));
            }
        }

        let emi = ToolRegistration::negotiate(
            &[
                CallbackKind::TargetEmi,
                CallbackKind::TargetDataOpEmi,
                CallbackKind::TargetSubmitEmi,
            ],
            caps,
        );
        if emi.fully_granted() {
            return emi;
        }

        let legacy = ToolRegistration::negotiate(
            &[
                CallbackKind::Target,
                CallbackKind::TargetDataOp,
                CallbackKind::TargetSubmit,
            ],
            caps,
        );
        if legacy.granted(CallbackKind::TargetDataOp) {
            c.degraded = true;
            self.degraded = true;
            if first && !self.cfg.quiet {
                c.warnings.push(format!(
                    "warning: OMPDataPerf requires OMPT interface version 5.1 (or later), \
                     but found version {}. Some features may be degraded.",
                    caps.ompt_version
                ));
            }
            return legacy;
        }

        c.unusable = true;
        if first && !self.cfg.quiet {
            c.warnings.push(format!(
                "warning: the OpenMP runtime ({}) provides no OMPT target callbacks; \
                 OMPDataPerf cannot profile this program.",
                caps.runtime_name
            ));
        }
        ToolRegistration::default()
    }

    fn on_target(&mut self, cb: &TargetCallback) {
        let key = (cb.target_id, construct_tag(cb.construct));
        match cb.endpoint {
            // Degraded mode: begin-only → record an instantaneous marker
            // (pre-EMI runtimes never deliver End).
            Endpoint::Begin if self.degraded => {
                self.shard.lock().log.record_target(
                    target_kind(cb.construct),
                    cb.device,
                    TimeSpan::at(cb.time),
                    cb.codeptr_ra,
                );
            }
            Endpoint::Begin => {
                self.open_targets.insert(key, cb.time);
            }
            Endpoint::End => {
                // Orphaned region End (dropped or duplicated Begin):
                // quarantine rather than invent a zero-length span.
                let Some(start) = self.open_targets.remove(&key) else {
                    self.shard.lock().health.orphaned += 1;
                    return;
                };
                self.shard.lock().log.record_target(
                    target_kind(cb.construct),
                    cb.device,
                    TimeSpan::new(start, cb.time),
                    cb.codeptr_ra,
                );
            }
        }
    }

    fn on_data_op(&mut self, cb: &DataOpCallback<'_>) {
        match cb.endpoint {
            // Degraded (non-EMI) runtimes never send End: record now
            // with zero duration, hashing the payload that a pointer-
            // chasing tool reads at op start.
            Endpoint::Begin if self.degraded => {
                {
                    let mut shard = self.shard.lock();
                    let truncated = cb.payload.is_some_and(|p| p.len() as u64 != cb.bytes);
                    let hash = if truncated {
                        shard.health.truncated += 1;
                        None
                    } else {
                        cb.payload.map(|p| self.hash_payload(&mut shard, p)).or(
                            if data_op_kind(cb.optype) == DataOpKind::Transfer {
                                Some(0)
                            } else {
                                None
                            },
                        )
                    };
                    let event = shard.log.record_data_op(
                        data_op_kind(cb.optype),
                        cb.src_device,
                        cb.dest_device,
                        cb.src_addr,
                        cb.dest_addr,
                        cb.bytes,
                        hash,
                        TimeSpan::at(cb.time),
                        cb.codeptr_ra,
                    );
                    if self.cfg.stream {
                        shard.clock.observe(cb.time);
                        shard.queue_and_note(&self.shared, Some(StreamEvent::Op(event)));
                    }
                }
                self.shared.maybe_drain();
            }
            Endpoint::Begin => {
                if self.cfg.stream {
                    // The open can only hold the shard's published
                    // bound at or below where it already was; the
                    // batcher publishes immediately iff deferral would
                    // overstate it (retreat risk).
                    let mut shard = self.shard.lock();
                    shard.clock.open(cb.time);
                    shard.queue_and_note(&self.shared, None);
                }
                self.open_ops.insert(cb.host_op_id, cb.time);
            }
            Endpoint::End => {
                // Close the clock only for a *matched* Begin: an
                // unmatched End's fallback time could coincide with a
                // different op's open entry and corrupt the watermark.
                let Some(start) = self.open_ops.remove(&cb.host_op_id) else {
                    // Orphaned End — its Begin was dropped, or this End
                    // is a duplicate. No trustworthy span exists, so
                    // quarantine the event instead of guessing one.
                    {
                        let mut shard = self.shard.lock();
                        shard.health.orphaned += 1;
                        if self.cfg.stream {
                            shard.clock.observe(cb.time);
                            shard.queue_and_note(&self.shared, None);
                        }
                    }
                    self.shared.maybe_drain();
                    return;
                };
                {
                    let mut shard = self.shard.lock();
                    // A payload that disagrees with the claimed byte
                    // count cannot be hashed truthfully: keep the op
                    // (its timing is real) but quarantine the hash.
                    let truncated = cb.payload.is_some_and(|p| p.len() as u64 != cb.bytes);
                    let hash = if truncated {
                        shard.health.truncated += 1;
                        None
                    } else {
                        cb.payload.map(|p| self.hash_payload(&mut shard, p))
                    };
                    let event = shard.log.record_data_op(
                        data_op_kind(cb.optype),
                        cb.src_device,
                        cb.dest_device,
                        cb.src_addr,
                        cb.dest_addr,
                        cb.bytes,
                        hash,
                        TimeSpan::new(start, cb.time),
                        cb.codeptr_ra,
                    );
                    if self.cfg.stream {
                        shard.clock.close(start, cb.time);
                        shard.queue_and_note(&self.shared, Some(StreamEvent::Op(event)));
                    }
                }
                self.shared.maybe_drain();
            }
        }
    }

    fn on_submit(&mut self, cb: &SubmitCallback) {
        match cb.endpoint {
            Endpoint::Begin if self.degraded => {
                {
                    let mut shard = self.shard.lock();
                    let event = shard.log.record_target(
                        TargetKind::Kernel,
                        cb.device,
                        TimeSpan::at(cb.time),
                        cb.codeptr_ra,
                    );
                    if self.cfg.stream {
                        shard.clock.observe(cb.time);
                        shard.queue_and_note(&self.shared, Some(StreamEvent::Kernel(event)));
                    }
                }
                self.shared.maybe_drain();
            }
            Endpoint::Begin => {
                if self.cfg.stream {
                    let mut shard = self.shard.lock();
                    shard.clock.open(cb.time);
                    shard.queue_and_note(&self.shared, None);
                }
                self.open_submits.insert(cb.target_id, cb.time);
            }
            Endpoint::End => {
                // Matched-Begin-only close and orphan quarantine: see
                // on_data_op.
                let Some(start) = self.open_submits.remove(&cb.target_id) else {
                    {
                        let mut shard = self.shard.lock();
                        shard.health.orphaned += 1;
                        if self.cfg.stream {
                            shard.clock.observe(cb.time);
                            shard.queue_and_note(&self.shared, None);
                        }
                    }
                    self.shared.maybe_drain();
                    return;
                };
                {
                    let mut shard = self.shard.lock();
                    let event = shard.log.record_target(
                        TargetKind::Kernel,
                        cb.device,
                        TimeSpan::new(start, cb.time),
                        cb.codeptr_ra,
                    );
                    if self.cfg.stream {
                        shard.clock.close(start, cb.time);
                        shard.queue_and_note(&self.shared, Some(StreamEvent::Kernel(event)));
                    }
                }
                self.shared.maybe_drain();
            }
        }
    }

    fn finalize(&mut self, total_time_ns: u64) {
        {
            let mut shard = self.shard.lock();
            shard.log.set_total_time(SimDuration(total_time_ns));
            // The batcher must read as clean after retirement: a later
            // flushing drain re-publishes dirty shards, and doing so
            // here would overwrite the retirement below with the stale
            // clock and re-pin the merge.
            let s = &mut *shard;
            s.batcher.mark_published(&s.clock);
        }
        // A finished thread must not pin the merged watermark.
        self.shared.watermark.retire(self.slot);
        let all_done = {
            let mut c = self.shared.control.lock();
            c.finalized_shards += 1;
            c.finalized = c.finalized_shards >= c.spawned_shards;
            c.finalized
        };
        if all_done {
            if self.cfg.stream {
                // Final full (blocking) sweep: nothing may be left in a
                // shard queue once the program is over.
                self.shared.drain_all();
            }
            if self.cfg.verbose {
                let rate = ToolHandle {
                    shared: self.shared.clone(),
                }
                .hash_rate_gb_per_s();
                self.shared
                    .control
                    .lock()
                    .info
                    .push(format!("info: effective hash rate {rate:.1} GB/s"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_model::DeviceId;
    use odp_ompt::CompilerProfile;

    fn data_op<'a>(
        endpoint: Endpoint,
        host_op_id: u64,
        optype: DataOpType,
        time: u64,
        payload: Option<&'a [u8]>,
    ) -> DataOpCallback<'a> {
        DataOpCallback {
            endpoint,
            target_id: 1,
            host_op_id,
            optype,
            src_device: DeviceId::HOST,
            src_addr: 0x1000,
            dest_device: DeviceId::target(0),
            dest_addr: 0xd000,
            bytes: payload.map(|p| p.len() as u64).unwrap_or(64),
            codeptr_ra: odp_model::CodePtr(0x42),
            time: SimTime(time),
            payload,
        }
    }

    #[test]
    fn emi_begin_end_produces_one_record_with_duration() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let payload = vec![7u8; 256];
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            5,
            DataOpType::TransferToDevice,
            100,
            None,
        ));
        tool.on_data_op(&data_op(
            Endpoint::End,
            5,
            DataOpType::TransferToDevice,
            150,
            Some(&payload),
        ));
        tool.finalize(1_000);
        let trace = handle.take_trace();
        let events = trace.data_op_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].span.duration().as_nanos(), 50);
        assert!(events[0].hash.is_some());
        assert_eq!(
            events[0].hash.unwrap().0,
            HashAlgoId::default().hash(&payload)
        );
    }

    #[test]
    fn hash_meter_accumulates() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let payload = vec![1u8; 1024];
        for i in 0..10 {
            tool.on_data_op(&data_op(
                Endpoint::Begin,
                i,
                DataOpType::TransferToDevice,
                0,
                None,
            ));
            tool.on_data_op(&data_op(
                Endpoint::End,
                i,
                DataOpType::TransferToDevice,
                10,
                Some(&payload),
            ));
        }
        let m = handle.hash_meter();
        assert_eq!(m.bytes, 10 * 1024);
        assert!(m.nanos > 0);
        assert!(handle.hash_rate_gb_per_s() > 0.0);
    }

    #[test]
    fn degraded_runtime_sets_warning_and_zero_durations() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        let caps = CompilerProfile::LlvmClang.capabilities_pre_emi();
        let reg = tool.initialize(&caps);
        assert!(reg.granted(CallbackKind::TargetDataOp));
        assert!(handle.degraded());
        assert!(handle
            .console_lines()
            .iter()
            .any(|l| l.contains("Some features may be degraded")));
        let payload = vec![2u8; 64];
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            1,
            DataOpType::TransferToDevice,
            100,
            Some(&payload),
        ));
        tool.finalize(500);
        let trace = handle.take_trace();
        let events = trace.data_op_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].span.duration().as_nanos(), 0, "begin-only");
        assert!(events[0].hash.is_some());
    }

    #[test]
    fn gcc_runtime_is_unusable() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        let reg = tool.initialize(&CompilerProfile::GnuGcc.capabilities());
        assert!(reg.requested.is_empty());
        assert!(handle.unusable());
        assert!(handle
            .console_lines()
            .iter()
            .any(|l| l.contains("cannot profile")));
    }

    #[test]
    fn quiet_mode_suppresses_warnings() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig {
            quiet: true,
            ..Default::default()
        });
        tool.initialize(&CompilerProfile::GnuGcc.capabilities());
        assert!(handle.unusable());
        assert!(!handle
            .console_lines()
            .iter()
            .any(|l| l.starts_with("warning")));
    }

    #[test]
    fn collision_audit_sees_payloads() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig {
            collision_audit: true,
            ..Default::default()
        });
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let p1 = vec![1u8; 128];
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            1,
            DataOpType::TransferToDevice,
            0,
            None,
        ));
        tool.on_data_op(&data_op(
            Endpoint::End,
            1,
            DataOpType::TransferToDevice,
            10,
            Some(&p1),
        ));
        assert_eq!(handle.collision_count(), 0);
        assert_eq!(handle.audit_checks(), 1);
    }

    #[test]
    fn streaming_tool_matches_postmortem_with_out_of_order_completion() {
        use crate::detect::{EventView, Findings};
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig {
            stream: true,
            ..Default::default()
        });
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        assert!(handle.streaming());

        let payload = vec![9u8; 128];
        // Op 1 opens at t=0 and stays open while op 2 (same content →
        // duplicate) and a kernel complete inside it: records land in
        // completion order 2, kernel, 1 — chronological order 1, 2, kernel.
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            1,
            DataOpType::TransferToDevice,
            0,
            None,
        ));
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            2,
            DataOpType::TransferToDevice,
            50,
            None,
        ));
        tool.on_data_op(&data_op(
            Endpoint::End,
            2,
            DataOpType::TransferToDevice,
            60,
            Some(&payload),
        ));
        let submit = |endpoint, time| SubmitCallback {
            endpoint,
            target_id: 7,
            device: DeviceId::target(0),
            requested_num_teams: 1,
            codeptr_ra: odp_model::CodePtr(0x77),
            time: SimTime(time),
        };
        tool.on_submit(&submit(Endpoint::Begin, 70));
        tool.on_submit(&submit(Endpoint::End, 80));
        // The streaming engine must not have released anything past the
        // still-open op 1 (its begin pins the watermark at 0).
        let stats = handle.stream_buffer_stats().unwrap();
        assert!(stats.buffered_now >= 2, "events wait on the open op");
        tool.on_data_op(&data_op(
            Endpoint::End,
            1,
            DataOpType::TransferToDevice,
            200,
            Some(&payload),
        ));
        tool.finalize(1_000);

        let trace = handle.take_trace();
        let mut engine = handle.take_stream_engine().expect("streaming engine");
        let live = engine.take_findings();
        assert!(!live.is_empty(), "duplicate must be found live");
        let view = EventView::from_log(&trace);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect_fused(&view);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap()
        );
        assert_eq!(streamed.counts().dd, 1);
    }

    #[test]
    fn unmatched_end_does_not_corrupt_the_watermark() {
        use crate::detect::{EventView, Findings};
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig {
            stream: true,
            ..Default::default()
        });
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let payload = vec![4u8; 64];
        // Op 1 opens at t=100 and stays open. An *unmatched* End (op 2,
        // no Begin) arrives at the same t=100: its fallback begin time
        // coincides with op 1's open entry and must not close it.
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            1,
            DataOpType::TransferToDevice,
            100,
            None,
        ));
        tool.on_data_op(&data_op(
            Endpoint::End,
            2,
            DataOpType::TransferToDevice,
            100,
            Some(&payload),
        ));
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            3,
            DataOpType::TransferToDevice,
            150,
            None,
        ));
        tool.on_data_op(&data_op(
            Endpoint::End,
            3,
            DataOpType::TransferToDevice,
            160,
            Some(&payload),
        ));
        // Op 1 is still open: nothing may have been released past t=99.
        // The orphaned End (op 2) was quarantined, not buffered.
        let stats = handle.stream_buffer_stats().unwrap();
        assert_eq!(stats.buffered_now, 1, "op 3 must wait on op 1");
        assert_eq!(handle.trace_health().orphaned, 1, "op 2 quarantined");
        tool.on_data_op(&data_op(
            Endpoint::End,
            1,
            DataOpType::TransferToDevice,
            200,
            Some(&payload),
        ));
        tool.finalize(500);
        let trace = handle.take_trace();
        let mut engine = handle.take_stream_engine().unwrap();
        let view = EventView::from_log(&trace);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect_fused(&view);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap()
        );
    }

    #[test]
    fn truncated_payload_quarantines_the_hash_but_keeps_the_event() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        // The callback claims 64 bytes but delivers 32: the hash is
        // untrustworthy, the timing is real.
        let short = vec![1u8; 32];
        let mut cb = data_op(Endpoint::End, 1, DataOpType::TransferToDevice, 50, None);
        cb.bytes = 64;
        cb.payload = Some(&short);
        tool.on_data_op(&data_op(
            Endpoint::Begin,
            1,
            DataOpType::TransferToDevice,
            10,
            None,
        ));
        tool.on_data_op(&cb);
        tool.finalize(100);
        assert_eq!(handle.trace_health().truncated, 1);
        let trace = handle.take_trace();
        let events = trace.data_op_events();
        assert_eq!(events.len(), 1, "the op itself is kept");
        assert!(events[0].hash.is_none(), "the hash is quarantined");
        assert_eq!(events[0].span.duration().as_nanos(), 40);
        assert_eq!(handle.hash_meter().bytes, 0, "nothing was hashed");
    }

    #[test]
    fn stalled_watermark_force_releases_and_degrades_findings() {
        use crate::detect::EventView;
        // Shard 1 opens an op at t=0 and then wedges (never Ends, never
        // finalizes during the run). With a zero stall timeout the
        // second drain must force-release shard 0's buffered events
        // instead of waiting forever.
        let (mut t0, handle) = OmpDataPerfTool::new(ToolConfig {
            stream: true,
            stall_timeout: Some(std::time::Duration::ZERO),
            quiet: false,
            ..Default::default()
        });
        let mut t1 = handle.fork_tool();
        let caps = CompilerProfile::LlvmClang.capabilities();
        t0.initialize(&caps);
        t1.initialize(&caps);
        t1.on_data_op(&data_op(
            Endpoint::Begin,
            99,
            DataOpType::TransferToDevice,
            0,
            None,
        ));
        let payload = vec![8u8; 64];
        // Three identical transfers on shard 0 → two duplicate findings
        // once released.
        for (id, t) in [(1u64, 10u64), (2, 30), (3, 50)] {
            t0.on_data_op(&data_op(
                Endpoint::Begin,
                id,
                DataOpType::TransferToDevice,
                t,
                None,
            ));
            t0.on_data_op(&data_op(
                Endpoint::End,
                id,
                DataOpType::TransferToDevice,
                t + 5,
                Some(&payload),
            ));
        }
        // First drain arms the detector (watermark progressed to 0);
        // the second sees no progress with events buffered → forced
        // release. The drain thread never wedges on the stalled shard.
        let first = handle.take_stream_findings();
        let second = handle.take_stream_findings();
        let findings: Vec<_> = first.into_iter().chain(second).collect();
        assert!(
            !findings.is_empty(),
            "forced release must surface the duplicates"
        );
        assert!(
            findings.iter().all(|f| f.confidence().is_degraded()),
            "everything decided after a forced release is degraded: {findings:?}"
        );
        let health = handle.trace_health();
        assert!(health.forced_releases > 0, "{health:?}");
        assert!(handle
            .console_lines()
            .iter()
            .any(|l| l.contains("watermark stalled")));

        // Degraded findings must never seed remediation rules.
        let mut policy = crate::remedy::RemediationPolicy::new();
        for f in &findings {
            policy.observe(f);
        }
        assert_eq!(policy.rule_count(), 0, "degraded evidence seeds nothing");

        // Finalize still terminates and reconciles against the trace.
        t1.on_data_op(&data_op(
            Endpoint::End,
            99,
            DataOpType::TransferToDevice,
            500,
            Some(&payload),
        ));
        t0.finalize(1_000);
        t1.finalize(1_000);
        let trace = handle.take_trace();
        let mut engine = handle.take_stream_engine().expect("engine");
        assert!(engine.is_degraded());
        let view = EventView::from_log(&trace);
        let streamed = engine.finalize(&view);
        assert!(streamed
            .duplicates
            .iter()
            .all(|g| g.confidence.is_degraded()));
        // Absorbing the degraded post-mortem findings also seeds nothing.
        let mut policy = crate::remedy::RemediationPolicy::new();
        policy.absorb(&streamed);
        assert_eq!(policy.rule_count(), 0);
    }

    #[test]
    fn findings_tee_delivers_the_full_stream_to_every_tap() {
        // The tee is what lets --remediate compose with
        // --stream-interval: a poller tap and a remediation tap (and
        // the legacy default stream) each see every finding instead of
        // stealing from one drain-once stream.
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig {
            stream: true,
            ..Default::default()
        });
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let tap_a = handle.tap_stream_findings();
        let tap_b = handle.tap_stream_findings();
        // Activate the default stream too (it registers lazily, on
        // first use, so undrained runs never grow it).
        assert!(handle.take_stream_findings().is_empty());

        let payload = vec![7u8; 64];
        // Three identical transfers → two duplicate findings.
        for (id, t) in [(1u64, 0u64), (2, 20), (3, 40)] {
            tool.on_data_op(&data_op(
                Endpoint::Begin,
                id,
                DataOpType::TransferToDevice,
                t,
                None,
            ));
            tool.on_data_op(&data_op(
                Endpoint::End,
                id,
                DataOpType::TransferToDevice,
                t + 10,
                Some(&payload),
            ));
        }

        let a = tap_a.take();
        assert_eq!(a.len(), 2, "tap A sees both duplicates: {a:?}");
        let b = tap_b.try_take();
        assert_eq!(b.len(), 2, "tap B sees the same stream: {b:?}");
        let legacy = handle.take_stream_findings();
        assert_eq!(legacy.len(), 2, "the default stream is not starved");
        // Second drains are empty: each consumer has its own cursor.
        assert!(tap_a.take().is_empty());
        assert!(tap_b.take().is_empty());
        assert!(handle.take_stream_findings().is_empty());
    }

    #[test]
    fn full_ring_spills_without_losing_or_reordering_events() {
        use crate::detect::{EventView, Findings};
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig {
            stream: true,
            ring_capacity: Some(2),
            ..Default::default()
        });
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let payload = vec![6u8; 64];
        // Hold the engine lock: every callback-side maybe_drain
        // try_lock fails, so nothing consumes the capacity-2 ring and
        // the 3rd..10th events MUST take the spill path.
        let engine_guard = handle.shared.engine.lock();
        for id in 0..10u64 {
            tool.on_data_op(&data_op(
                Endpoint::Begin,
                id,
                DataOpType::TransferToDevice,
                id * 10,
                None,
            ));
            tool.on_data_op(&data_op(
                Endpoint::End,
                id,
                DataOpType::TransferToDevice,
                id * 10 + 5,
                Some(&payload),
            ));
        }
        assert_eq!(handle.spilled_events(), 8, "2 ring slots + 8 spilled");
        drop(engine_guard);
        tool.finalize(1_000);
        let trace = handle.take_trace();
        assert_eq!(trace.data_op_count(), 10, "no event was lost");
        let mut engine = handle.take_stream_engine().expect("engine");
        let view = EventView::from_log(&trace);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect_fused(&view);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap(),
            "spilled events must re-merge byte-identically"
        );
        assert_eq!(streamed.counts().dd, 9, "all ten transfers were seen");
    }

    #[test]
    fn batched_publication_flushes_for_blocking_observers() {
        // publish_every too large to ever fire on its own: every
        // finding must still be visible to a blocking observer, because
        // flushing drains re-publish dirty shard clocks themselves.
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig {
            stream: true,
            publish_every: Some(1_000_000),
            ..Default::default()
        });
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let payload = vec![3u8; 64];
        for (id, t) in [(1u64, 0u64), (2, 20), (3, 40)] {
            tool.on_data_op(&data_op(
                Endpoint::Begin,
                id,
                DataOpType::TransferToDevice,
                t,
                None,
            ));
            tool.on_data_op(&data_op(
                Endpoint::End,
                id,
                DataOpType::TransferToDevice,
                t + 10,
                Some(&payload),
            ));
        }
        let live = handle.take_stream_findings();
        assert_eq!(
            live.len(),
            2,
            "flush makes deferred edges visible: {live:?}"
        );
    }

    #[test]
    fn streaming_off_by_default() {
        let (_tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        assert!(!handle.streaming());
        assert!(handle.stream_counts().is_none());
        assert!(handle.stream_buffer_stats().is_none());
        assert!(handle.take_stream_findings().is_empty());
        assert!(handle.take_stream_engine().is_none());
    }

    #[test]
    fn submit_pairs_become_kernel_records() {
        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let cb = |endpoint, time| SubmitCallback {
            endpoint,
            target_id: 9,
            device: DeviceId::target(0),
            requested_num_teams: 4,
            codeptr_ra: odp_model::CodePtr(0x99),
            time: SimTime(time),
        };
        tool.on_submit(&cb(Endpoint::Begin, 100));
        tool.on_submit(&cb(Endpoint::End, 400));
        let trace = handle.take_trace();
        let kernels = trace.kernel_events();
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].span.duration().as_nanos(), 300);
    }

    #[test]
    fn forked_shards_merge_into_one_deterministic_trace() {
        let (mut t0, handle) = OmpDataPerfTool::new(ToolConfig::default());
        let mut t1 = handle.fork_tool();
        let mut t2 = handle.fork_tool();
        assert_eq!(handle.shard_count(), 3);
        assert_eq!(t0.shard(), 0);
        assert_eq!(t1.shard(), 1);
        assert_eq!(t2.shard(), 2);
        let caps = CompilerProfile::LlvmClang.capabilities();
        t0.initialize(&caps);
        t1.initialize(&caps);
        t2.initialize(&caps);
        // Only one set of info lines despite three initializations.
        assert_eq!(
            handle
                .console_lines()
                .iter()
                .filter(|l| l.contains("OMPT interface version"))
                .count(),
            1
        );
        let payload = vec![5u8; 64];
        // All three shards record a transfer at the same virtual time.
        for (i, t) in [&mut t0, &mut t1, &mut t2].into_iter().enumerate() {
            let id = i as u64 + 1;
            t.on_data_op(&data_op(
                Endpoint::Begin,
                id,
                DataOpType::TransferToDevice,
                10,
                None,
            ));
            t.on_data_op(&data_op(
                Endpoint::End,
                id,
                DataOpType::TransferToDevice,
                20,
                Some(&payload),
            ));
        }
        t0.finalize(100);
        t1.finalize(100);
        t2.finalize(100);
        let trace = handle.take_trace();
        assert_eq!(trace.data_op_count(), 3);
        let events = trace.data_op_events();
        // Same start everywhere: ties break by shard id, deterministically.
        let ids: Vec<u64> = events.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![0, 1 << 32, 2 << 32]);
        assert_eq!(handle.hash_meter().bytes, 3 * 64);
    }

    #[test]
    fn forked_streaming_shards_feed_one_engine() {
        use crate::detect::{EventView, Findings};
        let (mut t0, handle) = OmpDataPerfTool::new(ToolConfig {
            stream: true,
            ..Default::default()
        });
        let mut t1 = handle.fork_tool();
        let caps = CompilerProfile::LlvmClang.capabilities();
        t0.initialize(&caps);
        t1.initialize(&caps);
        let payload = vec![3u8; 32];
        // Shard 0 sends content; shard 1 sends the same content to the
        // same device → a cross-shard duplicate the engine must see.
        for (t, id) in [(&mut t0, 1u64), (&mut t1, 2)] {
            t.on_data_op(&data_op(
                Endpoint::Begin,
                id,
                DataOpType::TransferToDevice,
                id * 10,
                None,
            ));
            t.on_data_op(&data_op(
                Endpoint::End,
                id,
                DataOpType::TransferToDevice,
                id * 10 + 5,
                Some(&payload),
            ));
        }
        t0.finalize(100);
        t1.finalize(100);
        let trace = handle.take_trace();
        let mut engine = handle.take_stream_engine().unwrap();
        let view = EventView::from_log(&trace);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect_fused(&view);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap()
        );
        assert_eq!(streamed.counts().dd, 1, "cross-shard duplicate");
    }
}
