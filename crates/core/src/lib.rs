//! # ompdataperf — the paper's primary contribution
//!
//! This crate reproduces OMPDataPerf: "a compiler- and hardware-agnostic
//! dynamic analysis tool designed to identify inefficient data mapping
//! patterns, profile them, and provide actionable feedback with
//! estimations of performance uplift if the identified issues are
//! eliminated" (§1).
//!
//! The pipeline:
//!
//! 1. [`tool::OmpDataPerfTool`] attaches to an OpenMP runtime through the
//!    OMPT EMI callbacks (here: `odp-sim`'s simulated runtime), hashes
//!    every transfer payload with a configurable [`odp_hash::HashAlgoId`],
//!    and appends compact records to an [`odp_trace::TraceLog`].
//! 2. After the program finishes, [`analysis::analyze`] runs the five
//!    detection algorithms of §5 over the chronological event log:
//!    duplicate transfers, round-trip transfers, repeated device memory
//!    allocations, unused device memory allocations, and unused data
//!    transfers.
//! 3. [`predict`] converts findings into an optimization-potential
//!    estimate (predicted time savings and speedup, §7.6), deduplicating
//!    overlapping findings so no event's cost is counted twice.
//! 4. [`attrib::DebugInfo`] resolves each finding's code pointer to
//!    `file:line (function)` the way the native tool resolves DWARF
//!    through libdw.
//! 5. [`report::Report`] renders the §A.6-style console tables (and
//!    JSON).
//! 6. Optionally, [`remedy::RemediationPolicy`] closes the loop: live
//!    [`detect::StreamFinding`]s become mapping rewrites the simulated
//!    runtime applies *mid-run* (persist, downgrade, elide), with the
//!    recovered transfer bytes/time accounted per finding kind in a
//!    [`remedy::RemediationReport`].
//!
//! End-to-end, against a hand-built trace (no simulator needed):
//!
//! ```
//! use odp_model::{CodePtr, DataOpKind, DeviceId, SimTime, TargetKind, TimeSpan};
//! use odp_trace::TraceLog;
//!
//! let mut log = TraceLog::new();
//! let span = |a: u64, b: u64| TimeSpan::new(SimTime(a), SimTime(b));
//! // The same bytes (hash 0xAB) reach device 0 twice → one duplicate.
//! for t in [0u64, 1_000] {
//!     log.record_data_op(
//!         DataOpKind::Transfer,
//!         DeviceId::HOST,
//!         DeviceId::target(0),
//!         0x1000, 0xd000, 4096, Some(0xAB),
//!         span(t, t + 100),
//!         CodePtr(0x400100),
//!     );
//!     log.record_target(TargetKind::Kernel, DeviceId::target(0),
//!                       span(t + 100, t + 500), CodePtr(0x400200));
//! }
//!
//! let report = ompdataperf::analyze(&log, None);
//! assert_eq!(report.counts.dd, 1);
//! assert!(report.prediction.predicted_speedup > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod attrib;
pub mod collision;
pub mod detect;
pub mod fleet;
pub mod predict;
pub mod remedy;
pub mod report;
pub mod tool;

pub use analysis::analyze;
pub use detect::{Confidence, Findings, IssueCounts};
pub use predict::Prediction;
pub use remedy::{LiveRemediator, RemediationPolicy, RemediationReport};
pub use report::Report;
pub use tool::{OmpDataPerfTool, ToolConfig, ToolHandle};
