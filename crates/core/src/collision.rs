//! Hash-collision audit (§B.1).
//!
//! "We added an optional feature to OMPDataPerf that stores copies of all
//! transferred data and checks for hash collisions. While this feature
//! incurs moderate runtime overhead and extremely high memory overhead,
//! it allows comprehensive collision detection when enabled."
//!
//! Across all the paper's benchmarks and problem sizes: 0 collisions for
//! all 19 evaluated functions — the property our integration tests
//! re-verify.

use odp_hash::fnv::FnvHashMap;
use serde::Serialize;

/// A detected collision: two different payloads with one digest.
#[derive(Clone, Debug, Serialize)]
pub struct Collision {
    /// The shared digest.
    pub hash: u64,
    /// Length of the first payload.
    pub first_len: usize,
    /// Length of the colliding payload.
    pub second_len: usize,
}

/// The audit store. Disabled by default (extreme memory overhead).
#[derive(Debug, Default)]
pub struct CollisionAudit {
    enabled: bool,
    /// digest → distinct payloads observed with that digest.
    by_hash: FnvHashMap<u64, Vec<Vec<u8>>>,
    collisions: Vec<Collision>,
    payload_bytes: usize,
    checks: u64,
}

impl CollisionAudit {
    /// Create an audit store; `enabled = false` makes `record` free.
    pub fn new(enabled: bool) -> Self {
        CollisionAudit {
            enabled,
            ..Default::default()
        }
    }

    /// Is auditing on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record a transfer's payload and digest; detects and remembers any
    /// collision with previously seen payloads.
    pub fn record(&mut self, payload: &[u8], hash: u64) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        let entries = self.by_hash.entry(hash).or_default();
        for existing in entries.iter() {
            if existing.as_slice() == payload {
                return; // same content — by definition not a collision
            }
        }
        if !entries.is_empty() {
            self.collisions.push(Collision {
                hash,
                first_len: entries[0].len(),
                second_len: payload.len(),
            });
        }
        self.payload_bytes += payload.len();
        entries.push(payload.to_vec());
    }

    /// Collisions observed so far.
    pub fn collisions(&self) -> &[Collision] {
        &self.collisions
    }

    /// Number of payloads checked.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Bytes of payload copies retained (the "extremely high memory
    /// overhead" the paper warns about).
    pub fn retained_bytes(&self) -> usize {
        self.payload_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_audit_is_free() {
        let mut a = CollisionAudit::new(false);
        a.record(b"abc", 1);
        a.record(b"xyz", 1);
        assert!(a.collisions().is_empty());
        assert_eq!(a.checks(), 0);
        assert_eq!(a.retained_bytes(), 0);
    }

    #[test]
    fn identical_payloads_are_not_collisions() {
        let mut a = CollisionAudit::new(true);
        a.record(b"same", 42);
        a.record(b"same", 42);
        assert!(a.collisions().is_empty());
        assert_eq!(a.retained_bytes(), 4, "one retained copy");
    }

    #[test]
    fn different_payloads_same_hash_is_a_collision() {
        let mut a = CollisionAudit::new(true);
        a.record(b"aaaa", 42);
        a.record(b"bbbb", 42);
        assert_eq!(a.collisions().len(), 1);
        assert_eq!(a.collisions()[0].hash, 42);
    }

    #[test]
    fn different_hashes_never_collide() {
        let mut a = CollisionAudit::new(true);
        a.record(b"aaaa", 1);
        a.record(b"bbbb", 2);
        assert!(a.collisions().is_empty());
        assert_eq!(a.checks(), 2);
    }
}
