//! End-to-end analysis: trace → findings → prediction → report.

use crate::attrib::DebugInfo;
use crate::detect::{EventView, Findings};
use crate::predict::predict;
use crate::report::{build_sections, Report};
use odp_model::{DataOpEvent, TargetEvent};
use odp_trace::{ColumnarView, TraceLog};

/// Infer the number of target devices from the event stream (the tool
/// decodes traces offline and cannot ask the runtime).
///
/// Implausibly large device indices — a corrupted callback naming
/// device `0x4000_0000` — are ignored here (capped by
/// [`crate::detect::MAX_PLAUSIBLE_DEVICES`]) rather than trusted, so
/// the per-device tables sized from this count stay bounded and the
/// corrupt events land in [`crate::detect::OutOfRangeEvents`].
pub fn infer_num_devices(data_ops: &[DataOpEvent], kernels: &[TargetEvent]) -> u32 {
    let cap = crate::detect::MAX_PLAUSIBLE_DEVICES as i64;
    let mut max_ix: i64 = -1;
    for e in data_ops {
        for d in [e.src_device, e.dest_device] {
            if let Some(ix) = d.target_index() {
                if (ix as i64) < cap {
                    max_ix = max_ix.max(ix as i64);
                }
            }
        }
    }
    for k in kernels {
        if let Some(ix) = k.device.target_index() {
            if (ix as i64) < cap {
                max_ix = max_ix.max(ix as i64);
            }
        }
    }
    (max_ix + 1).max(1) as u32
}

/// [`infer_num_devices`] over the columnar hydration: same cap, same
/// result, but streaming over the dense device columns instead of row
/// slices (the `EventView::from_log` fast path).
pub fn infer_num_devices_columnar(cols: &ColumnarView) -> u32 {
    let cap = crate::detect::MAX_PLAUSIBLE_DEVICES as i64;
    let mut max_ix: i64 = -1;
    for d in cols.ops.src_devices.iter().chain(&cols.ops.dest_devices) {
        if let Some(ix) = d.target_index() {
            if (ix as i64) < cap {
                max_ix = max_ix.max(ix as i64);
            }
        }
    }
    for d in &cols.kernels.devices {
        if let Some(ix) = d.target_index() {
            if (ix as i64) < cap {
                max_ix = max_ix.max(ix as i64);
            }
        }
    }
    (max_ix + 1).max(1) as u32
}

/// Run the full §5 analysis over a collected trace.
///
/// `dbg` enables source attribution (the `-g` path); without it, report
/// rows carry raw code pointers, exactly like the native tool on a binary
/// without debug info.
pub fn analyze(log: &TraceLog, dbg: Option<&DebugInfo>) -> Report {
    analyze_named(log, dbg, "unnamed program", Vec::new())
}

/// [`analyze`] with a program name and tool console lines for the report
/// header.
pub fn analyze_named(
    log: &TraceLog,
    dbg: Option<&DebugInfo>,
    program: &str,
    console: Vec<String>,
) -> Report {
    // Borrow the log's memoized hydration (sorted once), build the
    // shared view, and run all five detectors in one fused sweep.
    // Events are only materialized where they land in findings.
    let view = EventView::from_log(log);
    analyze_view(log, &view, dbg, program, console)
}

/// Run the fused analysis over a caller-built view — the entry point
/// for explicit device counts. Events the view excluded from the
/// per-device algorithms (device `>= num_devices`) surface as a console
/// warning instead of silently skewing Algorithms 4/5.
pub fn analyze_view(
    log: &TraceLog,
    view: &EventView<'_>,
    dbg: Option<&DebugInfo>,
    program: &str,
    mut console: Vec<String>,
) -> Report {
    if let Some(warning) = view.out_of_range().warning(view.num_devices) {
        console.push(warning);
    }
    let findings = Findings::detect_fused(view);
    analyze_with_findings(log, dbg, program, console, findings)
}

/// Build a report from findings that were already produced — the
/// streaming path: the tool's online engine finalizes its own findings
/// (byte-identical to the fused sweep), so detection must not run a
/// second time.
pub fn analyze_with_findings(
    log: &TraceLog,
    dbg: Option<&DebugInfo>,
    program: &str,
    console: Vec<String>,
    findings: Findings,
) -> Report {
    let counts = findings.counts();
    let prediction = predict(&findings, log.total_time());
    let sections = build_sections(&findings, dbg, log.total_time());

    Report {
        program: program.to_string(),
        counts,
        findings,
        prediction,
        stats: log.stats(),
        space: log.space_stats(),
        console,
        sections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_model::{CodePtr, DataOpKind, DeviceId, SimTime, TargetKind, TimeSpan};

    fn sample_trace() -> TraceLog {
        let mut log = TraceLog::new();
        let span = |a: u64, b: u64| TimeSpan::new(SimTime(a), SimTime(b));
        // Duplicate H2D pair around two kernels.
        for i in 0..2u64 {
            let t = i * 1000;
            log.record_data_op(
                DataOpKind::Alloc,
                DeviceId::HOST,
                DeviceId::target(0),
                0x1000,
                0xd000,
                4096,
                None,
                span(t, t + 50),
                CodePtr(0x400100),
            );
            log.record_data_op(
                DataOpKind::Transfer,
                DeviceId::HOST,
                DeviceId::target(0),
                0x1000,
                0xd000,
                4096,
                Some(0xAB),
                span(t + 50, t + 150),
                CodePtr(0x400100),
            );
            log.record_target(
                TargetKind::Kernel,
                DeviceId::target(0),
                span(t + 150, t + 500),
                CodePtr(0x400200),
            );
            log.record_data_op(
                DataOpKind::Delete,
                DeviceId::HOST,
                DeviceId::target(0),
                0x1000,
                0xd000,
                4096,
                None,
                span(t + 500, t + 520),
                CodePtr(0x400100),
            );
        }
        log
    }

    #[test]
    fn full_pipeline_detects_and_reports() {
        let log = sample_trace();
        let report = analyze(&log, None);
        assert_eq!(report.counts.dd, 1);
        assert_eq!(report.counts.ra, 1);
        assert!(report.prediction.time_saved.as_nanos() > 0);
        assert!(report.prediction.predicted_speedup > 1.0);
        let text = report.render();
        assert!(text.contains("Duplicate Target Data Transfer"));
        assert!(text.contains("predicted speedup"));
    }

    #[test]
    fn attribution_appears_in_rows() {
        let log = sample_trace();
        let mut dbg = DebugInfo::new();
        dbg.register(CodePtr(0x400100), "listing1.c", 2, "main");
        let report = analyze(&log, Some(&dbg));
        let dd = &report.sections[0];
        assert!(!dd.rows.is_empty());
        assert!(dd.rows[0].source.contains("listing1.c:2"));
        // Without debug info the same row is a raw pointer.
        let report2 = analyze(&log, None);
        assert!(report2.sections[0].rows[0].source.starts_with("0x"));
    }

    #[test]
    fn device_inference() {
        let log = sample_trace();
        let ops = log.data_op_events();
        let ks = log.kernel_events();
        assert_eq!(infer_num_devices(&ops, &ks), 1);
        assert_eq!(
            infer_num_devices(&[], &[]),
            1,
            "empty trace still has a device"
        );
    }

    #[test]
    fn undersized_device_count_warns_instead_of_silently_skewing() {
        let mut log = TraceLog::new();
        let span = |a: u64, b: u64| TimeSpan::new(SimTime(a), SimTime(b));
        // Allocation + kernel on device 3, analyzed as a 1-device trace.
        log.record_data_op(
            DataOpKind::Alloc,
            DeviceId::HOST,
            DeviceId::target(3),
            0x1000,
            0xd000,
            64,
            None,
            span(0, 10),
            CodePtr(0x1),
        );
        log.record_target(
            TargetKind::Kernel,
            DeviceId::target(3),
            span(20, 40),
            CodePtr(0x2),
        );
        let view = EventView::new(log.data_op_events_sorted(), log.kernel_events_sorted(), 1);
        let report = super::analyze_view(&log, &view, None, "undersized", Vec::new());
        assert!(
            report
                .console
                .iter()
                .any(|l| l.starts_with("warning:") && l.contains("Algorithms 4/5")),
            "{:?}",
            report.console
        );
        // A correctly sized view stays silent.
        let full = EventView::from_log(&log);
        let clean = super::analyze_view(&log, &full, None, "sized", Vec::new());
        assert!(clean.console.is_empty(), "{:?}", clean.console);
    }

    #[test]
    fn json_export_round_trips() {
        let report = analyze(&sample_trace(), None);
        let json = report.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["counts"]["dd"], 1);
    }
}
