//! Optimization-potential estimation (§7.6).
//!
//! "Speedup predictions are calculated by subtracting, from the total
//! execution time, the transfer or allocation time that could be
//! eliminated through the removal of the identified excess or inefficient
//! data transfers and allocations."
//!
//! Eliminable events per category:
//!
//! * **DD** — every transfer in a duplicate group beyond the first;
//! * **RT** — both legs of each completed round trip (fixing the mapping
//!   removes the copy-back *and* the re-send);
//! * **RA** — the alloc and delete of every pair beyond the first;
//! * **UA** — the alloc and delete of each unused allocation;
//! * **UT** — the unused transfer itself.
//!
//! Findings overlap (a round trip's re-send is often also a duplicate;
//! an unused allocation is often also a repeat), so elimination is
//! tracked in a global event-id set: each event's duration is subtracted
//! exactly once no matter how many findings implicate it.

use crate::detect::Findings;
use odp_hash::fnv::FnvHashSet;
use odp_model::{DataOpEvent, EventId, SimDuration};
use serde::Serialize;

/// Per-category eliminable time (deduplicated in category order
/// DD → RT → RA → UA → UT; overlapping events are charged to the first
/// category that claims them).
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct SavingsBreakdown {
    /// From duplicate transfers.
    pub duplicate_ns: u64,
    /// From round trips.
    pub round_trip_ns: u64,
    /// From repeated allocations.
    pub realloc_ns: u64,
    /// From unused allocations.
    pub unused_alloc_ns: u64,
    /// From unused transfers.
    pub unused_transfer_ns: u64,
}

impl SavingsBreakdown {
    /// Total nanoseconds saved.
    pub fn total_ns(&self) -> u64 {
        self.duplicate_ns
            + self.round_trip_ns
            + self.realloc_ns
            + self.unused_alloc_ns
            + self.unused_transfer_ns
    }
}

/// The tool's optimization-potential estimate.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct Prediction {
    /// Measured total execution time.
    pub total_time: SimDuration,
    /// Predicted eliminable time.
    pub time_saved: SimDuration,
    /// Per-category breakdown.
    pub breakdown: SavingsBreakdown,
    /// Predicted execution time after fixing all findings.
    pub predicted_time: SimDuration,
    /// Predicted speedup (`total / predicted`).
    pub predicted_speedup: f64,
    /// Number of data-management operations eliminated.
    pub ops_eliminated: usize,
    /// Transfer bytes eliminated.
    pub bytes_eliminated: u64,
}

impl Prediction {
    /// Percentage of calls to data-management operations eliminated,
    /// given the trace's total op count (the §7.7 "99 % reduction in the
    /// number of calls to copy data" style metric).
    pub fn ops_eliminated_pct(&self, total_ops: usize) -> f64 {
        if total_ops == 0 {
            return 0.0;
        }
        100.0 * self.ops_eliminated as f64 / total_ops as f64
    }
}

struct Accumulator {
    eliminated: FnvHashSet<EventId>,
    ns: u64,
    ops: usize,
    bytes: u64,
}

impl Accumulator {
    fn new() -> Self {
        Accumulator {
            eliminated: FnvHashSet::default(),
            ns: 0,
            ops: 0,
            bytes: 0,
        }
    }

    /// Claim an event; returns the nanoseconds newly saved (0 if already
    /// claimed by an earlier category).
    fn claim(&mut self, e: &DataOpEvent) -> u64 {
        if !self.eliminated.insert(e.id) {
            return 0;
        }
        self.ops += 1;
        if e.is_transfer() {
            self.bytes += e.bytes;
        }
        let d = e.duration().as_nanos();
        self.ns += d;
        d
    }
}

/// Compute the optimization-potential estimate for `findings` against a
/// program whose total runtime was `total_time`.
pub fn predict(findings: &Findings, total_time: SimDuration) -> Prediction {
    let mut acc = Accumulator::new();
    let mut breakdown = SavingsBreakdown::default();

    for group in &findings.duplicates {
        for e in group.events.iter().skip(1) {
            breakdown.duplicate_ns += acc.claim(e);
        }
    }
    for group in &findings.round_trips {
        for trip in &group.trips {
            breakdown.round_trip_ns += acc.claim(&trip.tx);
            breakdown.round_trip_ns += acc.claim(&trip.rx);
        }
    }
    for group in &findings.repeated_allocs {
        for pair in group.pairs.iter().skip(1) {
            breakdown.realloc_ns += acc.claim(&pair.alloc);
            if let Some(del) = &pair.delete {
                breakdown.realloc_ns += acc.claim(del);
            }
        }
    }
    for ua in &findings.unused_allocs {
        breakdown.unused_alloc_ns += acc.claim(&ua.pair.alloc);
        if let Some(del) = &ua.pair.delete {
            breakdown.unused_alloc_ns += acc.claim(del);
        }
    }
    for ut in &findings.unused_transfers {
        breakdown.unused_transfer_ns += acc.claim(&ut.event);
    }

    let time_saved = SimDuration(breakdown.total_ns().min(total_time.as_nanos()));
    let predicted_time = total_time.saturating_sub(time_saved);
    let predicted_speedup = if predicted_time.as_nanos() == 0 {
        1.0
    } else {
        total_time.as_nanos() as f64 / predicted_time.as_nanos() as f64
    };

    Prediction {
        total_time,
        time_saved,
        breakdown,
        predicted_time,
        predicted_speedup,
        ops_eliminated: acc.ops,
        bytes_eliminated: acc.bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::EventFactory;
    use crate::detect::Findings;

    #[test]
    fn no_findings_no_savings() {
        let p = predict(&Findings::default(), SimDuration(1_000_000));
        assert_eq!(p.time_saved, SimDuration::ZERO);
        assert_eq!(p.predicted_time, SimDuration(1_000_000));
        assert!((p.predicted_speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_savings_skip_first_event() {
        let mut f = EventFactory::new();
        // Three identical transfers, each taking 10 ns → 20 ns saved.
        let ops = vec![
            f.h2d(0, 0, 0x1000, 7, 64),
            f.h2d(100, 0, 0x1000, 7, 64),
            f.h2d(200, 0, 0x1000, 7, 64),
        ];
        let findings = Findings::detect(&ops, &[], 1);
        let p = predict(&findings, SimDuration(1_000));
        // DD claims events 2 and 3; Algorithm 2 also sees trips here but
        // dedup ensures total ≤ all three events' durations.
        assert!(p.time_saved.as_nanos() >= 20);
        assert!(p.time_saved.as_nanos() <= 30);
        assert!(p.predicted_speedup > 1.0);
    }

    #[test]
    fn overlapping_findings_do_not_double_count() {
        let mut f = EventFactory::new();
        // A pattern that triggers DD and RT on the same events: four
        // identical transfers bouncing between host and device.
        let ops = vec![
            f.h2d(0, 0, 0x1000, 7, 64),
            f.d2h(20, 0, 0x1000, 7, 64),
            f.h2d(40, 0, 0x1000, 7, 64),
            f.d2h(60, 0, 0x1000, 7, 64),
        ];
        let findings = Findings::detect(&ops, &[], 1);
        let p = predict(&findings, SimDuration(10_000));
        // Each event lasts 10 ns; 4 events exist; savings can never
        // exceed the total duration of all events.
        assert!(
            p.time_saved.as_nanos() <= 40,
            "saved {}",
            p.time_saved.as_nanos()
        );
        assert!(p.ops_eliminated <= 4);
    }

    #[test]
    fn savings_clamped_to_total_time() {
        let mut f = EventFactory::new();
        let ops = vec![f.h2d(0, 0, 0x1000, 7, 64), f.h2d(10, 0, 0x1000, 7, 64)];
        let findings = Findings::detect(&ops, &[], 1);
        // Absurdly short program: savings cannot exceed it.
        let p = predict(&findings, SimDuration(5));
        assert_eq!(p.time_saved, SimDuration(5));
        assert_eq!(p.predicted_time, SimDuration::ZERO);
        assert!(
            (p.predicted_speedup - 1.0).abs() < 1e-12,
            "degenerate case pins to 1.0"
        );
    }

    #[test]
    fn realloc_savings_count_alloc_and_delete() {
        let mut f = EventFactory::new();
        let ops = vec![
            f.alloc(0, 0, 0x1000, 0xd000, 64),   // 5 ns
            f.delete(10, 0, 0x1000, 0xd000, 64), // 2 ns
            f.alloc(20, 0, 0x1000, 0xd000, 64),
            f.delete(30, 0, 0x1000, 0xd000, 64),
        ];
        let kernels = vec![f.kernel(2, 8, 0), f.kernel(22, 28, 0)];
        let findings = Findings::detect(&ops, &kernels, 1);
        assert_eq!(findings.counts().ra, 1);
        let p = predict(&findings, SimDuration(1_000));
        assert_eq!(p.breakdown.realloc_ns, 7, "second alloc (5) + delete (2)");
    }

    #[test]
    fn ops_percentage() {
        let p = Prediction {
            ops_eliminated: 99,
            ..Default::default()
        };
        assert!((p.ops_eliminated_pct(100) - 99.0).abs() < 1e-12);
        assert_eq!(p.ops_eliminated_pct(0), 0.0);
    }
}
