//! Online mapping remediation — acting on findings instead of only
//! reporting them.
//!
//! The five §5 detectors diagnose inefficient map patterns but leave
//! the fix to the programmer. This module closes the loop, the dynamic
//! counterpart of Marzen et al.'s *static* mapping generation
//! (PAPERS.md): a [`RemediationPolicy`] subscribes to the streaming
//! engine's live [`StreamFinding`]s and translates each finding kind
//! into a concrete mapping rewrite that the simulated runtime applies
//! at every *subsequent* map-clause item:
//!
//! | finding (§5)          | rewrite                                            |
//! |-----------------------|----------------------------------------------------|
//! | duplicate transfer    | persist the mapping; the re-send is dropped because the present-table entry is reused |
//! | round trip (from host)| downgrade the exit copy (`from` → `release`): the host provably already holds the bytes |
//! | round trip (from dev) | persist + targeted `update` at exit instead of the delete/re-send bounce |
//! | repeated allocation   | persist the mapping (no release → no re-allocation)|
//! | unused allocation     | elide the clause (never allocate)                  |
//! | unused transfer       | downgrade the enter copy (`to` → `alloc`)          |
//!
//! Rules are keyed by `(device, host address)` — exactly what the
//! runtime knows at a map clause — and are *monotone*: once learned, a
//! rule only strengthens, so the enter and exit halves of one region
//! can never disagree (the [`odp_ompt::MapAdvisor`] contract). The
//! runtime guards soundness on its side: elision is overridden for
//! kernel-referenced variables, persistence falls back to a plain
//! release while other regions still hold the mapping, and exit-side
//! `from` copies degrade to targeted updates so host visibility is
//! never silently lost.
//!
//! Two driving modes:
//!
//! * **Adaptive** ([`LiveRemediator`]) — the policy rides along with
//!   the run: every advisor consult first drains the streaming
//!   engine's new findings into the policy, so iteration *n*'s
//!   diagnosis rewrites iteration *n+1*'s mappings.
//! * **Seeded re-run** ([`RemediationPolicy::from_findings`]) — build
//!   the policy from a previous run's post-mortem findings and attach
//!   it to a fresh run; the detectors then find **zero** issues of the
//!   remediated kinds (enforced by `tests/adaptive_remediation.rs`).
//!
//! What the rewrites recovered — transfers, bytes, alloc/free work,
//! priced by the runtime's own timing model — lands in a
//! [`RemediationReport`] (per finding kind, per device), rendered in
//! the §A.6 console style and exported as JSON. With remediation off,
//! nothing in this module runs and detection output stays byte-identical
//! to the unremediated tool (the differential suites enforce this).

use crate::detect::stream::host_side_addr;
use crate::detect::{Findings, StreamFinding};
use crate::report::FindingsSink;
use crate::tool::{FindingsTap, ToolHandle};
use odp_hash::fnv::FnvHashMap;
use odp_model::{CodePtr, DeviceId, MapType, SimDuration};
use odp_ompt::{AdviceCause, MapAdvice, MapAdvisor, RemediationStats, RemedyCounter};
use parking_lot::Mutex;
use serde::Serialize;
use std::fmt::Write as _;
use std::sync::Arc;

/// Translates §5 findings into mapping rewrites, keyed by
/// `(device, host address)`. Implements [`MapAdvisor`] directly (attach
/// a pre-seeded policy with `Runtime::attach_advisor`) and
/// [`FindingsSink`] (subscribe it to any live findings source).
#[derive(Clone, Debug, Default)]
pub struct RemediationPolicy {
    /// Merged rewrite per site. Slots only ever go `None` → `Some`
    /// (monotone), first cause wins for attribution.
    rules: FnvHashMap<(u32, u64), MapAdvice>,
    /// Findings observed per cause (Table 1 order).
    observed: [u64; AdviceCause::COUNT],
    /// Advisor consults served.
    consults: u64,
}

impl RemediationPolicy {
    /// An empty policy (learns only from observed findings).
    pub fn new() -> RemediationPolicy {
        RemediationPolicy::default()
    }

    /// Seed a policy from a previous run's post-mortem findings — the
    /// re-run mode: attach the result to a fresh runtime and the
    /// remediated kinds disappear from its report.
    pub fn from_findings(findings: &Findings) -> RemediationPolicy {
        let mut p = RemediationPolicy::new();
        p.absorb(findings);
        p
    }

    /// Merge a (further) report's findings into the policy — iterative
    /// re-seeding. Under free-running shared-device threading each run's
    /// schedule may expose sites a previous run never exercised; rules
    /// are monotone per site, so absorbing successive reports converges
    /// to a fixed point where the remediated kinds stay eliminated on
    /// every schedule.
    pub fn absorb(&mut self, findings: &Findings) {
        for g in findings
            .duplicates
            .iter()
            .filter(|g| !g.confidence.is_degraded())
        {
            for e in g.events.iter().skip(1) {
                self.on_duplicate(e.src_device, e.dest_device, host_side_addr(e));
            }
        }
        for g in findings
            .round_trips
            .iter()
            .filter(|g| !g.confidence.is_degraded())
        {
            // A spilled trip was never confirmed — seeding a rewrite
            // from it could drop a copy-back the program needs.
            for t in g.trips.iter().filter(|t| !t.spilled) {
                self.on_round_trip(g.src_device, g.dest_device, host_side_addr(&t.tx));
            }
        }
        for g in findings
            .repeated_allocs
            .iter()
            .filter(|g| !g.confidence.is_degraded())
        {
            self.on_repeated_alloc(g.device, g.host_addr);
        }
        for ua in findings
            .unused_allocs
            .iter()
            .filter(|ua| !ua.confidence.is_degraded())
        {
            self.on_unused_alloc(ua.pair.alloc.dest_device, ua.pair.alloc.src_addr);
        }
        for ut in findings
            .unused_transfers
            .iter()
            .filter(|ut| !ut.confidence.is_degraded())
        {
            self.on_unused_transfer(ut.event.dest_device, ut.event.src_addr);
        }
    }

    /// Learn from one live finding. Degraded findings — evidence that
    /// survived a forced watermark release or arrived after one — are
    /// ignored wholesale: a rewrite rule seeded from reordered or
    /// incomplete evidence could skip a transfer the program needs.
    pub fn observe(&mut self, finding: &StreamFinding) {
        if finding.confidence().is_degraded() {
            return;
        }
        match *finding {
            StreamFinding::DuplicateTransfer {
                src_device,
                dest_device,
                host_addr,
                ..
            } => self.on_duplicate(src_device, dest_device, host_addr),
            StreamFinding::RoundTrip { spilled: true, .. } => {
                // Force-retired by a lookahead spill: unconfirmed, so
                // it must never seed a rewrite rule.
            }
            StreamFinding::RoundTrip {
                src_device,
                dest_device,
                host_addr,
                ..
            } => self.on_round_trip(src_device, dest_device, host_addr),
            StreamFinding::RepeatedAlloc {
                device, host_addr, ..
            } => self.on_repeated_alloc(device, host_addr),
            StreamFinding::UnusedAlloc {
                device, host_addr, ..
            } => self.on_unused_alloc(device, host_addr),
            StreamFinding::UnusedTransfer {
                device, host_addr, ..
            } => self.on_unused_transfer(device, host_addr),
        }
    }

    /// Number of sites with at least one rewrite rule.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Advisor consults served so far.
    pub fn consults(&self) -> u64 {
        self.consults
    }

    /// Findings observed per cause, [`AdviceCause::ALL`] order.
    pub fn observed(&self) -> [u64; AdviceCause::COUNT] {
        self.observed
    }

    /// The merged rewrite for a site (KEEP when unknown). This *is* the
    /// advisor lookup; exposed for tests and the overhead bench.
    pub fn advise(&mut self, device: u32, host_addr: u64) -> MapAdvice {
        self.consults += 1;
        self.rules
            .get(&(device, host_addr))
            .copied()
            .unwrap_or(MapAdvice::KEEP)
    }

    // ---- per-kind translation rules -------------------------------------

    fn rule_mut(&mut self, device: u32, host_addr: u64) -> &mut MapAdvice {
        self.rules.entry((device, host_addr)).or_default()
    }

    fn on_duplicate(&mut self, src: DeviceId, dest: DeviceId, host_addr: u64) {
        self.observed[AdviceCause::DuplicateTransfer.index()] += 1;
        if let Some(ix) = dest.target_index() {
            // Re-send to a device: keep the mapping resident instead.
            let r = self.rule_mut(ix as u32, host_addr);
            r.persist = r.persist.or(Some(AdviceCause::DuplicateTransfer));
        } else if let Some(ix) = src.target_index() {
            // Re-send to the host: the host provably has the bytes.
            let r = self.rule_mut(ix as u32, host_addr);
            r.skip_from = r.skip_from.or(Some(AdviceCause::DuplicateTransfer));
        }
    }

    fn on_round_trip(&mut self, src: DeviceId, dest: DeviceId, host_addr: u64) {
        self.observed[AdviceCause::RoundTrip.index()] += 1;
        if src.is_host() {
            // Host content bounced off a device and came back unchanged:
            // the copy-back is redundant.
            if let Some(ix) = dest.target_index() {
                let r = self.rule_mut(ix as u32, host_addr);
                r.skip_from = r.skip_from.or(Some(AdviceCause::RoundTrip));
            }
        } else if let Some(ix) = src.target_index() {
            // Device content bounced via the host: persist the mapping;
            // the runtime degrades the exit copy to a targeted update
            // (the "inject an update instead of a round trip" rewrite).
            let r = self.rule_mut(ix as u32, host_addr);
            r.persist = r.persist.or(Some(AdviceCause::RoundTrip));
        }
    }

    fn on_repeated_alloc(&mut self, device: DeviceId, host_addr: u64) {
        self.observed[AdviceCause::RepeatedAlloc.index()] += 1;
        if let Some(ix) = device.target_index() {
            let r = self.rule_mut(ix as u32, host_addr);
            r.persist = r.persist.or(Some(AdviceCause::RepeatedAlloc));
        }
    }

    fn on_unused_alloc(&mut self, device: DeviceId, host_addr: u64) {
        self.observed[AdviceCause::UnusedAlloc.index()] += 1;
        if let Some(ix) = device.target_index() {
            let r = self.rule_mut(ix as u32, host_addr);
            r.elide = r.elide.or(Some(AdviceCause::UnusedAlloc));
        }
    }

    fn on_unused_transfer(&mut self, device: DeviceId, host_addr: u64) {
        self.observed[AdviceCause::UnusedTransfer.index()] += 1;
        if let Some(ix) = device.target_index() {
            let r = self.rule_mut(ix as u32, host_addr);
            r.skip_to = r.skip_to.or(Some(AdviceCause::UnusedTransfer));
        }
    }
}

impl MapAdvisor for RemediationPolicy {
    fn advise_enter(
        &mut self,
        device: u32,
        _codeptr: CodePtr,
        host_addr: u64,
        _bytes: u64,
        _map_type: MapType,
    ) -> MapAdvice {
        self.advise(device, host_addr)
    }

    fn advise_exit(
        &mut self,
        device: u32,
        _codeptr: CodePtr,
        host_addr: u64,
        _bytes: u64,
        _map_type: MapType,
    ) -> MapAdvice {
        self.advise(device, host_addr)
    }
}

impl FindingsSink for RemediationPolicy {
    fn on_finding(&mut self, finding: &StreamFinding) {
        self.observe(finding);
    }
}

/// The shareable policy cell advisors and reports read from.
pub type SharedPolicyCell = Arc<Mutex<RemediationPolicy>>;

/// The adaptive-mode advisor: pumps the streaming engine's new findings
/// into the shared policy before every advice, so the rewrite rules
/// grow *during* the run — iteration `n`'s diagnosis rewrites iteration
/// `n+1`'s mappings. Requires the tool to run with `ToolConfig::stream`.
/// Consumes its **own** tee tap ([`ToolHandle::tap_stream_findings`]),
/// so a live console poller draining the default stream concurrently
/// loses nothing to the policy (and vice versa).
pub struct LiveRemediator {
    tap: FindingsTap,
    policy: SharedPolicyCell,
}

impl LiveRemediator {
    /// Build a live remediator over a streaming tool's handle. Returns
    /// the advisor (box it into `Runtime::attach_advisor`) and the
    /// shared policy for post-run reporting.
    pub fn new(handle: ToolHandle) -> (LiveRemediator, SharedPolicyCell) {
        let policy = Arc::new(Mutex::new(RemediationPolicy::new()));
        (
            LiveRemediator {
                tap: handle.tap_stream_findings(),
                policy: policy.clone(),
            },
            policy,
        )
    }

    fn pump(&self) {
        let findings = self.tap.take();
        if findings.is_empty() {
            return;
        }
        let mut policy = self.policy.lock();
        for f in &findings {
            policy.observe(f);
        }
    }
}

impl MapAdvisor for LiveRemediator {
    fn advise_enter(
        &mut self,
        device: u32,
        codeptr: CodePtr,
        host_addr: u64,
        bytes: u64,
        map_type: MapType,
    ) -> MapAdvice {
        self.pump();
        self.policy
            .lock()
            .advise_enter(device, codeptr, host_addr, bytes, map_type)
    }

    fn advise_exit(
        &mut self,
        device: u32,
        codeptr: CodePtr,
        host_addr: u64,
        bytes: u64,
        map_type: MapType,
    ) -> MapAdvice {
        self.pump();
        self.policy
            .lock()
            .advise_exit(device, codeptr, host_addr, bytes, map_type)
    }
}

/// What the per-thread advisor handles share: one policy, and (in
/// adaptive mode) one tee tap on the live findings stream.
struct SharedRemedyInner {
    /// `None` in seeded mode (nothing to learn mid-run).
    tap: Option<FindingsTap>,
    policy: SharedPolicyCell,
}

/// One `RemediationPolicy` behind cheap per-thread advisor handles —
/// the threaded counterpart of [`LiveRemediator`], mirroring the
/// collector's shard→watermark design: each runtime thread attaches its
/// own [`SharedAdvisor`] ([`SharedRemediator::fork_advisor`]), every
/// consult first pumps the shared findings tap (non-blocking: a consult
/// never waits for another thread's drain), and all threads' rewrites
/// land in one policy, so a pattern thread A diagnosed rewrites thread
/// B's very next region. Per-thread `RemediationStats` stay in each
/// runtime and merge at finalize
/// (`odp_sim::run_on_threads_shared` / `RemediationStats::merge`).
pub struct SharedRemediator {
    inner: Arc<SharedRemedyInner>,
}

impl SharedRemediator {
    /// An adaptive shared remediator over a streaming tool's handle:
    /// the policy starts empty and learns from the live findings
    /// stream. Returns the remediator (fork one advisor per runtime
    /// thread) and the shared policy for post-run reporting.
    pub fn new(handle: ToolHandle) -> (SharedRemediator, SharedPolicyCell) {
        let policy = Arc::new(Mutex::new(RemediationPolicy::new()));
        (
            SharedRemediator {
                inner: Arc::new(SharedRemedyInner {
                    tap: Some(handle.tap_stream_findings()),
                    policy: policy.clone(),
                }),
            },
            policy,
        )
    }

    /// A seeded shared remediator: the policy is fixed up front
    /// (typically [`RemediationPolicy::from_findings`] over a previous
    /// run's report) and nothing is learned mid-run.
    pub fn seeded(policy: RemediationPolicy) -> (SharedRemediator, SharedPolicyCell) {
        let policy = Arc::new(Mutex::new(policy));
        (
            SharedRemediator {
                inner: Arc::new(SharedRemedyInner {
                    tap: None,
                    policy: policy.clone(),
                }),
            },
            policy,
        )
    }

    /// Fork one advisor handle for a runtime thread (box it into that
    /// thread's `Runtime::attach_advisor`).
    pub fn fork_advisor(&self) -> SharedAdvisor {
        SharedAdvisor {
            inner: self.inner.clone(),
        }
    }
}

/// One runtime thread's handle onto the shared policy. Object-safe
/// [`MapAdvisor`]; cheap to fork and to consult.
pub struct SharedAdvisor {
    inner: Arc<SharedRemedyInner>,
}

impl SharedAdvisor {
    fn pump(&self) {
        let Some(tap) = &self.inner.tap else {
            return;
        };
        // Non-blocking: if another thread is mid-drain it will deliver
        // to our shared tap; whatever is already there still lands in
        // the policy before this consult.
        let findings = tap.try_take();
        if findings.is_empty() {
            return;
        }
        let mut policy = self.inner.policy.lock();
        for f in &findings {
            policy.observe(f);
        }
    }
}

impl MapAdvisor for SharedAdvisor {
    fn advise_enter(
        &mut self,
        device: u32,
        codeptr: CodePtr,
        host_addr: u64,
        bytes: u64,
        map_type: MapType,
    ) -> MapAdvice {
        self.pump();
        self.inner
            .policy
            .lock()
            .advise_enter(device, codeptr, host_addr, bytes, map_type)
    }

    fn advise_exit(
        &mut self,
        device: u32,
        codeptr: CodePtr,
        host_addr: u64,
        bytes: u64,
        map_type: MapType,
    ) -> MapAdvice {
        self.pump();
        self.inner
            .policy
            .lock()
            .advise_exit(device, codeptr, host_addr, bytes, map_type)
    }
}

/// One report row: what remediation recovered for one finding kind.
#[derive(Clone, Debug, Serialize)]
pub struct RemediationRow {
    /// Finding kind (cause) name.
    pub kind: String,
    /// Advisor rewrites applied.
    pub rewrites: u64,
    /// Transfers that never happened.
    pub transfers_avoided: u64,
    /// Bytes those transfers would have moved.
    pub bytes_recovered: u64,
    /// Transfer time recovered.
    pub transfer_time_recovered: SimDuration,
    /// Device allocations avoided.
    pub allocs_avoided: u64,
    /// Device deallocations avoided.
    pub deletes_avoided: u64,
    /// Alloc/free time recovered.
    pub mgmt_time_recovered: SimDuration,
    /// Exit copies degraded to targeted updates (still moved bytes).
    pub updates_injected: u64,
}

/// Per-device recovered totals.
#[derive(Clone, Debug, Serialize)]
pub struct RemediationDeviceRow {
    /// Target device index.
    pub device: u32,
    /// Bytes recovered on this device.
    pub bytes_recovered: u64,
    /// Transfer time recovered on this device.
    pub transfer_time_recovered: SimDuration,
}

/// Recovered-vs-baseline accounting of one remediated run, per finding
/// kind and per device — the §A.6-style summary `--remediate` prints.
#[derive(Clone, Debug, Serialize)]
pub struct RemediationReport {
    /// Sites with at least one rewrite rule.
    pub rules: usize,
    /// Advisor consults served (policy lookup count).
    pub consults: u64,
    /// Findings the policy observed, per kind ([`AdviceCause::ALL`] order).
    pub observed: Vec<u64>,
    /// Per-kind recovered rows (kinds with any activity).
    pub rows: Vec<RemediationRow>,
    /// Per-device recovered totals (devices with any activity).
    pub devices: Vec<RemediationDeviceRow>,
    /// Bytes the remediated run actually transferred.
    pub actual_transfer_bytes: u64,
    /// Bytes recovered (baseline = actual + recovered).
    pub recovered_transfer_bytes: u64,
    /// Transfer time the remediated run actually spent.
    pub actual_transfer_time: SimDuration,
    /// Transfer time recovered.
    pub recovered_transfer_time: SimDuration,
    /// Alloc/free time recovered.
    pub recovered_mgmt_time: SimDuration,
}

impl RemediationReport {
    /// Assemble the report from the policy, the runtime's remediation
    /// stats, and the run's actual transfer totals
    /// (`RuntimeStats::bytes_transferred` / `transfer_time`).
    pub fn new(
        policy: &RemediationPolicy,
        stats: &RemediationStats,
        actual_transfer_bytes: u64,
        actual_transfer_time: SimDuration,
    ) -> RemediationReport {
        let rows = AdviceCause::ALL
            .iter()
            .filter_map(|&cause| {
                let c = stats.per_cause(cause);
                if c == RemedyCounter::default() {
                    return None;
                }
                Some(RemediationRow {
                    kind: cause.name().to_string(),
                    rewrites: c.rewrites,
                    transfers_avoided: c.transfers_avoided,
                    bytes_recovered: c.transfer_bytes_avoided,
                    transfer_time_recovered: c.transfer_time_avoided,
                    allocs_avoided: c.allocs_avoided,
                    deletes_avoided: c.deletes_avoided,
                    mgmt_time_recovered: c.mgmt_time_avoided,
                    updates_injected: c.updates_injected,
                })
            })
            .collect();
        let devices = (0..stats.device_count() as u32)
            .filter_map(|d| {
                let c = stats.per_device(d);
                if c == RemedyCounter::default() {
                    return None;
                }
                Some(RemediationDeviceRow {
                    device: d,
                    bytes_recovered: c.transfer_bytes_avoided,
                    transfer_time_recovered: c.transfer_time_avoided,
                })
            })
            .collect();
        let totals = stats.totals();
        RemediationReport {
            rules: policy.rule_count(),
            consults: policy.consults(),
            observed: policy.observed().to_vec(),
            rows,
            devices,
            actual_transfer_bytes,
            recovered_transfer_bytes: totals.transfer_bytes_avoided,
            actual_transfer_time,
            recovered_transfer_time: totals.transfer_time_avoided,
            recovered_mgmt_time: totals.mgmt_time_avoided,
        }
    }

    /// Total recovered time (transfers + alloc/free).
    pub fn recovered_time(&self) -> SimDuration {
        SimDuration(self.recovered_transfer_time.as_nanos() + self.recovered_mgmt_time.as_nanos())
    }

    /// Render the §A.6-style console section.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n=== OpenMP Adaptive Mapping Remediation ===");
        let _ = writeln!(
            out,
            "  policy : {} site rule(s), {} consult(s)",
            self.rules, self.consults
        );
        if self.rows.is_empty() {
            let _ = writeln!(out, "  no rewrites applied");
            return out;
        }
        let _ = writeln!(
            out,
            "  {:<22} {:>8} {:>8} {:>12} {:>12} {:>7} {:>7} {:>7}",
            "kind", "rewrites", "xfers", "bytes", "time", "allocs", "deletes", "updates"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "  {:<22} {:>8} {:>8} {:>12} {:>12} {:>7} {:>7} {:>7}",
                row.kind,
                row.rewrites,
                row.transfers_avoided,
                row.bytes_recovered,
                row.transfer_time_recovered.to_string(),
                row.allocs_avoided,
                row.deletes_avoided,
                row.updates_injected,
            );
        }
        for d in &self.devices {
            let _ = writeln!(
                out,
                "  dev{} : {} B / {} recovered",
                d.device, d.bytes_recovered, d.transfer_time_recovered
            );
        }
        let baseline_bytes = self.actual_transfer_bytes + self.recovered_transfer_bytes;
        let baseline_ns =
            self.actual_transfer_time.as_nanos() + self.recovered_transfer_time.as_nanos();
        let pct = if baseline_ns == 0 {
            0.0
        } else {
            100.0 * self.recovered_transfer_time.as_nanos() as f64 / baseline_ns as f64
        };
        let _ = writeln!(
            out,
            "  recovered transfer time : {} ({:.1}% of the unremediated {})",
            self.recovered_transfer_time,
            pct,
            SimDuration(baseline_ns)
        );
        let _ = writeln!(
            out,
            "  recovered bytes         : {} of {} baseline ({} still moved)",
            self.recovered_transfer_bytes, baseline_bytes, self.actual_transfer_bytes
        );
        out
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"error\":\"remediation report serialization: {e}\"}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_model::HashVal;

    fn dev(n: u32) -> DeviceId {
        DeviceId::target(n)
    }

    #[test]
    fn each_finding_kind_maps_to_its_rewrite() {
        let mut p = RemediationPolicy::new();
        p.observe(&StreamFinding::DuplicateTransfer {
            hash: HashVal(1),
            src_device: DeviceId::HOST,
            dest_device: dev(0),
            host_addr: 0x100,
            codeptr: CodePtr(0x1),
            event: 1,
            first: 0,
            occurrence: 2,
            confidence: crate::detect::Confidence::Confirmed,
        });
        p.observe(&StreamFinding::RoundTrip {
            hash: HashVal(2),
            src_device: DeviceId::HOST,
            dest_device: dev(0),
            host_addr: 0x200,
            codeptr: CodePtr(0x2),
            tx: 2,
            rx: 3,
            spilled: false,
            confidence: crate::detect::Confidence::Confirmed,
        });
        p.observe(&StreamFinding::RoundTrip {
            hash: HashVal(3),
            src_device: dev(1),
            dest_device: DeviceId::HOST,
            host_addr: 0x300,
            codeptr: CodePtr(0x3),
            tx: 4,
            rx: 5,
            spilled: false,
            confidence: crate::detect::Confidence::Confirmed,
        });
        p.observe(&StreamFinding::RepeatedAlloc {
            host_addr: 0x400,
            device: dev(0),
            bytes: 64,
            codeptr: CodePtr(0x4),
            alloc: 6,
            occurrence: 2,
            confidence: crate::detect::Confidence::Confirmed,
        });
        p.observe(&StreamFinding::UnusedAlloc {
            device: dev(0),
            host_addr: 0x500,
            codeptr: CodePtr(0x5),
            alloc: 7,
            delete: None,
            confidence: crate::detect::Confidence::Confirmed,
        });
        p.observe(&StreamFinding::UnusedTransfer {
            device: dev(0),
            host_addr: 0x600,
            codeptr: CodePtr(0x6),
            event: 8,
            reason: crate::detect::UnusedTransferReason::AfterLastKernel,
            confidence: crate::detect::Confidence::Confirmed,
        });

        assert_eq!(p.rule_count(), 6);
        assert_eq!(
            p.advise(0, 0x100).persist,
            Some(AdviceCause::DuplicateTransfer)
        );
        assert_eq!(p.advise(0, 0x200).skip_from, Some(AdviceCause::RoundTrip));
        assert_eq!(p.advise(1, 0x300).persist, Some(AdviceCause::RoundTrip));
        assert_eq!(p.advise(0, 0x400).persist, Some(AdviceCause::RepeatedAlloc));
        assert_eq!(p.advise(0, 0x500).elide, Some(AdviceCause::UnusedAlloc));
        assert_eq!(
            p.advise(0, 0x600).skip_to,
            Some(AdviceCause::UnusedTransfer)
        );
        assert!(p.advise(0, 0x999).is_keep(), "unknown sites stay untouched");
        assert_eq!(p.observed(), [1, 2, 1, 1, 1]);
    }

    #[test]
    fn rules_are_monotone_first_cause_wins() {
        let mut p = RemediationPolicy::new();
        p.on_repeated_alloc(dev(0), 0x100);
        p.on_duplicate(DeviceId::HOST, dev(0), 0x100);
        let advice = p.advise(0, 0x100);
        assert_eq!(
            advice.persist,
            Some(AdviceCause::RepeatedAlloc),
            "the first cause keeps the attribution"
        );
    }

    #[test]
    fn from_findings_seeds_the_same_rules_as_observe() {
        use crate::detect::testutil::EventFactory;
        let mut f = EventFactory::new();
        // Duplicate pair to dev0 + a host round trip.
        let ops = vec![
            f.h2d(0, 0, 0x1000, 7, 64),
            f.h2d(20, 0, 0x1000, 7, 64),
            f.d2h(40, 0, 0x1000, 7, 64),
        ];
        let findings = Findings::detect(&ops, &[], 1);
        assert!(findings.counts().dd >= 1 && findings.counts().rt >= 1);
        let mut p = RemediationPolicy::from_findings(&findings);
        let advice = p.advise(0, 0x1000);
        assert!(advice.persist.is_some(), "duplicate → persist");
        assert!(advice.skip_from.is_some(), "host round trip → skip_from");
    }

    #[test]
    fn report_renders_rows_and_baseline() {
        let mut p = RemediationPolicy::new();
        p.on_repeated_alloc(dev(0), 0x100);
        let mut stats = RemediationStats::default();
        {
            let c = stats.counter_mut(0, AdviceCause::RepeatedAlloc);
            c.rewrites = 3;
            c.transfers_avoided = 2;
            c.transfer_bytes_avoided = 2048;
            c.transfer_time_avoided = SimDuration(5_000);
            c.allocs_avoided = 2;
            c.mgmt_time_avoided = SimDuration(1_000);
        }
        let report = RemediationReport::new(&p, &stats, 1024, SimDuration(2_500));
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.recovered_transfer_bytes, 2048);
        assert_eq!(report.recovered_time(), SimDuration(6_000));
        let text = report.render();
        assert!(text.contains("Adaptive Mapping Remediation"));
        assert!(text.contains("repeated allocation"));
        assert!(text.contains("recovered transfer time"));
        let json = report.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["recovered_transfer_bytes"], 2048);
    }

    #[test]
    fn empty_report_says_so() {
        let p = RemediationPolicy::new();
        let report = RemediationReport::new(&p, &RemediationStats::default(), 0, SimDuration::ZERO);
        assert!(report.rows.is_empty());
        assert!(report.render().contains("no rewrites applied"));
    }

    #[test]
    fn live_remediator_pumps_findings_from_a_streaming_tool() {
        use crate::tool::{OmpDataPerfTool, ToolConfig};
        use odp_model::SimTime;
        use odp_ompt::{CompilerProfile, DataOpCallback, DataOpType, Endpoint, Tool as _};

        let (mut tool, handle) = OmpDataPerfTool::new(ToolConfig {
            stream: true,
            ..Default::default()
        });
        tool.initialize(&CompilerProfile::LlvmClang.capabilities());
        let payload = vec![9u8; 64];
        let op = |endpoint, id: u64, time: u64, payload| DataOpCallback {
            endpoint,
            target_id: 1,
            host_op_id: id,
            optype: DataOpType::TransferToDevice,
            src_device: DeviceId::HOST,
            src_addr: 0x1000,
            dest_device: dev(0),
            dest_addr: 0xd000,
            bytes: 64,
            codeptr_ra: CodePtr(0x42),
            time: SimTime(time),
            payload,
        };
        // Two identical transfers → one live duplicate finding.
        for (id, t) in [(1u64, 0u64), (2, 20)] {
            tool.on_data_op(&op(Endpoint::Begin, id, t, None));
            tool.on_data_op(&op(Endpoint::End, id, t + 10, Some(payload.as_slice())));
        }

        let (mut remediator, policy) = LiveRemediator::new(handle);
        let advice = remediator.advise_enter(0, CodePtr(0x7), 0x1000, 64, MapType::To);
        assert_eq!(
            advice.persist,
            Some(AdviceCause::DuplicateTransfer),
            "the live duplicate must already steer this consult"
        );
        assert_eq!(policy.lock().rule_count(), 1);
    }

    /// Regression (tiny `--stream-cap`): an Algorithm-2 transfer
    /// force-retired by a frontier spill can pair with a reception "as
    /// the queues stand" — an *unconfirmed* round trip. Such a finding
    /// must never seed a `skip_from` rule, live or via `from_findings`.
    #[test]
    fn spilled_round_trips_never_seed_rules() {
        use crate::detect::testutil::EventFactory;
        use crate::detect::{EventView, StreamConfig, StreamingEngine};

        let mut f = EventFactory::new();
        // tx0 (unique hash, never returns) stalls the frontier head;
        // tx1's content comes back via a D2H (rx) behind the stall;
        // unique-hash filler then overflows the cap, force-retiring
        // tx0 (no trip) and tx1 — which pairs with rx while spilled.
        let mut ops = vec![
            f.h2d(0, 0, 0x1000, 111, 64),  // tx0: undecided head
            f.h2d(10, 0, 0x2000, 222, 64), // tx1: will spill-pair
            f.d2h(20, 0, 0x2000, 222, 64), // rx for tx1's content
        ];
        for i in 0..8 {
            ops.push(f.h2d(30 + i * 10, 0, 0x3000 + i * 0x100, 500 + i, 64));
        }
        let mut engine = StreamingEngine::new(StreamConfig {
            num_devices: None,
            max_frontier: Some(2),
        });
        for e in &ops {
            engine.push_data_op(e.clone());
            engine.advance_watermark(e.span.end);
        }
        let live = engine.take_findings();
        let spilled_trip = live.iter().find_map(|f| match f {
            StreamFinding::RoundTrip {
                spilled, host_addr, ..
            } => Some((*spilled, *host_addr)),
            _ => None,
        });
        assert_eq!(
            spilled_trip,
            Some((true, 0x2000)),
            "the force-retired pairing must be emitted tagged as spilled: {live:?}"
        );
        assert!(engine.buffer_stats().frontier_spilled > 0);

        // Live path: the policy ignores the spilled trip entirely.
        let mut p = RemediationPolicy::new();
        for finding in &live {
            p.observe(finding);
        }
        assert!(
            p.advise(0, 0x2000).skip_from.is_none(),
            "a spilled round trip must not downgrade the copy-back"
        );

        // Seeded path: the materialized findings carry the tag and
        // from_findings skips those trips too.
        let view = EventView::new(&ops, &[], 1);
        let findings = engine.finalize(&view);
        assert!(
            findings
                .round_trips
                .iter()
                .flat_map(|g| g.trips.iter())
                .any(|t| t.spilled),
            "materialized trips must carry the spill tag"
        );
        let mut seeded = RemediationPolicy::from_findings(&findings);
        assert!(
            seeded.advise(0, 0x2000).skip_from.is_none(),
            "from_findings must ignore spilled trips"
        );
    }
}
