//! Report rendering — the §A.6 human-readable tables plus JSON export.

use crate::attrib::DebugInfo;
use crate::detect::{Findings, IssueCounts};
use crate::predict::Prediction;
use odp_hash::fnv::FnvHashMap;
use odp_model::{CodePtr, DataOpEvent, SimDuration};
use odp_trace::{SpaceStats, TraceStats};
use serde::Serialize;
use std::fmt::Write as _;

/// One aggregated row of a category table: findings sharing a source
/// location.
#[derive(Clone, Debug, Serialize)]
pub struct ReportRow {
    /// Percentage of total execution time.
    pub time_pct: f64,
    /// Eliminable time at this site.
    pub time: SimDuration,
    /// Number of wasted operations at this site.
    pub count: usize,
    /// Wasted bytes at this site.
    pub bytes: u64,
    /// Resolved source location (or the raw code pointer).
    pub source: String,
}

/// A category section of the report.
#[derive(Clone, Debug, Serialize)]
pub struct ReportSection {
    /// Section title (§A.6 style).
    pub title: String,
    /// Rows, sorted by descending time.
    pub rows: Vec<ReportRow>,
}

/// The complete analysis report.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Program name (if known).
    pub program: String,
    /// Issue counts (Table 1 conventions).
    pub counts: IssueCounts,
    /// Detector output.
    pub findings: Findings,
    /// Optimization-potential estimate.
    pub prediction: Prediction,
    /// Aggregate trace statistics.
    pub stats: TraceStats,
    /// Tool space overhead (Figure 3).
    pub space: SpaceStats,
    /// Console lines accumulated by the tool (info + warnings).
    pub console: Vec<String>,
    /// Rendered category sections.
    pub sections: Vec<ReportSection>,
}

pub(crate) struct RowAggregator<'a> {
    dbg: Option<&'a DebugInfo>,
    total_ns: u64,
    by_site: FnvHashMap<u64, (usize, u64, u64)>, // codeptr → (count, ns, bytes)
    order: Vec<u64>,
}

impl<'a> RowAggregator<'a> {
    pub fn new(dbg: Option<&'a DebugInfo>, total: SimDuration) -> Self {
        RowAggregator {
            dbg,
            total_ns: total.as_nanos().max(1),
            by_site: FnvHashMap::default(),
            order: Vec::new(),
        }
    }

    pub fn add(&mut self, e: &DataOpEvent) {
        let entry = self.by_site.entry(e.codeptr.0).or_insert_with(|| {
            self.order.push(e.codeptr.0);
            (0, 0, 0)
        });
        entry.0 += 1;
        entry.1 += e.duration().as_nanos();
        entry.2 += e.bytes;
    }

    pub fn finish(self, title: &str) -> ReportSection {
        let mut rows: Vec<ReportRow> = self
            .order
            .iter()
            .map(|&cp| {
                let (count, ns, bytes) = self.by_site[&cp];
                let source = match self.dbg.and_then(|d| d.resolve(CodePtr(cp))) {
                    Some(loc) => loc.to_string(),
                    None => CodePtr(cp).to_string(),
                };
                ReportRow {
                    time_pct: 100.0 * ns as f64 / self.total_ns as f64,
                    time: SimDuration(ns),
                    count,
                    bytes,
                    source,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.time.cmp(&a.time).then(b.count.cmp(&a.count)));
        ReportSection {
            title: title.to_string(),
            rows,
        }
    }
}

/// Build the category sections from findings.
pub(crate) fn build_sections(
    findings: &Findings,
    dbg: Option<&DebugInfo>,
    total: SimDuration,
) -> Vec<ReportSection> {
    let mut sections = Vec::new();

    let mut agg = RowAggregator::new(dbg, total);
    for g in &findings.duplicates {
        for e in g.events.iter().skip(1) {
            agg.add(e);
        }
    }
    sections.push(agg.finish("OpenMP Duplicate Target Data Transfer Analysis"));

    let mut agg = RowAggregator::new(dbg, total);
    for g in &findings.round_trips {
        for t in &g.trips {
            agg.add(&t.rx);
        }
    }
    sections.push(agg.finish("OpenMP Round-Trip Target Data Transfer Analysis"));

    let mut agg = RowAggregator::new(dbg, total);
    for g in &findings.repeated_allocs {
        for p in g.pairs.iter().skip(1) {
            agg.add(&p.alloc);
        }
    }
    sections.push(agg.finish("OpenMP Repeated Target Memory Allocation Analysis"));

    let mut agg = RowAggregator::new(dbg, total);
    for ua in &findings.unused_allocs {
        agg.add(&ua.pair.alloc);
    }
    sections.push(agg.finish("OpenMP Unused Target Memory Allocation Analysis"));

    let mut agg = RowAggregator::new(dbg, total);
    for ut in &findings.unused_transfers {
        agg.add(&ut.event);
    }
    sections.push(agg.finish("OpenMP Unused Target Data Transfer Analysis"));

    sections
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

impl Report {
    /// Render the human-readable console report (§A.6 shape).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.console {
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Total time : {} ({} data ops, {} kernels)",
            self.stats.total_time, self.prediction.ops_eliminated, self.stats.kernels
        );

        for section in &self.sections {
            let _ = writeln!(out, "\n=== {} ===", section.title);
            if section.rows.is_empty() {
                let _ = writeln!(out, "  no issues detected");
                continue;
            }
            let _ = writeln!(
                out,
                "  {:>8}  {:>12}  {:>8}  {:>12}  source",
                "time(%)", "time", "count", "bytes"
            );
            for row in &section.rows {
                let _ = writeln!(
                    out,
                    "  {:>7.2}%  {:>12}  {:>8}  {:>12}  {}",
                    row.time_pct,
                    row.time.to_string(),
                    row.count,
                    human_bytes(row.bytes),
                    row.source
                );
            }
        }

        let c = self.counts;
        let _ = writeln!(out, "\n=== Summary ===");
        let _ = writeln!(
            out,
            "  issues: DD={} RT={} RA={} UA={} UT={}",
            c.dd, c.rt, c.ra, c.ua, c.ut
        );
        let _ = writeln!(
            out,
            "  predicted time savings : {} ({} ops, {})",
            self.prediction.time_saved,
            self.prediction.ops_eliminated,
            human_bytes(self.prediction.bytes_eliminated)
        );
        let _ = writeln!(
            out,
            "  predicted speedup      : {:.2}x ({} -> {})",
            self.prediction.predicted_speedup,
            self.prediction.total_time,
            self.prediction.predicted_time
        );
        let _ = writeln!(
            out,
            "  tool space overhead    : {} peak ({} data-op records, {} target records)",
            human_bytes(self.space.peak_alloc_bytes as u64),
            self.space.data_op_records,
            self.space.target_records
        );
        out
    }

    /// Serialize the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(12), "12 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(3 << 20), "3.00 MiB");
        assert_eq!(human_bytes(5 << 30), "5.00 GiB");
    }
}
