//! Report rendering — the §A.6 human-readable tables plus JSON export,
//! and the incremental sink for streaming-mode findings.

use crate::attrib::DebugInfo;
use crate::detect::{Findings, IssueCounts, StreamFinding};
use crate::predict::Prediction;
use odp_hash::fnv::FnvHashMap;
use odp_model::{CodePtr, DataOpEvent, SimDuration};
use odp_trace::{SpaceStats, TraceStats};
use serde::Serialize;
use std::fmt::Write as _;

/// One aggregated row of a category table: findings sharing a source
/// location.
#[derive(Clone, Debug, Serialize)]
pub struct ReportRow {
    /// Percentage of total execution time.
    pub time_pct: f64,
    /// Eliminable time at this site.
    pub time: SimDuration,
    /// Number of wasted operations at this site.
    pub count: usize,
    /// Wasted bytes at this site.
    pub bytes: u64,
    /// Resolved source location (or the raw code pointer).
    pub source: String,
}

/// A category section of the report.
#[derive(Clone, Debug, Serialize)]
pub struct ReportSection {
    /// Section title (§A.6 style).
    pub title: String,
    /// Rows, sorted by descending time.
    pub rows: Vec<ReportRow>,
}

/// The complete analysis report.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Program name (if known).
    pub program: String,
    /// Issue counts (Table 1 conventions).
    pub counts: IssueCounts,
    /// Detector output.
    pub findings: Findings,
    /// Optimization-potential estimate.
    pub prediction: Prediction,
    /// Aggregate trace statistics.
    pub stats: TraceStats,
    /// Tool space overhead (Figure 3).
    pub space: SpaceStats,
    /// Console lines accumulated by the tool (info + warnings).
    pub console: Vec<String>,
    /// Rendered category sections.
    pub sections: Vec<ReportSection>,
}

pub(crate) struct RowAggregator<'a> {
    dbg: Option<&'a DebugInfo>,
    total_ns: u64,
    by_site: FnvHashMap<u64, (usize, u64, u64)>, // codeptr → (count, ns, bytes)
    order: Vec<u64>,
}

impl<'a> RowAggregator<'a> {
    pub fn new(dbg: Option<&'a DebugInfo>, total: SimDuration) -> Self {
        RowAggregator {
            dbg,
            total_ns: total.as_nanos().max(1),
            by_site: FnvHashMap::default(),
            order: Vec::new(),
        }
    }

    pub fn add(&mut self, e: &DataOpEvent) {
        let entry = self.by_site.entry(e.codeptr.0).or_insert_with(|| {
            self.order.push(e.codeptr.0);
            (0, 0, 0)
        });
        entry.0 += 1;
        entry.1 += e.duration().as_nanos();
        entry.2 += e.bytes;
    }

    pub fn finish(self, title: &str) -> ReportSection {
        let mut rows: Vec<ReportRow> = self
            .order
            .iter()
            .map(|&cp| {
                let (count, ns, bytes) = self.by_site[&cp];
                let source = match self.dbg.and_then(|d| d.resolve(CodePtr(cp))) {
                    Some(loc) => loc.to_string(),
                    None => CodePtr(cp).to_string(),
                };
                ReportRow {
                    time_pct: 100.0 * ns as f64 / self.total_ns as f64,
                    time: SimDuration(ns),
                    count,
                    bytes,
                    source,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.time.cmp(&a.time).then(b.count.cmp(&a.count)));
        ReportSection {
            title: title.to_string(),
            rows,
        }
    }
}

/// Build the category sections from findings.
pub(crate) fn build_sections(
    findings: &Findings,
    dbg: Option<&DebugInfo>,
    total: SimDuration,
) -> Vec<ReportSection> {
    let mut sections = Vec::new();

    let mut agg = RowAggregator::new(dbg, total);
    for g in &findings.duplicates {
        for e in g.events.iter().skip(1) {
            agg.add(e);
        }
    }
    sections.push(agg.finish("OpenMP Duplicate Target Data Transfer Analysis"));

    let mut agg = RowAggregator::new(dbg, total);
    for g in &findings.round_trips {
        for t in &g.trips {
            agg.add(&t.rx);
        }
    }
    sections.push(agg.finish("OpenMP Round-Trip Target Data Transfer Analysis"));

    let mut agg = RowAggregator::new(dbg, total);
    for g in &findings.repeated_allocs {
        for p in g.pairs.iter().skip(1) {
            agg.add(&p.alloc);
        }
    }
    sections.push(agg.finish("OpenMP Repeated Target Memory Allocation Analysis"));

    let mut agg = RowAggregator::new(dbg, total);
    for ua in &findings.unused_allocs {
        agg.add(&ua.pair.alloc);
    }
    sections.push(agg.finish("OpenMP Unused Target Memory Allocation Analysis"));

    let mut agg = RowAggregator::new(dbg, total);
    for ut in &findings.unused_transfers {
        agg.add(&ut.event);
    }
    sections.push(agg.finish("OpenMP Unused Target Data Transfer Analysis"));

    sections
}

/// Consumer of findings emitted while the program is still running
/// (streaming mode). Implementations can render console lines, steer
/// live mapping decisions, or forward findings over IPC — the engine
/// only guarantees each finding is final (or provisional-reconciled at
/// finalize, for Algorithm 2's lookahead) when delivered.
pub trait FindingsSink {
    /// One finding became final.
    fn on_finding(&mut self, finding: &StreamFinding);
}

/// Render one live finding as a console line (the streaming counterpart
/// of the §A.6 tables; events are identified by log sequence number).
pub fn render_stream_finding(f: &StreamFinding) -> String {
    match f {
        StreamFinding::DuplicateTransfer {
            hash,
            dest_device,
            event,
            first,
            occurrence,
            ..
        } => format!(
            "stream: duplicate transfer (occurrence {occurrence}) of content {hash} \
             to {dest_device} — event #{event} repeats #{first}"
        ),
        StreamFinding::RoundTrip {
            hash,
            src_device,
            dest_device,
            tx,
            rx,
            ..
        } => format!(
            "stream: round trip of content {hash} from {src_device} via {dest_device} \
             — outbound #{tx}, returned by #{rx}"
        ),
        StreamFinding::RepeatedAlloc {
            host_addr,
            device,
            bytes,
            alloc,
            occurrence,
            ..
        } => format!(
            "stream: repeated allocation (occurrence {occurrence}) of 0x{host_addr:x} \
             ({bytes} B) on {device} — event #{alloc}"
        ),
        StreamFinding::UnusedAlloc {
            device,
            alloc,
            delete,
            ..
        } => match delete {
            Some(delete) => format!(
                "stream: unused allocation on {device} — event #{alloc} (freed by #{delete})"
            ),
            None => format!("stream: unused allocation on {device} — event #{alloc} (never freed)"),
        },
        StreamFinding::UnusedTransfer {
            device,
            event,
            reason,
            ..
        } => {
            let why = match reason {
                crate::detect::UnusedTransferReason::AfterLastKernel => "after the last kernel",
                crate::detect::UnusedTransferReason::OverwrittenBeforeUse => {
                    "overwritten before any kernel ran"
                }
            };
            format!("stream: unused transfer to {device} — event #{event} ({why})")
        }
    }
}

/// A [`FindingsSink`] that renders findings into console lines.
#[derive(Debug, Default)]
pub struct ConsoleStreamSink {
    /// Rendered lines, delivery order.
    pub lines: Vec<String>,
}

impl FindingsSink for ConsoleStreamSink {
    fn on_finding(&mut self, finding: &StreamFinding) {
        self.lines.push(render_stream_finding(finding));
    }
}

/// Render a live issue-count snapshot — the incremental counterpart of
/// the §A.6 summary table, emitted periodically while the program runs
/// (`--stream-interval`) instead of once after it exits.
pub fn render_counts_snapshot(c: &IssueCounts) -> String {
    format!(
        "stream: snapshot DD={} RT={} RA={} UA={} UT={} (total {})",
        c.dd,
        c.rt,
        c.ra,
        c.ua,
        c.ut,
        c.total()
    )
}

/// A [`FindingsSink`] that renders each finding *and* interleaves a
/// [`render_counts_snapshot`] line after every `every` findings, so a
/// console consumer sees the §A.6 summary grow during the run. The
/// counts are accumulated from the delivered findings themselves and
/// therefore always agree with the engine's `live_counts()` at the
/// delivery point.
#[derive(Debug)]
pub struct SnapshotStreamSink {
    /// Emit a snapshot line after this many findings (0 = never).
    every: usize,
    /// Findings since the last snapshot.
    since: usize,
    /// Running counts over everything delivered.
    counts: IssueCounts,
    /// Rendered lines (findings + snapshots), delivery order.
    pub lines: Vec<String>,
}

impl SnapshotStreamSink {
    /// A sink snapshotting after every `every` findings.
    pub fn new(every: usize) -> SnapshotStreamSink {
        SnapshotStreamSink {
            every,
            since: 0,
            counts: IssueCounts::default(),
            lines: Vec::new(),
        }
    }

    /// Counts accumulated so far.
    pub fn counts(&self) -> IssueCounts {
        self.counts
    }

    /// Append a snapshot line now (the CLI's periodic timer calls this
    /// between finding batches).
    pub fn snapshot(&mut self) {
        self.lines.push(render_counts_snapshot(&self.counts));
        self.since = 0;
    }
}

impl FindingsSink for SnapshotStreamSink {
    fn on_finding(&mut self, finding: &StreamFinding) {
        match finding {
            StreamFinding::DuplicateTransfer { .. } => self.counts.dd += 1,
            StreamFinding::RoundTrip { .. } => self.counts.rt += 1,
            StreamFinding::RepeatedAlloc { .. } => self.counts.ra += 1,
            StreamFinding::UnusedAlloc { .. } => self.counts.ua += 1,
            StreamFinding::UnusedTransfer { .. } => self.counts.ut += 1,
        }
        self.lines.push(render_stream_finding(finding));
        self.since += 1;
        if self.every > 0 && self.since >= self.every {
            self.snapshot();
        }
    }
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

impl Report {
    /// Render the human-readable console report (§A.6 shape).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.console {
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Total time : {} ({} data ops, {} kernels)",
            self.stats.total_time, self.prediction.ops_eliminated, self.stats.kernels
        );

        for section in &self.sections {
            let _ = writeln!(out, "\n=== {} ===", section.title);
            if section.rows.is_empty() {
                let _ = writeln!(out, "  no issues detected");
                continue;
            }
            let _ = writeln!(
                out,
                "  {:>8}  {:>12}  {:>8}  {:>12}  source",
                "time(%)", "time", "count", "bytes"
            );
            for row in &section.rows {
                let _ = writeln!(
                    out,
                    "  {:>7.2}%  {:>12}  {:>8}  {:>12}  {}",
                    row.time_pct,
                    row.time.to_string(),
                    row.count,
                    human_bytes(row.bytes),
                    row.source
                );
            }
        }

        let c = self.counts;
        let _ = writeln!(out, "\n=== Summary ===");
        let _ = writeln!(
            out,
            "  issues: DD={} RT={} RA={} UA={} UT={}",
            c.dd, c.rt, c.ra, c.ua, c.ut
        );
        let _ = writeln!(
            out,
            "  predicted time savings : {} ({} ops, {})",
            self.prediction.time_saved,
            self.prediction.ops_eliminated,
            human_bytes(self.prediction.bytes_eliminated)
        );
        let _ = writeln!(
            out,
            "  predicted speedup      : {:.2}x ({} -> {})",
            self.prediction.predicted_speedup,
            self.prediction.total_time,
            self.prediction.predicted_time
        );
        let _ = writeln!(
            out,
            "  tool space overhead    : {} peak ({} data-op records, {} target records)",
            human_bytes(self.space.peak_alloc_bytes as u64),
            self.space.data_op_records,
            self.space.target_records
        );
        out
    }

    /// Serialize the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"error\":\"report serialization: {e}\"}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(12), "12 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(3 << 20), "3.00 MiB");
        assert_eq!(human_bytes(5 << 30), "5.00 GiB");
    }

    #[test]
    fn console_sink_renders_every_category() {
        use crate::detect::UnusedTransferReason;
        use odp_model::{DeviceId, HashVal};
        let mut sink = ConsoleStreamSink::default();
        let findings = [
            StreamFinding::DuplicateTransfer {
                hash: HashVal(0xab),
                src_device: DeviceId::HOST,
                dest_device: DeviceId::target(0),
                host_addr: 0x1000,
                codeptr: CodePtr(0x1),
                event: 5,
                first: 2,
                occurrence: 2,
                confidence: crate::detect::Confidence::Confirmed,
            },
            StreamFinding::RoundTrip {
                hash: HashVal(0xcd),
                src_device: DeviceId::HOST,
                dest_device: DeviceId::target(1),
                host_addr: 0x1000,
                codeptr: CodePtr(0x2),
                tx: 3,
                rx: 9,
                spilled: false,
                confidence: crate::detect::Confidence::Confirmed,
            },
            StreamFinding::RepeatedAlloc {
                host_addr: 0x1000,
                device: DeviceId::target(0),
                bytes: 4096,
                codeptr: CodePtr(0x3),
                alloc: 7,
                occurrence: 3,
                confidence: crate::detect::Confidence::Confirmed,
            },
            StreamFinding::UnusedAlloc {
                device: DeviceId::target(0),
                host_addr: 0x2000,
                codeptr: CodePtr(0x4),
                alloc: 11,
                delete: None,
                confidence: crate::detect::Confidence::Confirmed,
            },
            StreamFinding::UnusedTransfer {
                device: DeviceId::target(0),
                host_addr: 0x3000,
                codeptr: CodePtr(0x5),
                event: 13,
                reason: UnusedTransferReason::AfterLastKernel,
                confidence: crate::detect::Confidence::Confirmed,
            },
        ];
        for f in &findings {
            sink.on_finding(f);
        }
        assert_eq!(sink.lines.len(), findings.len());
        assert!(sink.lines[0].contains("duplicate transfer"));
        assert!(sink.lines[1].contains("round trip"));
        assert!(sink.lines[2].contains("repeated allocation"));
        assert!(sink.lines[3].contains("never freed"));
        assert!(sink.lines[4].contains("after the last kernel"));
        assert!(sink.lines.iter().all(|l| l.starts_with("stream: ")));
    }

    #[test]
    fn snapshot_sink_interleaves_summary_lines() {
        use odp_model::{DeviceId, HashVal};
        let mut sink = SnapshotStreamSink::new(2);
        let dup = |event| StreamFinding::DuplicateTransfer {
            hash: HashVal(0xab),
            src_device: DeviceId::HOST,
            dest_device: DeviceId::target(0),
            host_addr: 0x1000,
            codeptr: CodePtr(0x1),
            event,
            first: 0,
            occurrence: 2,
            confidence: crate::detect::Confidence::Confirmed,
        };
        for i in 1..=5 {
            sink.on_finding(&dup(i));
        }
        // 5 findings + snapshots after #2 and #4.
        assert_eq!(sink.lines.len(), 7);
        assert!(sink.lines[2].contains("snapshot DD=2"));
        assert!(sink.lines[5].contains("snapshot DD=4"));
        assert_eq!(sink.counts().dd, 5);
        sink.snapshot();
        assert!(sink
            .lines
            .last()
            .unwrap()
            .contains("snapshot DD=5 RT=0 RA=0 UA=0 UT=0 (total 5)"));
    }
}
