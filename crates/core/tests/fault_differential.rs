//! Differential fault-injection suite: the detection pipeline must
//! survive lossy, hostile, and stalled trace streams without panicking,
//! and its degradation must be *accounted*, not silent.
//!
//! Every case runs one synthetic OpenMP program twice through the
//! simulated runtime — once clean, once under a seeded
//! [`odp_sim::FaultPlan`] — and checks three oracles:
//!
//! 1. **No panic**, under any fault profile or adversarial rate mix.
//! 2. **Reconciliation**: what the plan injected equals what the
//!    pipeline reports as lost + quarantined. Dropped `End` edges (and
//!    stall drops) are the only events missing from the trace; orphaned
//!    `End`s and truncated payloads are quarantined into
//!    [`odp_model::TraceHealth`] with nothing double- or un-counted.
//! 3. **Byte-identity on the survivors**: streaming finalize, the fused
//!    sweep, and the five standalone reference passes produce identical
//!    JSON over the faulty trace — graceful degradation must not fork
//!    the three detection paths.

use odp_model::{CodePtr, MapType, TraceHealth};
use odp_sim::{
    map, FaultConfig, FaultCounts, FaultPlan, FaultProfile, Kernel, KernelCost, Runtime,
    RuntimeConfig,
};
use ompdataperf::detect::{EventView, Findings};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use proptest::prelude::*;

/// One step of a synthetic host program. Variable indices are taken
/// modulo the program's variable count, so any generated index is valid.
#[derive(Clone, Debug)]
enum Step {
    /// `#pragma omp target map(...)`: map one variable, run a kernel.
    Region {
        var: usize,
        /// `map(to:)` instead of the `tofrom` default.
        to_only: bool,
        /// The kernel writes the variable (else it only reads).
        mutate: bool,
    },
    /// An unstructured `enter data` / optional `update` / `exit data`
    /// lifetime for one variable.
    Mapped {
        var: usize,
        update_to: bool,
        update_from: bool,
    },
}

#[derive(Clone, Debug)]
struct Program {
    /// Host variable sizes in bytes (each >= 2 so a truncated payload is
    /// always strictly shorter than the claimed length).
    var_sizes: Vec<usize>,
    steps: Vec<Step>,
}

impl Program {
    /// A fixed program exercising every step kind and both classic
    /// anti-patterns (re-sent unchanged data, per-step remapping).
    fn reference() -> Program {
        let mut steps = Vec::new();
        for round in 0..6 {
            steps.push(Step::Region {
                var: 0,
                to_only: true,
                mutate: false,
            });
            steps.push(Step::Region {
                var: 1,
                to_only: false,
                mutate: round % 2 == 0,
            });
            steps.push(Step::Mapped {
                var: 2,
                update_to: round % 3 == 0,
                update_from: round % 2 == 1,
            });
        }
        Program {
            var_sizes: vec![48, 32, 24],
            steps,
        }
    }
}

/// Everything one monitored run produced.
struct RunOutcome {
    trace: odp_trace::TraceLog,
    health: TraceHealth,
    counts: FaultCounts,
    /// Streaming-engine findings, finalized against the trace.
    streamed: Findings,
    degraded: bool,
}

/// Run `program` under `plan` with the full collection pipeline
/// attached (sharded collector + streaming engine), mirroring the CLI's
/// wiring. Must never panic, whatever the plan injects.
fn run_program(program: &Program, plan: FaultPlan) -> RunOutcome {
    let cfg = RuntimeConfig {
        faults: plan.clone(),
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        stream: true,
        quiet: true,
        ..Default::default()
    });
    rt.attach_tool(Box::new(tool));

    let vars: Vec<_> = program
        .var_sizes
        .iter()
        .enumerate()
        .map(|(i, &bytes)| rt.host_alloc(&format!("v{i}"), bytes))
        .collect();

    for (i, step) in program.steps.iter().enumerate() {
        let cp = CodePtr(0x1000 + 0x10 * i as u64);
        match *step {
            Step::Region {
                var,
                to_only,
                mutate,
            } => {
                let v = vars[var % vars.len()];
                let map_type = if to_only {
                    MapType::To
                } else {
                    MapType::ToFrom
                };
                let kernel = if mutate {
                    Kernel::new("k", KernelCost::fixed(50))
                        .reads(&[v])
                        .writes(&[v])
                } else {
                    Kernel::new("k", KernelCost::fixed(50)).reads(&[v])
                };
                rt.target(0, cp, &[map(map_type, v)], kernel);
            }
            Step::Mapped {
                var,
                update_to,
                update_from,
            } => {
                let v = vars[var % vars.len()];
                rt.target_enter_data(0, cp, &[map(MapType::To, v)]);
                if update_to {
                    rt.target_update_to(0, cp, &[v]);
                }
                if update_from {
                    rt.target_update_from(0, cp, &[v]);
                }
                rt.target_exit_data(0, cp, &[map(MapType::From, v)]);
            }
        }
    }
    rt.finish();

    let trace = handle.take_trace();
    let mut engine = handle.take_stream_engine().expect("streaming was enabled");
    let streamed = {
        let view = EventView::from_log(&trace);
        engine.finalize(&view)
    };
    // CLI health order: shard-side counters (the engine left the handle
    // above), then the engine's own, then merge-time duplicate ids.
    let mut health = handle.trace_health();
    health.merge(&engine.health());
    health.duplicate_ids += trace.duplicate_id_count();

    RunOutcome {
        trace,
        health,
        counts: plan.counts(),
        streamed,
        degraded: engine.is_degraded(),
    }
}

/// The shared oracle: run `program` clean and faulty, then check
/// reconciliation and three-way byte-identity on the faulty trace.
fn check_differential(program: &Program, plan: FaultPlan) {
    let clean = run_program(program, FaultPlan::none());
    let faulty = run_program(program, plan);
    let counts = faulty.counts;

    // Oracle 2a — the clean run itself must be pristine.
    assert!(
        clean.health.is_clean(),
        "clean run was dirty: {:?}",
        clean.health
    );
    assert_eq!(clean.counts, FaultCounts::default());

    // Oracle 2b — injected == lost + quarantined, class by class.
    //
    // Faults touch only the *callback layer*: the op schedule is
    // identical between the runs except under OOM, where a failed
    // allocation legitimately skips the whole mapping (and everything
    // downstream of it), so record-count arithmetic only holds without
    // OOM failures.
    if counts.oom_failures == 0 {
        // A dropped Begin also loses its record: the surviving End has
        // no open span to close, so the collector quarantines it as an
        // orphan instead of recording a half-made event.
        assert_eq!(
            faulty.trace.data_op_count() as u64 + counts.events_lost() + counts.dropped_begin,
            clean.trace.data_op_count() as u64,
            "every missing record must be a dropped Begin, dropped End, \
             or stalled End edge (counts: {counts:?})"
        );
        assert_eq!(
            faulty.trace.target_count(),
            clean.trace.target_count(),
            "target/kernel callbacks are never faulted"
        );
    }
    assert_eq!(
        faulty.health.orphaned,
        counts.orphans_injected(),
        "every dropped Begin and duplicated End must surface as exactly \
         one quarantined orphan (counts: {counts:?})"
    );
    assert_eq!(
        faulty.health.truncated, counts.truncated,
        "every truncated payload must be quarantined from hashing"
    );
    // This harness sets no stall timeout and runs one shard: nothing may
    // be force-released, arrive late, or go missing at finalize, and
    // event ids stay unique.
    assert_eq!(faulty.health.forced_releases, 0);
    assert_eq!(faulty.health.late, 0);
    assert_eq!(faulty.health.missing_at_finalize, 0);
    assert_eq!(faulty.health.duplicate_ids, 0);
    assert!(
        !faulty.degraded,
        "without forced releases the stream must not be degraded"
    );

    // Oracle 3 — streaming == fused == separate on the surviving events.
    let view = EventView::from_log(&faulty.trace);
    let fused = Findings::detect_fused(&view);
    let separate = Findings::detect_separate(
        faulty.trace.data_op_events_sorted(),
        faulty.trace.kernel_events_sorted(),
        view.num_devices,
    );
    let streamed_json = serde_json::to_string_pretty(&faulty.streamed).expect("serialize");
    let fused_json = serde_json::to_string_pretty(&fused).expect("serialize");
    let separate_json = serde_json::to_string_pretty(&separate).expect("serialize");
    assert_eq!(
        streamed_json, fused_json,
        "streaming diverged from the fused sweep on a faulty trace"
    );
    assert_eq!(
        fused_json, separate_json,
        "fused sweep diverged from the reference passes on a faulty trace"
    );
}

// ---------------------------------------------------------------------
// Pinned-seed profile coverage
// ---------------------------------------------------------------------

#[test]
fn named_profiles_reconcile_across_seeds() {
    let program = Program::reference();
    for profile in [
        FaultProfile::Lossy,
        FaultProfile::Hostile,
        FaultProfile::Stalled,
        FaultProfile::Oom,
    ] {
        for seed in [0, 1, 7, 42, 0xDEAD_BEEF] {
            check_differential(&program, FaultPlan::from_profile(profile, seed));
        }
    }
}

#[test]
fn lossy_profile_actually_injects_on_the_reference_program() {
    // Guard against the whole suite passing vacuously: the reference
    // program is long enough that the lossy rates must fire.
    let outcome = run_program(
        &Program::reference(),
        FaultPlan::from_profile(FaultProfile::Lossy, 42),
    );
    assert!(outcome.counts.total() > 0, "lossy plan injected nothing");
    assert!(
        !outcome.health.is_clean(),
        "lossy faults must surface in TraceHealth, got {:?}",
        outcome.health
    );
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    let program = Program::reference();
    let a = run_program(&program, FaultPlan::from_profile(FaultProfile::Hostile, 9));
    let b = run_program(&program, FaultPlan::from_profile(FaultProfile::Hostile, 9));
    assert_eq!(a.counts, b.counts, "same seed must inject the same faults");
    assert_eq!(
        a.trace.to_json(),
        b.trace.to_json(),
        "same seed must produce a byte-identical trace"
    );
    let c = run_program(&program, FaultPlan::from_profile(FaultProfile::Hostile, 10));
    assert_ne!(
        a.trace.to_json(),
        c.trace.to_json(),
        "a different seed should perturb the trace"
    );
}

#[test]
fn corrupt_device_flood_stays_bounded() {
    // Every single data op stamped with device base + 0x4000_0000: the
    // analyzer must quarantine them as out-of-range — not size
    // per-device tables from a corrupt id (billions of entries).
    let cfg = FaultConfig {
        corrupt_device: u16::MAX,
        ..FaultConfig::default()
    };
    let outcome = run_program(&Program::reference(), FaultPlan::new(3, cfg));
    assert!(outcome.counts.corrupted_device > 0);
    let view = EventView::from_log(&outcome.trace);
    assert!(
        view.num_devices <= ompdataperf::detect::MAX_PLAUSIBLE_DEVICES,
        "inferred device count must ignore implausible ids, got {}",
        view.num_devices
    );
    assert!(
        view.out_of_range().total() > 0,
        "corrupt-device events must be counted out of range"
    );
    // A fresh plan (fault totals are shared per plan instance): the full
    // differential oracle must hold under the flood too.
    check_differential(&Program::reference(), FaultPlan::new(3, cfg));
}

// ---------------------------------------------------------------------
// Adversarial generation
// ---------------------------------------------------------------------

fn arb_step() -> impl Strategy<Value = Step> {
    (0u8..2, 0usize..4, 0u8..2, 0u8..2).prop_map(|(kind, var, flag_a, flag_b)| {
        if kind == 0 {
            Step::Region {
                var,
                to_only: flag_a == 1,
                mutate: flag_b == 1,
            }
        } else {
            Step::Mapped {
                var,
                update_to: flag_a == 1,
                update_from: flag_b == 1,
            }
        }
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        collection::vec(2usize..64, 1..4),
        collection::vec(arb_step(), 1..14),
    )
        .prop_map(|(var_sizes, steps)| Program { var_sizes, steps })
}

fn arb_fault_config() -> impl Strategy<Value = FaultConfig> {
    (
        (0u16..6000, 0u16..6000, 0u16..6000, 0u16..6000, 0u16..6000),
        (0u16..3000, 0u16..4000),
        (0u8..2, 1u64..40),
        (0u8..4, 1u64..8),
    )
        .prop_map(|(rates, devices, stall, oom)| {
            let (drop_begin, drop_end, duplicate_end, truncate_payload, corrupt_payload) = rates;
            let (corrupt_device, transfer_fail) = devices;
            FaultConfig {
                drop_begin,
                drop_end,
                duplicate_end,
                truncate_payload,
                corrupt_payload,
                corrupt_device,
                transfer_fail,
                stall_after_ops: (stall.0 == 1).then_some(stall.1),
                stall_shard: 0,
                // OOM in a quarter of the cases: it relaxes the strict
                // record-count oracle, so keep most cases on the full one.
                oom_from_alloc: (oom.0 == 0).then_some(oom.1),
            }
        })
}

proptest! {
    // Each case runs two full monitored programs; keep the count modest
    // so the suite stays CI-sized. The vendored proptest stand-in seeds
    // its RNG from the test name, so every run draws the same cases.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adversarial_streams_never_panic_and_always_reconcile(
        program in arb_program(),
        cfg in arb_fault_config(),
        seed in 0u64..u64::MAX,
    ) {
        check_differential(&program, FaultPlan::new(seed, cfg));
    }
}
