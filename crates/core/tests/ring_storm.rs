//! SPSC-ingest-ring storm suite (satellite of the columnar/ring PR).
//!
//! The sharded collector hands events from callback threads to the
//! streaming drain through fixed-capacity lock-free rings with a
//! mutex-protected spill for overflow. These storms force the shapes
//! the unit tests can't: index wraparound under sustained load,
//! full-ring spilling at the capacity boundary while drains race the
//! producers, publish batching under contention, and shards finalizing
//! while others still produce. The oracle everywhere is the repo's
//! core invariant — streaming finalize byte-identical to post-mortem
//! detection — plus "no event lost" trace counts.
//!
//! CI runs this suite twice: free-running, and with
//! `RUST_TEST_THREADS=1` so every test's *internal* threads still race
//! while the harness adds no extra noise.

use odp_model::{CodePtr, DeviceId, SimTime};
use odp_ompt::{CompilerProfile, DataOpCallback, DataOpType, Endpoint, SubmitCallback, Tool};
use ompdataperf::detect::{EventView, Findings};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig, ToolHandle};
use std::sync::{Arc, Barrier};

fn data_op<'a>(
    endpoint: Endpoint,
    host_op_id: u64,
    time: u64,
    payload: Option<&'a [u8]>,
) -> DataOpCallback<'a> {
    DataOpCallback {
        endpoint,
        target_id: 1,
        host_op_id,
        optype: DataOpType::TransferToDevice,
        src_device: DeviceId::HOST,
        src_addr: 0x1000 + (host_op_id % 5) * 0x100,
        dest_device: DeviceId::target(0),
        dest_addr: 0xd000,
        bytes: payload.map(|p| p.len() as u64).unwrap_or(64),
        codeptr_ra: CodePtr(0x42),
        time: SimTime(time),
        payload,
    }
}

fn submit(endpoint: Endpoint, target_id: u64, time: u64) -> SubmitCallback {
    SubmitCallback {
        endpoint,
        target_id,
        device: DeviceId::target(0),
        requested_num_teams: 1,
        codeptr_ra: CodePtr(0x77),
        time: SimTime(time),
    }
}

/// Deterministic per-thread storm, seeded by `(thread, seed)`: transfer
/// pairs with an overlapping op every 3rd iteration, a kernel every 8th,
/// payload content from a small pool so cross-thread duplicates exist.
/// Times start at `base` and only move forward — a shard's clock must
/// never run backwards past what it already published.
fn storm(tool: &mut OmpDataPerfTool, thread: u64, seed: u64, ops: u64, base: u64) {
    let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 64]).collect();
    let mut t = base + seed % 17;
    for i in 0..ops {
        let id = (seed << 24) + thread * 1_000_000 + i;
        tool.on_data_op(&data_op(Endpoint::Begin, id, t, None));
        if i % 3 == 0 {
            tool.on_data_op(&data_op(Endpoint::Begin, id + 500_000, t + 2, None));
            tool.on_data_op(&data_op(
                Endpoint::End,
                id + 500_000,
                t + 4,
                Some(&payloads[((i + seed + 1) % 5) as usize]),
            ));
        }
        tool.on_data_op(&data_op(
            Endpoint::End,
            id,
            t + 10,
            Some(&payloads[((i + seed) % 5) as usize]),
        ));
        if i % 8 == 0 {
            tool.on_submit(&submit(Endpoint::Begin, id, t + 12));
            tool.on_submit(&submit(Endpoint::End, id, t + 20));
        }
        t += 25 + (i % 4);
    }
}

fn run_storm(cfg: ToolConfig, threads: u64, seed: u64, ops: u64) -> ToolHandle {
    let (tool0, handle) = OmpDataPerfTool::new(cfg);
    let mut tools = vec![tool0];
    for _ in 1..threads {
        tools.push(handle.fork_tool());
    }
    let caps = CompilerProfile::LlvmClang.capabilities();
    std::thread::scope(|s| {
        let joins: Vec<_> = tools
            .into_iter()
            .enumerate()
            .map(|(i, mut tool)| {
                let caps = caps.clone();
                s.spawn(move || {
                    tool.initialize(&caps);
                    storm(&mut tool, i as u64, seed, ops, 0);
                    tool.finalize(1_000_000);
                })
            })
            .collect();
        for j in joins {
            j.join().expect("storm thread panicked");
        }
    });
    handle
}

fn assert_oracle(handle: &ToolHandle, label: &str) {
    let trace = handle.take_trace();
    let mut engine = handle.take_stream_engine().expect("streaming enabled");
    let view = EventView::from_log(&trace);
    let streamed = engine.finalize(&view);
    let postmortem = Findings::detect_fused(&view);
    assert_eq!(
        serde_json::to_string_pretty(&streamed).unwrap(),
        serde_json::to_string_pretty(&postmortem).unwrap(),
        "streaming diverged from post-mortem ({label})"
    );
    assert!(
        postmortem.counts().dd > 0,
        "the storm is built to contain duplicates ({label})"
    );
}

/// Tiny rings + varied publish cadences: sustained storms wrap the ring
/// indices thousands of times, and engine-lock contention between
/// drains forces the full-ring spill path. Whatever mix of ring and
/// spill each event took, the detected findings must not change.
#[test]
fn tiny_rings_wraparound_and_spill_keep_findings_byte_identical() {
    for (seed, (cap, every)) in [(1usize, 1u32), (2, 7), (4, 32), (1, 64)]
        .into_iter()
        .enumerate()
    {
        let cfg = ToolConfig {
            stream: true,
            ring_capacity: Some(cap),
            publish_every: Some(every),
            ..Default::default()
        };
        let handle = run_storm(cfg, 4, seed as u64, 600);
        // Spills are scheduling-dependent (they need drain contention),
        // so the count is informational; correctness must hold at any
        // value.
        let _spilled = handle.spilled_events();
        assert_oracle(&handle, &format!("cap={cap} every={every}"));
    }
}

/// A live observer hammers the findings stream while tiny rings race at
/// the capacity boundary. Everything drained live plus the final
/// counts must account for every finding exactly once.
#[test]
fn capacity_boundary_racing_with_live_observer() {
    let cfg = ToolConfig {
        stream: true,
        ring_capacity: Some(1),
        publish_every: Some(5),
        ..Default::default()
    };
    let (tool0, handle) = OmpDataPerfTool::new(cfg);
    let mut tools = vec![tool0];
    for _ in 1..4 {
        tools.push(handle.fork_tool());
    }
    let caps = CompilerProfile::LlvmClang.capabilities();
    let drained = std::thread::scope(|s| {
        let joins: Vec<_> = tools
            .into_iter()
            .enumerate()
            .map(|(i, mut tool)| {
                let caps = caps.clone();
                s.spawn(move || {
                    tool.initialize(&caps);
                    storm(&mut tool, i as u64, 3, 400, 0);
                    tool.finalize(1_000_000);
                })
            })
            .collect();
        let mut live = Vec::new();
        while joins.iter().any(|j| !j.is_finished()) {
            live.extend(handle.take_stream_findings());
            std::thread::yield_now();
        }
        for j in joins {
            j.join().expect("storm thread panicked");
        }
        live.extend(handle.take_stream_findings());
        live
    });
    assert!(!drained.is_empty(), "findings must flow during the run");
    let counts = handle.stream_counts().expect("streaming on");
    assert_eq!(counts.total(), drained.len(), "no finding lost or doubled");
    assert_oracle(&handle, "cap=1 live observer");
}

/// Half the shards finalize (retiring their watermark slots and
/// clearing their batchers) while the other half keep producing into
/// their rings. Late producers' events must still merge and detect
/// exactly.
#[test]
fn finalize_while_producing_keeps_the_oracle() {
    let cfg = ToolConfig {
        stream: true,
        ring_capacity: Some(2),
        publish_every: Some(9),
        ..Default::default()
    };
    const THREADS: usize = 4;
    let (tool0, handle) = OmpDataPerfTool::new(cfg);
    let mut tools = vec![tool0];
    for _ in 1..THREADS {
        tools.push(handle.fork_tool());
    }
    let caps = CompilerProfile::LlvmClang.capabilities();
    let fence = Arc::new(Barrier::new(THREADS));
    std::thread::scope(|s| {
        for (i, mut tool) in tools.into_iter().enumerate() {
            let caps = caps.clone();
            let fence = fence.clone();
            s.spawn(move || {
                tool.initialize(&caps);
                storm(&mut tool, i as u64, 5, 200, 0);
                if i % 2 == 0 {
                    // Even shards finish early...
                    tool.finalize(1_000_000);
                    fence.wait();
                } else {
                    // ...odd shards keep producing after the early
                    // finalizers have retired their slots.
                    fence.wait();
                    storm(&mut tool, i as u64 + 100, 6, 200, 10_000);
                    tool.finalize(1_000_000);
                }
            });
        }
    });
    assert_oracle(&handle, "finalize while producing");
}

/// Same seed, same config, two runs: the merged trace must be
/// byte-identical no matter how rings, spills, and drains interleaved
/// (scheduling independence survives the ring rewrite).
#[test]
fn ring_ingest_is_scheduling_independent() {
    let cfg = ToolConfig {
        stream: true,
        ring_capacity: Some(2),
        publish_every: Some(3),
        ..Default::default()
    };
    let t1 = run_storm(cfg, 8, 11, 300).take_trace();
    let t2 = run_storm(cfg, 8, 11, 300).take_trace();
    assert_eq!(t1.data_op_count(), t2.data_op_count());
    assert_eq!(
        t1.to_json(),
        t2.to_json(),
        "merged trace must not depend on scheduling"
    );
}
