//! Concurrency stress suite for the sharded collector.
//!
//! Real OS threads hammer forked tool shards with callback storms; the
//! merged trace must be byte-identical across runs (scheduling
//! independence), and streaming finalize must stay byte-identical to
//! post-mortem detection no matter how the threads interleave. The
//! barrier-driven cases force the watermark-merge orderings that random
//! scheduling only hits occasionally; the engine's internal
//! release-order assertion (debug builds) turns any early release into
//! a panic.
//!
//! CI runs this suite twice: free-running, and with
//! `RUST_TEST_THREADS=1` so every test's *internal* threads still race
//! while the harness adds no extra noise.

use odp_model::{CodePtr, DeviceId, SimTime};
use odp_ompt::{CompilerProfile, DataOpCallback, DataOpType, Endpoint, SubmitCallback, Tool};
use ompdataperf::detect::{EventView, Findings};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use std::sync::{Arc, Barrier};

fn data_op<'a>(
    endpoint: Endpoint,
    host_op_id: u64,
    time: u64,
    payload: Option<&'a [u8]>,
) -> DataOpCallback<'a> {
    DataOpCallback {
        endpoint,
        target_id: 1,
        host_op_id,
        optype: DataOpType::TransferToDevice,
        src_device: DeviceId::HOST,
        src_addr: 0x1000 + (host_op_id % 7) * 0x100,
        dest_device: DeviceId::target(0),
        dest_addr: 0xd000,
        bytes: payload.map(|p| p.len() as u64).unwrap_or(64),
        codeptr_ra: CodePtr(0x42),
        time: SimTime(time),
        payload,
    }
}

fn submit(endpoint: Endpoint, target_id: u64, time: u64) -> SubmitCallback {
    SubmitCallback {
        endpoint,
        target_id,
        device: DeviceId::target(0),
        requested_num_teams: 1,
        codeptr_ra: CodePtr(0x77),
        time: SimTime(time),
    }
}

/// Fire a deterministic per-thread callback storm: `ops` transfer
/// begin/end pairs (occasionally overlapping within the thread) with a
/// kernel every 8 ops. Payload content repeats in a small pool so the
/// detectors see cross-thread duplicates.
fn storm(tool: &mut OmpDataPerfTool, thread: u64, ops: u64) {
    let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 64]).collect();
    let mut t = 0u64;
    for i in 0..ops {
        let id = thread * 1_000_000 + i;
        tool.on_data_op(&data_op(Endpoint::Begin, id, t, None));
        if i % 3 == 0 {
            // An overlapping second op: begins before the first ends.
            tool.on_data_op(&data_op(Endpoint::Begin, id + 500_000, t + 2, None));
            tool.on_data_op(&data_op(
                Endpoint::End,
                id + 500_000,
                t + 4,
                Some(&payloads[((i + 1) % 5) as usize]),
            ));
        }
        tool.on_data_op(&data_op(
            Endpoint::End,
            id,
            t + 10,
            Some(&payloads[(i % 5) as usize]),
        ));
        if i % 8 == 0 {
            tool.on_submit(&submit(Endpoint::Begin, id, t + 12));
            tool.on_submit(&submit(Endpoint::End, id, t + 20));
        }
        // The per-thread callback clock must stay monotonic (the OMPT
        // contract the watermark leans on); the +0..3 jitter makes
        // timestamps collide with other threads' — never with our own.
        t += 25 + (i % 4);
    }
}

fn run_storm(threads: u64, ops: u64, stream: bool) -> (ompdataperf::tool::ToolHandle, Vec<()>) {
    let (tool0, handle) = OmpDataPerfTool::new(ToolConfig {
        stream,
        ..Default::default()
    });
    let mut tools = vec![tool0];
    for _ in 1..threads {
        tools.push(handle.fork_tool());
    }
    let caps = CompilerProfile::LlvmClang.capabilities();
    let outs = std::thread::scope(|s| {
        let joins: Vec<_> = tools
            .into_iter()
            .enumerate()
            .map(|(i, mut tool)| {
                let caps = caps.clone();
                s.spawn(move || {
                    tool.initialize(&caps);
                    storm(&mut tool, i as u64, ops);
                    tool.finalize(1_000_000);
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("storm thread panicked"))
            .collect()
    });
    (handle, outs)
}

#[test]
fn eight_thread_storm_merges_deterministically() {
    let (h1, _) = run_storm(8, 400, false);
    let (h2, _) = run_storm(8, 400, false);
    let t1 = h1.take_trace();
    let t2 = h2.take_trace();
    // 400 ops + ~134 overlapping extras per thread; exact count fixed.
    assert_eq!(t1.data_op_count(), t2.data_op_count());
    assert!(t1.data_op_count() >= 8 * 400);
    assert_eq!(
        t1.to_json(),
        t2.to_json(),
        "merged trace must be independent of OS scheduling"
    );
    // Aggregate hash meter saw every payload once.
    assert_eq!(h1.hash_meter().bytes, t1.data_op_count() as u64 * 64);
}

#[test]
fn streaming_storm_finalize_is_byte_identical_to_postmortem() {
    for threads in [2u64, 4, 8] {
        let (handle, _) = run_storm(threads, 300, true);
        let trace = handle.take_trace();
        let mut engine = handle.take_stream_engine().expect("streaming enabled");
        let view = EventView::from_log(&trace);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect_fused(&view);
        assert_eq!(
            serde_json::to_string_pretty(&streamed).unwrap(),
            serde_json::to_string_pretty(&postmortem).unwrap(),
            "streaming diverged under a {threads}-thread storm"
        );
        assert_eq!(engine.live_counts(), postmortem.counts());
        assert!(
            postmortem.counts().dd > 0,
            "the storm is built to contain cross-thread duplicates"
        );
    }
}

#[test]
fn live_findings_can_be_drained_while_threads_run() {
    let (tool0, handle) = OmpDataPerfTool::new(ToolConfig {
        stream: true,
        ..Default::default()
    });
    let mut tools = vec![tool0];
    for _ in 1..4 {
        tools.push(handle.fork_tool());
    }
    let caps = CompilerProfile::LlvmClang.capabilities();
    let drained = std::thread::scope(|s| {
        let joins: Vec<_> = tools
            .into_iter()
            .enumerate()
            .map(|(i, mut tool)| {
                let caps = caps.clone();
                s.spawn(move || {
                    tool.initialize(&caps);
                    storm(&mut tool, i as u64, 300);
                    tool.finalize(1_000_000);
                })
            })
            .collect();
        // Concurrent observer: drain findings while the storm rages.
        let mut live = Vec::new();
        while joins.iter().any(|j| !j.is_finished()) {
            live.extend(handle.take_stream_findings());
            std::thread::yield_now();
        }
        for j in joins {
            j.join().expect("storm thread panicked");
        }
        live.extend(handle.take_stream_findings());
        live
    });
    assert!(!drained.is_empty(), "findings must flow during the run");
    // Everything drained live is accounted in the final counts.
    let counts = handle.stream_counts().expect("streaming on");
    assert_eq!(counts.total(), drained.len());
}

#[test]
fn barrier_forced_interleaving_exercises_the_watermark_merge() {
    // Phase-locked worst case: every thread opens an op, all wait at a
    // barrier (so every shard's clock pins the merge), then threads
    // close in *reverse* shard order while others keep emitting events
    // with identical timestamps. Any premature release trips the
    // engine's internal order assertion (debug builds) and diverges
    // finalize from post-mortem (all builds).
    const THREADS: usize = 4;
    let (tool0, handle) = OmpDataPerfTool::new(ToolConfig {
        stream: true,
        ..Default::default()
    });
    let mut tools = vec![tool0];
    for _ in 1..THREADS {
        tools.push(handle.fork_tool());
    }
    let caps = CompilerProfile::LlvmClang.capabilities();
    let barrier = Arc::new(Barrier::new(THREADS));
    std::thread::scope(|s| {
        for (i, mut tool) in tools.into_iter().enumerate() {
            let caps = caps.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                tool.initialize(&caps);
                let base = 1_000 * (i as u64 + 1);
                let payload = vec![7u8; 64];
                // Everyone opens a long op at the SAME begin time (100).
                tool.on_data_op(&data_op(Endpoint::Begin, base, 100, None));
                barrier.wait();
                // Short same-time ops complete while every shard's long
                // op is still open: all of them must sit in the buffer.
                for k in 0..50u64 {
                    tool.on_data_op(&data_op(Endpoint::Begin, base + 1 + k, 150, None));
                    tool.on_data_op(&data_op(Endpoint::End, base + 1 + k, 160, Some(&payload)));
                }
                barrier.wait();
                // Close the long ops in reverse shard order.
                for turn in (0..THREADS).rev() {
                    if turn == i {
                        tool.on_data_op(&data_op(
                            Endpoint::End,
                            base,
                            300 + i as u64,
                            Some(&payload),
                        ));
                    }
                    barrier.wait();
                }
                tool.finalize(10_000);
            });
        }
    });
    let trace = handle.take_trace();
    let mut engine = handle.take_stream_engine().unwrap();
    let view = EventView::from_log(&trace);
    let streamed = engine.finalize(&view);
    let postmortem = Findings::detect_fused(&view);
    assert_eq!(
        serde_json::to_string_pretty(&streamed).unwrap(),
        serde_json::to_string_pretty(&postmortem).unwrap(),
        "forced interleaving broke the watermark merge"
    );
    // 4 shards × 50 identical same-start transfers + 4 long ops of the
    // same content: one giant duplicate group.
    assert_eq!(streamed.counts().dd, THREADS * 50 + THREADS - 1);
}

#[test]
fn open_op_on_one_thread_gates_releases_from_all_threads() {
    let (mut t0, handle) = OmpDataPerfTool::new(ToolConfig {
        stream: true,
        ..Default::default()
    });
    let mut t1 = handle.fork_tool();
    let caps = CompilerProfile::LlvmClang.capabilities();
    t0.initialize(&caps);
    t1.initialize(&caps);
    let payload = vec![9u8; 64];
    // Thread 0 opens at t=50 and stalls.
    t0.on_data_op(&data_op(Endpoint::Begin, 1, 50, None));
    // Thread 1 completes ops far past that begin.
    for k in 0..20u64 {
        t1.on_data_op(&data_op(Endpoint::Begin, 100 + k, 200 + k, None));
        t1.on_data_op(&data_op(Endpoint::End, 100 + k, 210 + k, Some(&payload)));
    }
    let stats = handle.stream_buffer_stats().unwrap();
    assert_eq!(
        stats.buffered_now, 20,
        "thread 0's open op must gate every shard's releases"
    );
    // Thread 0 closes: everything may drain on the next advance.
    t0.on_data_op(&data_op(Endpoint::End, 1, 500, Some(&payload)));
    t1.on_data_op(&data_op(Endpoint::Begin, 999, 600, None));
    t1.on_data_op(&data_op(Endpoint::End, 999, 610, Some(&payload)));
    let stats = handle.stream_buffer_stats().unwrap();
    assert!(
        stats.buffered_now <= 2,
        "release after the gate lifted: {stats:?}"
    );
    t0.finalize(1_000);
    t1.finalize(1_000);
    let trace = handle.take_trace();
    let mut engine = handle.take_stream_engine().unwrap();
    let view = EventView::from_log(&trace);
    let streamed = engine.finalize(&view);
    assert_eq!(
        serde_json::to_string(&streamed).unwrap(),
        serde_json::to_string(&Findings::detect_fused(&view)).unwrap()
    );
}
