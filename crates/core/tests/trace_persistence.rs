//! Property suite for the persistent trace format (`odp_trace::persist`).
//!
//! Three oracles, each over seeded generators so a failing case
//! reproduces forever:
//!
//! 1. **Round-trip identity**: for any shard-interleaved merged trace —
//!    including lossy/hostile/stalled/OOM fault-profile runs through the
//!    full simulated runtime — `TraceArtifact::from_log` → `to_bytes` →
//!    `load_trace` is field-for-field identical: the artifact itself,
//!    its `ColumnarView` against the in-memory hydration, the sorted
//!    target events, the recomputed stats, and the persisted
//!    `TraceHealth` and shard ids.
//! 2. **Findings byte-identity**: the fused detection sweep over the
//!    loaded columns serializes to byte-identical JSON as the sweep over
//!    the live trace — persistence must never fork analysis results.
//! 3. **Loader robustness**: sampled truncations and bit flips of a
//!    multi-shard file never panic the lenient loader, and every
//!    mutation either decodes to the original artifact (padding bytes
//!    are not checksummed) or surfaces in `TraceHealth::unreadable`.
//!    The strict loader must reject anything that does not decode to
//!    the original.
//!
//! The exhaustive single-artifact truncation/bit-flip fuzz lives in
//! `odp_trace::persist`'s unit tests; this suite samples the same
//! predicates over a larger, multi-shard artifact and adds the
//! whole-pipeline generators.

mod common;

use common::Rng;
use odp_model::{CodePtr, DeviceId, MapType, SimTime, TraceHealth};
use odp_ompt::{CompilerProfile, DataOpCallback, DataOpType, Endpoint, SubmitCallback, Tool};
use odp_sim::{map, FaultPlan, FaultProfile, Kernel, KernelCost, Runtime, RuntimeConfig};
use odp_trace::persist::{load_trace, load_trace_lenient};
use odp_trace::{TraceArtifact, TraceLog};
use ompdataperf::analysis::infer_num_devices_columnar;
use ompdataperf::detect::{EventView, Findings};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

// ---------------------------------------------------------------------
// The shared oracle
// ---------------------------------------------------------------------

/// Save `trace` + `health`, load it back strictly and leniently, and
/// check every identity the format promises.
fn assert_round_trip(trace: &TraceLog, health: &TraceHealth, program: &str) {
    let artifact = TraceArtifact::from_log(trace, program, *health);
    let bytes = artifact.to_bytes();

    let strict = load_trace(&bytes).expect("a writer's own output must verify");
    let lenient = load_trace_lenient(&bytes);
    assert_eq!(strict, artifact, "strict load diverged from the artifact");
    assert_eq!(lenient, artifact, "lenient load diverged on clean bytes");

    // Field-for-field columnar identity against in-memory hydration.
    let cols = strict.columnar();
    assert_eq!(&cols, trace.columnar(), "ColumnarView diverged");
    assert_eq!(
        strict.target_events_sorted(),
        trace.target_events_sorted(),
        "sorted target events diverged"
    );
    assert_eq!(strict.health, *health, "TraceHealth was not preserved");
    assert_eq!(strict.meta.program, program);
    assert_eq!(
        serde_json::to_string(&strict.stats()).expect("serialize stats"),
        serde_json::to_string(&trace.stats()).expect("serialize stats"),
        "recomputed stats diverged"
    );

    // Findings byte-identity: fused sweep over disk == fused sweep over
    // the live trace, down to the serialized JSON.
    let n_mem = infer_num_devices_columnar(trace.columnar());
    let n_disk = infer_num_devices_columnar(&cols);
    assert_eq!(n_mem, n_disk, "device inference diverged across the trip");
    let from_mem = Findings::detect_fused(&EventView::over(trace.columnar(), n_mem));
    let from_disk = Findings::detect_fused(&EventView::over(&cols, n_disk));
    assert_eq!(
        serde_json::to_string_pretty(&from_mem).expect("serialize findings"),
        serde_json::to_string_pretty(&from_disk).expect("serialize findings"),
        "findings JSON diverged across the round trip"
    );
}

// ---------------------------------------------------------------------
// Generator 1: shard-interleaved callback storms
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)] // a callback-record builder mirrors the callback's fields
fn data_op<'a>(
    endpoint: Endpoint,
    host_op_id: u64,
    optype: DataOpType,
    src_device: DeviceId,
    dest_device: DeviceId,
    addr_salt: u64,
    time: u64,
    payload: Option<&'a [u8]>,
) -> DataOpCallback<'a> {
    DataOpCallback {
        endpoint,
        target_id: 1,
        host_op_id,
        optype,
        src_device,
        src_addr: 0x1000 + (addr_salt % 7) * 0x100,
        dest_device,
        dest_addr: 0xd000 + (addr_salt % 5) * 0x80,
        bytes: payload.map(|p| p.len() as u64).unwrap_or(64),
        codeptr_ra: CodePtr(0x400_000 + (addr_salt % 4) * 0x10),
        time: SimTime(time),
        payload,
    }
}

/// Feed a seeded interleaved callback storm across `shards` forked tool
/// shards (one logical producer each, driven round-robin in random
/// order) and return the merged trace plus its composed health. Small
/// pools of payloads, devices, and addresses force duplicate hashes,
/// round trips, and re-allocations into the trace so the findings
/// oracle is non-vacuous.
fn storm_trace(seed: u64, shards: usize, ops_per_shard: u64) -> (TraceLog, TraceHealth) {
    let (tool0, handle) = OmpDataPerfTool::new(ToolConfig {
        quiet: true,
        ..Default::default()
    });
    let mut tools = vec![tool0];
    for _ in 1..shards {
        tools.push(handle.fork_tool());
    }
    let caps = CompilerProfile::LlvmClang.capabilities();
    for tool in &mut tools {
        tool.initialize(&caps);
    }

    let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 32 + 16 * i as usize]).collect();
    let mut rng = Rng::new(seed);
    let mut clocks = vec![0u64; shards];
    let mut emitted = vec![0u64; shards];
    for _ in 0..shards as u64 * ops_per_shard {
        // Pick any shard with budget left: the interleaving (and thus
        // the per-shard clock skew) is seed-controlled.
        let mut s = rng.below(shards as u64) as usize;
        while emitted[s] >= ops_per_shard {
            s = (s + 1) % shards;
        }
        let i = emitted[s];
        emitted[s] += 1;
        let id = s as u64 * 1_000_000 + i;
        let t = clocks[s];
        let dev = DeviceId::target(rng.below(3) as u32);
        let tool = &mut tools[s];
        match rng.below(10) {
            0 | 1 => {
                let op = DataOpType::Alloc;
                tool.on_data_op(&data_op(
                    Endpoint::Begin,
                    id,
                    op,
                    DeviceId::HOST,
                    dev,
                    i,
                    t,
                    None,
                ));
                tool.on_data_op(&data_op(
                    Endpoint::End,
                    id,
                    op,
                    DeviceId::HOST,
                    dev,
                    i,
                    t + 3,
                    None,
                ));
            }
            2 => {
                let op = DataOpType::Delete;
                tool.on_data_op(&data_op(
                    Endpoint::Begin,
                    id,
                    op,
                    DeviceId::HOST,
                    dev,
                    i,
                    t,
                    None,
                ));
                tool.on_data_op(&data_op(
                    Endpoint::End,
                    id,
                    op,
                    DeviceId::HOST,
                    dev,
                    i,
                    t + 2,
                    None,
                ));
            }
            3 | 4 => {
                let op = DataOpType::TransferFromDevice;
                let p = &payloads[(i % 5) as usize];
                tool.on_data_op(&data_op(
                    Endpoint::Begin,
                    id,
                    op,
                    dev,
                    DeviceId::HOST,
                    i,
                    t,
                    None,
                ));
                tool.on_data_op(&data_op(
                    Endpoint::End,
                    id,
                    op,
                    dev,
                    DeviceId::HOST,
                    i,
                    t + 6,
                    Some(p),
                ));
            }
            _ => {
                let op = DataOpType::TransferToDevice;
                let p = &payloads[(i % 5) as usize];
                tool.on_data_op(&data_op(
                    Endpoint::Begin,
                    id,
                    op,
                    DeviceId::HOST,
                    dev,
                    i,
                    t,
                    None,
                ));
                if i.is_multiple_of(4) {
                    // An overlapping second transfer inside the first's span.
                    let p2 = &payloads[((i + 2) % 5) as usize];
                    let id2 = id + 500_000;
                    tool.on_data_op(&data_op(
                        Endpoint::Begin,
                        id2,
                        op,
                        DeviceId::HOST,
                        dev,
                        i + 1,
                        t + 1,
                        None,
                    ));
                    tool.on_data_op(&data_op(
                        Endpoint::End,
                        id2,
                        op,
                        DeviceId::HOST,
                        dev,
                        i + 1,
                        t + 4,
                        Some(p2),
                    ));
                }
                tool.on_data_op(&data_op(
                    Endpoint::End,
                    id,
                    op,
                    DeviceId::HOST,
                    dev,
                    i,
                    t + 8,
                    Some(p),
                ));
            }
        }
        if i.is_multiple_of(6) {
            tool.on_submit(&SubmitCallback {
                endpoint: Endpoint::Begin,
                target_id: id,
                device: dev,
                requested_num_teams: 1,
                codeptr_ra: CodePtr(0x77),
                time: SimTime(t + 9),
            });
            tool.on_submit(&SubmitCallback {
                endpoint: Endpoint::End,
                target_id: id,
                device: dev,
                requested_num_teams: 1,
                codeptr_ra: CodePtr(0x77),
                time: SimTime(t + 15),
            });
        }
        // Per-shard clocks stay monotonic (the OMPT contract); the
        // jitter makes cross-shard timestamps collide.
        clocks[s] = t + 8 + rng.below(9);
    }
    for mut tool in tools {
        tool.finalize(10_000_000);
    }

    let trace = handle.take_trace();
    let mut health = handle.trace_health();
    health.duplicate_ids += trace.duplicate_id_count();
    (trace, health)
}

// ---------------------------------------------------------------------
// Generator 2: fault-profile runs through the simulated runtime
// ---------------------------------------------------------------------

/// One step of a synthetic host program (a trimmed copy of the
/// fault-differential harness: this suite only needs the trace, not the
/// differential oracle).
#[derive(Clone, Debug)]
struct FaultStep {
    var: usize,
    unstructured: bool,
    update_to: bool,
    mutate: bool,
}

/// Run a synthetic program under `plan` with the full pipeline attached
/// (sharded collector + streaming engine) and compose health exactly
/// like the CLI report: collector quarantines, then engine degradation,
/// then merge-time duplicate ids.
fn run_faulty(
    steps: &[FaultStep],
    var_sizes: &[usize],
    plan: FaultPlan,
) -> (TraceLog, TraceHealth) {
    let cfg = RuntimeConfig {
        faults: plan,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        stream: true,
        quiet: true,
        ..Default::default()
    });
    rt.attach_tool(Box::new(tool));

    let vars: Vec<_> = var_sizes
        .iter()
        .enumerate()
        .map(|(i, &bytes)| rt.host_alloc(&format!("v{i}"), bytes))
        .collect();
    for (i, step) in steps.iter().enumerate() {
        let cp = CodePtr(0x1000 + 0x10 * i as u64);
        let v = vars[step.var % vars.len()];
        if step.unstructured {
            rt.target_enter_data(0, cp, &[map(MapType::To, v)]);
            if step.update_to {
                rt.target_update_to(0, cp, &[v]);
            }
            rt.target_exit_data(0, cp, &[map(MapType::From, v)]);
        } else {
            let kernel = if step.mutate {
                Kernel::new("k", KernelCost::fixed(50))
                    .reads(&[v])
                    .writes(&[v])
            } else {
                Kernel::new("k", KernelCost::fixed(50)).reads(&[v])
            };
            rt.target(0, cp, &[map(MapType::ToFrom, v)], kernel);
        }
    }
    rt.finish();

    let trace = handle.take_trace();
    let mut engine = handle.take_stream_engine().expect("streaming was enabled");
    let view = EventView::from_log(&trace);
    let _findings = engine.finalize(&view);
    let mut health = handle.trace_health();
    health.merge(&engine.health());
    health.duplicate_ids += trace.duplicate_id_count();
    (trace, health)
}

/// A fixed program long enough that every named profile actually fires.
fn reference_steps() -> Vec<FaultStep> {
    let mut steps = Vec::new();
    for round in 0..6 {
        steps.push(FaultStep {
            var: 0,
            unstructured: false,
            update_to: false,
            mutate: false,
        });
        steps.push(FaultStep {
            var: 1,
            unstructured: false,
            update_to: false,
            mutate: round % 2 == 0,
        });
        steps.push(FaultStep {
            var: 2,
            unstructured: true,
            update_to: round % 3 == 0,
            mutate: false,
        });
    }
    steps
}

const PROFILES: [FaultProfile; 4] = [
    FaultProfile::Lossy,
    FaultProfile::Hostile,
    FaultProfile::Stalled,
    FaultProfile::Oom,
];

// ---------------------------------------------------------------------
// Pinned coverage
// ---------------------------------------------------------------------

#[test]
fn named_fault_profiles_round_trip() {
    let steps = reference_steps();
    let sizes = [48usize, 32, 24];
    for profile in PROFILES {
        for seed in [0u64, 1, 42] {
            let (trace, health) =
                run_faulty(&steps, &sizes, FaultPlan::from_profile(profile, seed));
            assert_round_trip(&trace, &health, "fault-profile");
        }
    }
}

#[test]
fn lossy_round_trip_preserves_a_dirty_health() {
    // Guard against vacuity: the lossy run must actually dirty its
    // health, and the loaded artifact must carry that exact health.
    let (trace, health) = run_faulty(
        &reference_steps(),
        &[48, 32, 24],
        FaultPlan::from_profile(FaultProfile::Lossy, 42),
    );
    assert!(!health.is_clean(), "lossy plan injected nothing");
    let artifact = TraceArtifact::from_log(&trace, "lossy", health);
    let loaded = load_trace(&artifact.to_bytes()).expect("load");
    assert_eq!(loaded.health, health);
    assert!(loaded.health.warning().is_some());
}

#[test]
fn storm_generator_exercises_findings() {
    // The seed pools must actually produce findings, or the byte-identity
    // oracle on findings JSON would pass trivially on empty documents.
    let (trace, _health) = storm_trace(0xBADC0DE, 4, 120);
    let n = infer_num_devices_columnar(trace.columnar());
    let findings = Findings::detect_fused(&EventView::over(trace.columnar(), n));
    assert!(findings.counts().total() > 0, "storm produced no findings");
}

// ---------------------------------------------------------------------
// Loader fuzz fixture
// ---------------------------------------------------------------------

/// One multi-shard serialized artifact, built once: the fuzz cases below
/// sample mutations of these bytes.
fn fixture() -> &'static (TraceArtifact, Vec<u8>) {
    static FIXTURE: OnceLock<(TraceArtifact, Vec<u8>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (trace, health) = storm_trace(0xC0FFEE, 3, 60);
        let artifact = TraceArtifact::from_log(&trace, "fuzz-fixture", health);
        let bytes = artifact.to_bytes();
        (artifact, bytes)
    })
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    // Each storm case replays a few hundred callbacks and each fault
    // case a full simulated run; keep the counts CI-sized. The vendored
    // proptest stand-in seeds its RNG from the test name, so every run
    // draws the same cases.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn shard_interleaved_traces_round_trip(
        seed in 0u64..u64::MAX,
        shards in 1usize..5,
        ops in 1u64..80,
    ) {
        let (trace, health) = storm_trace(seed, shards, ops);
        assert_round_trip(&trace, &health, "storm");
    }

    #[test]
    fn fault_profile_traces_round_trip(
        steps in collection::vec(
            (0usize..4, 0u8..2, 0u8..2, 0u8..2).prop_map(|(var, u, t, m)| FaultStep {
                var,
                unstructured: u == 1,
                update_to: t == 1,
                mutate: m == 1,
            }),
            1..12,
        ),
        var_sizes in collection::vec(2usize..64, 1..4),
        profile_ix in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let plan = FaultPlan::from_profile(PROFILES[profile_ix], seed);
        let (trace, health) = run_faulty(&steps, &var_sizes, plan);
        assert_round_trip(&trace, &health, "faulty");
    }

    #[test]
    fn truncations_degrade_and_never_panic(cut in 0usize..usize::MAX) {
        let (original, bytes) = fixture();
        let cut = cut % bytes.len(); // strictly shorter than the file
        let loaded = load_trace_lenient(&bytes[..cut]);
        prop_assert!(
            loaded.health.unreadable > 0,
            "a truncated file (cut {} of {}) must surface as unreadable",
            cut,
            bytes.len()
        );
        prop_assert!(load_trace(&bytes[..cut]).is_err(), "strict load must reject");
        // The truncated decode never resurrects more than was written.
        prop_assert!(loaded.data_op_count() <= original.data_op_count());
    }

    #[test]
    fn bit_flips_degrade_or_decode_identically(
        pos in 0usize..usize::MAX,
        mask in 1u8..255,
    ) {
        let (original, bytes) = fixture();
        let mut mutated = bytes.clone();
        let pos = pos % mutated.len();
        mutated[pos] ^= mask;
        let loaded = load_trace_lenient(&mutated);
        prop_assert!(
            loaded == *original || loaded.health.unreadable > 0,
            "a bit flip at {pos} neither decoded identically nor degraded"
        );
        // Strict load may only succeed on an identical decode (flips in
        // inter-section padding are invisible to every checksum).
        if let Ok(strict) = load_trace(&mutated) {
            prop_assert_eq!(strict, original.clone());
        }
    }
}
