//! Property suite for the columnar trace hydration (satellite of the
//! columnar/ring PR): on seeded shard-interleaved traces,
//! `TraceLog::columnar()` must equal an *independent* row-by-row
//! hydration field for field, and every detection path must be
//! byte-identical whether it sweeps the columnar view or the rows.
//!
//! The independent oracle is deliberately not `data_op_events()` (that
//! accessor is itself a gather from the columnar view): the shard
//! partitioner in `common/mod.rs` produces the merged chronological
//! rows by plain concat-and-stable-sort of the original row events,
//! sharing no code with the record hydration or the k-way merge under
//! test.

mod common;

use common::{random_trace, shard_partition, ShardedTrace};
use odp_trace::{DataOpColumns, TargetColumns, TraceLog};
use ompdataperf::detect::{EventView, Findings, StreamConfig, StreamEvent, StreamingEngine};
use proptest::prelude::*;

/// Replay a sharded trace through per-shard `TraceLog`s exactly the way
/// the collector records it — per-shard completion order, shard-encoded
/// ids — and merge. Every record call must round-trip the shard event
/// it was driven by (same id, same fields), which pins the record
/// encoding independently of the columnar path.
fn build_merged_log(st: &ShardedTrace) -> TraceLog {
    let shards = st
        .shard_events
        .iter()
        .enumerate()
        .map(|(s, events)| {
            let mut log = TraceLog::for_shard(s as u32);
            for ev in events {
                match ev {
                    StreamEvent::Op(e) => {
                        let recorded = log.record_data_op(
                            e.kind,
                            e.src_device,
                            e.dest_device,
                            e.src_addr,
                            e.dest_addr,
                            e.bytes,
                            e.hash.map(|h| h.0),
                            e.span,
                            e.codeptr,
                        );
                        assert_eq!(&recorded, e, "data-op record hydration must round-trip");
                    }
                    StreamEvent::Kernel(k) => {
                        let recorded = log.record_target(k.kind, k.device, k.span, k.codeptr);
                        assert_eq!(&recorded, k, "target record hydration must round-trip");
                    }
                }
            }
            log
        })
        .collect();
    TraceLog::merge_shards(shards)
}

/// Every column of the log's memoized hydration against the oracle
/// rows, one assert per field so a failure names the column.
fn assert_columnar_matches_rows(log: &TraceLog, st: &ShardedTrace, ctx: &str) {
    let cols = log.columnar();
    let ops = DataOpColumns::from_events(&st.ops);
    assert_eq!(cols.ops.ids, ops.ids, "op ids ({ctx})");
    assert_eq!(cols.ops.kinds, ops.kinds, "op kinds ({ctx})");
    assert_eq!(
        cols.ops.src_devices, ops.src_devices,
        "op src_devices ({ctx})"
    );
    assert_eq!(
        cols.ops.dest_devices, ops.dest_devices,
        "op dest_devices ({ctx})"
    );
    assert_eq!(cols.ops.src_addrs, ops.src_addrs, "op src_addrs ({ctx})");
    assert_eq!(cols.ops.dest_addrs, ops.dest_addrs, "op dest_addrs ({ctx})");
    assert_eq!(cols.ops.bytes, ops.bytes, "op bytes ({ctx})");
    assert_eq!(cols.ops.hashes, ops.hashes, "op hashes ({ctx})");
    assert_eq!(cols.ops.starts, ops.starts, "op starts ({ctx})");
    assert_eq!(cols.ops.ends, ops.ends, "op ends ({ctx})");
    assert_eq!(cols.ops.codeptrs, ops.codeptrs, "op codeptrs ({ctx})");
    let kernels = TargetColumns::from_events(&st.kernels);
    assert_eq!(cols.kernels.ids, kernels.ids, "kernel ids ({ctx})");
    assert_eq!(
        cols.kernels.devices, kernels.devices,
        "kernel devices ({ctx})"
    );
    assert_eq!(cols.kernels.kinds, kernels.kinds, "kernel kinds ({ctx})");
    assert_eq!(cols.kernels.starts, kernels.starts, "kernel starts ({ctx})");
    assert_eq!(cols.kernels.ends, kernels.ends, "kernel ends ({ctx})");
    assert_eq!(
        cols.kernels.codeptrs, kernels.codeptrs,
        "kernel codeptrs ({ctx})"
    );
    // The facade's owned gather must reassemble the same rows.
    let view = EventView::from_log(log);
    for (i, expected) in st.ops.iter().enumerate() {
        assert_eq!(&cols.ops.event(i), expected, "gathered op {i} ({ctx})");
    }
    assert_eq!(view.ops().len(), st.ops.len(), "op count ({ctx})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Columnar hydration ≡ independent row hydration, field for field,
    /// across random shard interleavings.
    #[test]
    fn columnar_equals_row_hydration(
        seed in 0u64..u64::MAX,
        len in 0usize..160,
        num_devices in 1u32..4,
        shards in 1usize..5,
    ) {
        let (ops, kernels) = random_trace(seed, len, num_devices);
        let st = shard_partition(&ops, &kernels, shards, seed ^ 0x5A5A);
        let log = build_merged_log(&st);
        assert_columnar_matches_rows(&log, &st, &format!("seed {seed} shards {shards}"));
    }

    /// The fused sweep over the merged log's columnar view must be
    /// byte-identical to the five standalone row-based reference passes
    /// over the independently-sorted rows.
    #[test]
    fn fused_over_columnar_equals_separate_over_rows(
        seed in 0u64..u64::MAX,
        len in 0usize..160,
        num_devices in 1u32..4,
        shards in 1usize..5,
    ) {
        let (ops, kernels) = random_trace(seed, len, num_devices);
        let st = shard_partition(&ops, &kernels, shards, seed ^ 0xC3C3);
        let log = build_merged_log(&st);
        let view = EventView::over(log.columnar(), num_devices);
        let fused = Findings::detect_fused(&view);
        let separate = Findings::detect_separate(&st.ops, &st.kernels, num_devices);
        prop_assert_eq!(
            serde_json::to_string_pretty(&fused).unwrap(),
            serde_json::to_string_pretty(&separate).unwrap(),
            "fused-over-columnar diverged from row reference (seed {})", seed
        );
    }

    /// Streaming ingest of the shard-interleaved batches, finalized
    /// against the columnar view, must be byte-identical to post-mortem
    /// row detection. Exercises `ingest_batch` plus the columnar
    /// finalize path end to end.
    #[test]
    fn streaming_batches_finalize_identically_over_columnar(
        seed in 0u64..u64::MAX,
        len in 0usize..160,
        num_devices in 1u32..4,
        shards in 1usize..5,
        batch in 1usize..24,
    ) {
        let (ops, kernels) = random_trace(seed, len, num_devices);
        let st = shard_partition(&ops, &kernels, shards, seed ^ 0x0F0F);
        let log = build_merged_log(&st);
        let mut engine = StreamingEngine::new(StreamConfig::default());
        // Round-robin the shards' completion-order streams in `batch`-
        // sized chunks — the shape the ring drain hands the engine.
        // No watermark: everything buffers until finalize, which must
        // reconcile against the columnar view exactly.
        let mut cursors = vec![0usize; st.shard_events.len()];
        loop {
            let mut moved = false;
            for (s, cursor) in cursors.iter_mut().enumerate() {
                let events = &st.shard_events[s];
                if *cursor >= events.len() {
                    continue;
                }
                let upper = (*cursor + batch).min(events.len());
                engine.ingest_batch(events[*cursor..upper].iter().cloned(), None);
                *cursor = upper;
                moved = true;
            }
            if !moved {
                break;
            }
        }
        let view = EventView::over(log.columnar(), num_devices);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect(&st.ops, &st.kernels, num_devices);
        prop_assert_eq!(
            serde_json::to_string_pretty(&streamed).unwrap(),
            serde_json::to_string_pretty(&postmortem).unwrap(),
            "streamed batches diverged from post-mortem (seed {})", seed
        );
    }
}

/// A fixed worst-case shape outside proptest so it always runs even if
/// case counts are tuned down: maximum shard count, colliding ids
/// impossible (shard-encoded), dense duplicate pool.
#[test]
fn columnar_equals_rows_on_dense_single_device_partition() {
    let (ops, kernels) = random_trace(0xFEED_F00D, 600, 1);
    let st = shard_partition(&ops, &kernels, 4, 0xBEEF);
    let log = build_merged_log(&st);
    assert_columnar_matches_rows(&log, &st, "dense single-device");
    let view = EventView::over(log.columnar(), 1);
    let fused = Findings::detect_fused(&view);
    assert!(fused.counts().dd > 0, "dense pool must produce duplicates");
}
