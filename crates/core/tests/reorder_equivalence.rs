//! Equivalence suite for the shard-run reorder pipeline that replaced
//! the streaming engine's `BinaryHeap`.
//!
//! Four layers of oracle, all seeded and deterministic:
//!
//! 1. **Buffer level**: [`RunMergeBuffer`] must release the exact same
//!    sequence a min-`BinaryHeap` would, under interleaved watermark
//!    gates, across shard counts, inversion rates, and sparse shard
//!    ids — and its `inversions()` counter must match an external
//!    model of the run-extension rule.
//! 2. **Engine level**: shard-interleaved delivery (random arrival
//!    interleavings of per-shard completion-ordered streams) must
//!    finalize byte-identical to post-mortem detection.
//! 3. **Stats**: `StreamBufferStats` high-water marks must match an
//!    external push/release model on both the per-event and the
//!    batched (`ingest_batch`) ingest paths.
//! 4. **Degradation knobs**: `--stream-cap` (`max_frontier`) spills
//!    and `--stall-timeout` (`force_release_all`) quarantines must be
//!    accounted exactly, and capped runs that never spill must stay
//!    byte-identical — including over fault-profile traces produced by
//!    the simulated runtime.

mod common;

use common::{random_trace, shard_partition, Rng};
use odp_model::{
    CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, HashVal, SimTime, TargetEvent, TimeSpan,
};
use odp_sim::{map, FaultPlan, FaultProfile, Kernel, KernelCost, Runtime, RuntimeConfig};
use ompdataperf::detect::reorder::{RunMergeBuffer, SortKey};
use ompdataperf::detect::{EventView, Findings, StreamConfig, StreamEvent, StreamingEngine};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

// ---------------------------------------------------------------------
// Layer 1: RunMergeBuffer vs BinaryHeap, byte-for-byte release order.
// ---------------------------------------------------------------------

/// One synthetic arrival: `(shard, key)`. The value released is the
/// arrival's index, so release sequences can be compared exactly.
struct ArrivalPlan {
    shards: u64,
    /// Spread shard ids over a large prime stride to exercise the
    /// `lane_of_large` fallback table (ids beyond the direct map).
    sparse_ids: bool,
    inv_permille: u64,
    /// Events between watermark gates.
    cadence: u64,
    seed: u64,
}

const PLAN_EVENTS: u64 = 1_500;
const PLAN_LAG: u64 = 400;

fn build_plan_arrivals(plan: &ArrivalPlan) -> Vec<(u32, SortKey)> {
    let mut rng = Rng::new(plan.seed | 1);
    let mut frontier = vec![0u64; plan.shards as usize];
    let mut out = Vec::with_capacity(PLAN_EVENTS as usize);
    for i in 0..PLAN_EVENTS {
        let s = rng.below(plan.shards) as usize;
        frontier[s] += 1 + rng.below(16);
        let t = if rng.below(1_000) < plan.inv_permille {
            frontier[s].saturating_sub(PLAN_LAG / 2)
        } else {
            frontier[s]
        };
        let shard_id = if plan.sparse_ids {
            (s as u32) * 7_919 // beyond the direct-mapped table for s >= 1
        } else {
            s as u32
        };
        // Unique middle component => a strict total order on keys, so
        // both structures have exactly one legal release sequence.
        out.push((shard_id, (SimTime(t), i, (i % 3) as u8)));
    }
    out
}

/// External model of one run lane's extension rule: a lane accepts any
/// key >= the last key *pushed* to it, and forgets its tail only when
/// it fully drains (clear-on-drain).
#[derive(Default)]
struct LaneModel {
    tail: Option<SortKey>,
    live: usize,
}

fn assert_buffer_matches_heap(plan: &ArrivalPlan) {
    let arrivals = build_plan_arrivals(plan);
    let mut buf: RunMergeBuffer<u64> = RunMergeBuffer::default();
    let mut heap: BinaryHeap<Reverse<(SortKey, u64)>> = BinaryHeap::new();
    let mut released_buf: Vec<u64> = Vec::new();
    let mut released_heap: Vec<u64> = Vec::new();

    let mut lanes: std::collections::HashMap<u32, LaneModel> = std::collections::HashMap::new();
    // Arrival index -> shard, and whether the model routed it to the
    // lane (false = side pocket). Pocket releases don't touch lanes.
    let mut via_lane: Vec<(u32, bool)> = Vec::with_capacity(arrivals.len());
    let mut model_inversions = 0u64;
    let mut max_t = 0u64;

    for (n, &(shard, key)) in arrivals.iter().enumerate() {
        let lane = lanes.entry(shard).or_default();
        let accepted = lane.tail.is_none_or(|tail| key >= tail);
        if accepted {
            lane.tail = Some(key);
            lane.live += 1;
        } else {
            model_inversions += 1;
        }
        via_lane.push((shard, accepted));

        buf.push(shard, key, n as u64);
        heap.push(Reverse((key, n as u64)));
        max_t = max_t.max(key.0 .0);

        if (n as u64) % plan.cadence == plan.cadence - 1 {
            let wm = SimTime(max_t.saturating_sub(PLAN_LAG));
            drain(
                &mut buf,
                &mut heap,
                |k| k.0 <= wm,
                &mut released_buf,
                &mut released_heap,
                &mut lanes,
                &via_lane,
            );
        }
    }
    drain(
        &mut buf,
        &mut heap,
        |_| true,
        &mut released_buf,
        &mut released_heap,
        &mut lanes,
        &via_lane,
    );

    assert_eq!(released_buf, released_heap, "release sequences diverged");
    assert_eq!(released_buf.len(), arrivals.len(), "events lost in transit");
    assert_eq!(buf.len(), 0);
    assert!(heap.is_empty());
    assert_eq!(
        buf.inversions(),
        model_inversions,
        "inversion accounting diverged from the run-extension rule"
    );
    if plan.inv_permille == 0 {
        assert_eq!(buf.inversions(), 0, "sorted shards must never pocket");
        assert_eq!(buf.pocket_peak(), 0);
    }
}

/// Drain both structures through the same gate, verifying lockstep.
fn drain(
    buf: &mut RunMergeBuffer<u64>,
    heap: &mut BinaryHeap<Reverse<(SortKey, u64)>>,
    gate: impl Fn(SortKey) -> bool,
    released_buf: &mut Vec<u64>,
    released_heap: &mut Vec<u64>,
    lanes: &mut std::collections::HashMap<u32, LaneModel>,
    via_lane: &[(u32, bool)],
) {
    while let Some(v) = buf.pop_if(&gate) {
        let (shard, lane_routed) = via_lane[v as usize];
        if lane_routed {
            let lane = lanes.get_mut(&shard).expect("released from unknown lane");
            lane.live -= 1;
            if lane.live == 0 {
                lane.tail = None; // clear-on-drain forgets the tail
            }
        }
        released_buf.push(v);
    }
    while let Some(&Reverse((k, _))) = heap.peek() {
        if !gate(k) {
            break;
        }
        let Some(Reverse((_, v))) = heap.pop() else {
            break;
        };
        released_heap.push(v);
    }
    assert_eq!(buf.len(), heap.len(), "buffered counts diverged mid-gate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn run_merge_releases_exactly_what_the_heap_would(
        seed in 0u64..u64::MAX,
        shards in 1u64..9,
        sparse in 0u8..2,
        inv_sel in 0usize..4,
        cadence_sel in 0usize..4,
    ) {
        assert_buffer_matches_heap(&ArrivalPlan {
            shards,
            sparse_ids: sparse != 0,
            inv_permille: [0u64, 10, 100, 400][inv_sel],
            cadence: [1u64, 7, 64, 256][cadence_sel],
            seed,
        });
    }
}

// ---------------------------------------------------------------------
// Layer 2: shard-interleaved delivery vs post-mortem detection.
// ---------------------------------------------------------------------

fn ev_start(ev: &StreamEvent) -> SimTime {
    match ev {
        StreamEvent::Op(e) => e.span.start,
        StreamEvent::Kernel(k) => k.span.start,
    }
}

/// Deliver per-shard completion-ordered streams in a random arrival
/// interleaving, advancing the watermark the way a merged shard clock
/// would: one tick below the earliest start among undelivered events
/// (each will still emit at its own start, pinning the merge).
fn feed_shard_interleaved(
    engine: &mut StreamingEngine,
    shard_events: &[Vec<StreamEvent>],
    seed: u64,
) {
    // Per-shard suffix minima of start times over undelivered events.
    let mins: Vec<Vec<u64>> = shard_events
        .iter()
        .map(|events| {
            let mut m = vec![u64::MAX; events.len() + 1];
            for i in (0..events.len()).rev() {
                m[i] = m[i + 1].min(ev_start(&events[i]).0);
            }
            m
        })
        .collect();
    let mut next = vec![0usize; shard_events.len()];
    let mut remaining: usize = shard_events.iter().map(Vec::len).sum();
    let mut rng = Rng::new(seed | 1);
    while remaining > 0 {
        let mut s = rng.below(shard_events.len() as u64) as usize;
        while next[s] >= shard_events[s].len() {
            s = (s + 1) % shard_events.len();
        }
        engine.push(shard_events[s][next[s]].clone());
        next[s] += 1;
        remaining -= 1;
        let floor = (0..shard_events.len())
            .map(|t| mins[t][next[t]])
            .min()
            .unwrap_or(u64::MAX);
        engine.advance_watermark(SimTime(floor.saturating_sub(1)));
    }
}

fn assert_interleaving_matches_postmortem(
    ops: &[DataOpEvent],
    kernels: &[TargetEvent],
    shard_events: &[Vec<StreamEvent>],
    num_devices: u32,
    feed_seed: u64,
    ctx: &str,
) {
    let mut engine = StreamingEngine::default();
    feed_shard_interleaved(&mut engine, shard_events, feed_seed);
    assert_eq!(
        engine.buffer_stats().buffered_now,
        0,
        "all shards delivered => the reorder buffer must have drained ({ctx})"
    );
    let view = EventView::new(ops, kernels, num_devices);
    let streamed = engine.finalize(&view);
    let postmortem = Findings::detect(ops, kernels, num_devices);
    assert_eq!(
        streamed.counts(),
        postmortem.counts(),
        "issue counts diverge ({ctx})"
    );
    assert_eq!(
        serde_json::to_string_pretty(&streamed).unwrap(),
        serde_json::to_string_pretty(&postmortem).unwrap(),
        "findings diverge ({ctx})"
    );
    assert_eq!(
        engine.live_counts(),
        postmortem.counts(),
        "live counts diverge ({ctx})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shard_interleaved_streams_finalize_byte_identical(
        seed in 0u64..u64::MAX,
        feed_seed in 0u64..u64::MAX,
        n in 60usize..240,
        shards in 1usize..5,
        devices in 1u32..4,
    ) {
        let (ops, kernels) = random_trace(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1, n, devices);
        let sharded = shard_partition(&ops, &kernels, shards, seed ^ 0xABCD);
        assert_interleaving_matches_postmortem(
            &sharded.ops,
            &sharded.kernels,
            &sharded.shard_events,
            devices,
            feed_seed,
            &format!("seed {seed:#x}, {shards} shards"),
        );
    }
}

// ---------------------------------------------------------------------
// Layer 3: StreamBufferStats against an external push/release model.
// ---------------------------------------------------------------------

/// One deliverable event in completion order plus its reorder key.
fn completion_order(ops: &[DataOpEvent], kernels: &[TargetEvent]) -> Vec<(StreamEvent, SortKey)> {
    let mut arrivals: Vec<(StreamEvent, SortKey)> = ops
        .iter()
        .map(|e| (StreamEvent::Op(e.clone()), (e.span.start, e.id.0, 0)))
        .chain(
            kernels
                .iter()
                .map(|k| (StreamEvent::Kernel(k.clone()), (k.span.start, k.id.0, 1))),
        )
        .collect();
    arrivals.sort_by_key(|(ev, _)| match ev {
        StreamEvent::Op(e) => (e.span.end, e.id.0),
        StreamEvent::Kernel(k) => (k.span.end, k.id.0),
    });
    arrivals
}

/// Open-operation watermark after delivering arrival `i` (see
/// `feed_completion_order` in the streaming differential suite).
fn open_floor_watermarks(arrivals: &[(StreamEvent, SortKey)]) -> Vec<SimTime> {
    let mut suffix_min_start = vec![SimTime(u64::MAX); arrivals.len() + 1];
    for i in (0..arrivals.len()).rev() {
        suffix_min_start[i] = suffix_min_start[i + 1].min(ev_start(&arrivals[i].0));
    }
    (0..arrivals.len())
        .map(|i| {
            let now = match &arrivals[i].0 {
                StreamEvent::Op(e) => e.span.end,
                StreamEvent::Kernel(k) => k.span.end,
            };
            now.min(SimTime(suffix_min_start[i + 1].0.saturating_sub(1)))
        })
        .collect()
}

/// Count of delivered keys at or below the (monotone) watermark — the
/// model of "released so far": `advance_watermark` drains everything
/// eligible, every time.
fn model_released(delivered: &[SortKey], wm: SimTime) -> usize {
    delivered.iter().filter(|k| k.0 <= wm).count()
}

fn assert_stats_match_model(seed: u64, n: usize, batch: usize) {
    let (ops, kernels) = random_trace(seed | 1, n, 2);
    let arrivals = completion_order(&ops, &kernels);
    let wms = open_floor_watermarks(&arrivals);

    // Per-event path: note_buffered after every push, so the modeled
    // peak samples the buffered count after each individual push.
    let mut engine = StreamingEngine::default();
    let mut delivered: Vec<SortKey> = Vec::new();
    let mut wm_eff = SimTime(0);
    let mut model_peak = 0usize;
    for (i, (ev, key)) in arrivals.iter().enumerate() {
        engine.push(ev.clone());
        delivered.push(*key);
        let now = delivered.len() - model_released(&delivered, wm_eff);
        model_peak = model_peak.max(now);
        wm_eff = wm_eff.max(wms[i]);
        engine.advance_watermark(wms[i]);
        let stats = engine.buffer_stats();
        assert_eq!(
            stats.buffered_now,
            delivered.len() - model_released(&delivered, wm_eff),
            "buffered_now diverged at arrival {i} (seed {seed:#x})"
        );
    }
    let per_push_stats = engine.buffer_stats();
    assert_eq!(
        per_push_stats.buffered_peak, model_peak,
        "per-push buffered_peak must be the max over post-push counts (seed {seed:#x})"
    );

    // Batched path: ingest_batch samples the peak once per batch (the
    // buffer only grows inside the loop), so the model samples the
    // buffered count at batch boundaries only.
    let mut batched = StreamingEngine::default();
    let mut delivered: Vec<SortKey> = Vec::new();
    let mut wm_eff = SimTime(0);
    let mut batch_peak = 0usize;
    for chunk in arrivals.chunks(batch) {
        let wm = wms[delivered.len() + chunk.len() - 1];
        batched.ingest_batch(chunk.iter().map(|(ev, _)| ev.clone()), Some(wm));
        delivered.extend(chunk.iter().map(|(_, k)| *k));
        let now = delivered.len() - model_released(&delivered, wm_eff);
        batch_peak = batch_peak.max(now);
        wm_eff = wm_eff.max(wm);
    }
    assert_eq!(
        batched.buffer_stats().buffered_peak,
        batch_peak,
        "batch buffered_peak must sample at batch boundaries (seed {seed:#x})"
    );
    assert!(
        batch_peak >= model_peak,
        "coarser watermarks cannot shrink the high-water mark"
    );

    // Both ingest paths must finalize byte-identical to post-mortem.
    let view = EventView::new(&ops, &kernels, 2);
    let a = engine.finalize(&view);
    let b = batched.finalize(&view);
    let postmortem = Findings::detect(&ops, &kernels, 2);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&postmortem).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&b).unwrap(),
        serde_json::to_string(&postmortem).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn buffer_stats_match_external_model(
        seed in 0u64..u64::MAX,
        n in 60usize..200,
        batch_sel in 0usize..4,
    ) {
        assert_stats_match_model(seed, n, [1usize, 3, 16, 64][batch_sel]);
    }
}

// ---------------------------------------------------------------------
// Layer 4: --stream-cap and --stall-timeout semantics.
// ---------------------------------------------------------------------

/// Minimal public-API event factory (the crate-internal test factory is
/// not visible to integration tests).
struct Factory {
    next_id: u64,
}

impl Factory {
    fn new() -> Factory {
        Factory { next_id: 0 }
    }

    fn id(&mut self) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        id
    }

    fn h2d(&mut self, t: u64, hash: u64) -> DataOpEvent {
        DataOpEvent {
            id: self.id(),
            kind: DataOpKind::Transfer,
            src_device: DeviceId::HOST,
            dest_device: DeviceId::target(0),
            src_addr: 0x1000,
            dest_addr: 0xd000,
            bytes: 64,
            hash: Some(HashVal(hash)),
            span: TimeSpan::new(SimTime(t), SimTime(t + 10)),
            codeptr: CodePtr(0x100),
        }
    }
}

/// `--stream-cap` through the public API: an adversarial never-returning
/// trace must spill exactly (events - cap) undecided transfers, warn,
/// and still finalize identical (no round trips existed to lose).
#[test]
fn stream_cap_spills_are_accounted_exactly() {
    const N: u64 = 300;
    const CAP: usize = 24;
    let ops: Vec<DataOpEvent> = {
        let mut f = Factory::new();
        (0..N).map(|i| f.h2d(i * 20, 1_000 + i)).collect()
    };

    let mut capped = StreamingEngine::new(StreamConfig {
        num_devices: None,
        max_frontier: Some(CAP),
    });
    let mut exact = StreamingEngine::default();
    for op in &ops {
        capped.push_data_op(op.clone());
        capped.advance_watermark(op.span.end);
        exact.push_data_op(op.clone());
        exact.advance_watermark(op.span.end);
    }

    let stats = capped.buffer_stats();
    assert_eq!(stats.frontier_spilled, N as usize - CAP);
    assert!(stats.frontier_peak <= CAP + 1, "{stats:?}");
    let warning = capped.spill_warning().expect("spills must warn");
    assert!(
        warning.contains(&(N as usize - CAP).to_string()),
        "warning must carry the spill count: {warning}"
    );
    assert_eq!(exact.buffer_stats().frontier_spilled, 0);
    assert_eq!(exact.spill_warning(), None);

    let view = EventView::new(&ops, &[], 1);
    let capped_findings = capped.finalize(&view);
    let exact_findings = exact.finalize(&view);
    let postmortem = Findings::detect(&ops, &[], 1);
    for (name, f) in [("capped", &capped_findings), ("exact", &exact_findings)] {
        assert_eq!(
            serde_json::to_string(f).unwrap(),
            serde_json::to_string(&postmortem).unwrap(),
            "{name} engine diverged on a trip-free trace"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The documented cap contract on realistic traces: while
    /// `frontier_spilled` stays zero, a capped engine is byte-identical
    /// to post-mortem; the frontier high-water mark never exceeds the
    /// cap by more than the in-flight insert.
    #[test]
    fn capped_engine_identical_until_first_spill(
        seed in 0u64..u64::MAX,
        n in 60usize..200,
        cap_sel in 0usize..3,
    ) {
        let cap = [4usize, 16, 64][cap_sel];
        let (ops, kernels) = random_trace(seed | 1, n, 2);
        let arrivals = completion_order(&ops, &kernels);
        let wms = open_floor_watermarks(&arrivals);
        let mut engine = StreamingEngine::new(StreamConfig {
            num_devices: None,
            max_frontier: Some(cap),
        });
        for (i, (ev, _)) in arrivals.iter().enumerate() {
            engine.push(ev.clone());
            engine.advance_watermark(wms[i]);
        }
        let stats = engine.buffer_stats();
        prop_assert!(stats.frontier_peak <= cap + 1, "{:?}", stats);
        let spilled = stats.frontier_spilled;
        let view = EventView::new(&ops, &kernels, 2);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect(&ops, &kernels, 2);
        if spilled == 0 {
            prop_assert_eq!(
                serde_json::to_string(&streamed).unwrap(),
                serde_json::to_string(&postmortem).unwrap(),
                "zero spills must mean byte-identity (seed {:#x})", seed
            );
        } else {
            prop_assert!(engine.spill_warning().is_some(), "spills must warn");
        }
    }
}

/// `--stall-timeout` through the public API: force-release drains the
/// buffer, marks the engine degraded, and quarantines (never ingests)
/// anything at or below the forced floor — with exact accounting.
#[test]
fn stall_force_release_quarantines_late_events() {
    let ops: Vec<DataOpEvent> = {
        let mut f = Factory::new();
        (0..40u64).map(|i| f.h2d(100 + i * 10, 500 + i)).collect()
    };

    let mut engine = StreamingEngine::default();
    for op in &ops {
        engine.push_data_op(op.clone());
    }
    // No watermark ever advanced: everything is still buffered.
    assert_eq!(engine.buffer_stats().buffered_now, ops.len());
    assert!(!engine.is_degraded());

    let released = engine.force_release_all();
    assert_eq!(released, ops.len());
    assert!(engine.is_degraded());
    assert_eq!(engine.health().forced_releases, ops.len() as u64);
    assert_eq!(engine.buffer_stats().buffered_now, 0);

    // At or below the forced floor (max released start was 490):
    // quarantined as late, never buffered.
    let mut f = Factory::new();
    let late = {
        let mut e = f.h2d(50, 999);
        e.id = EventId(10_000);
        e
    };
    engine.push_data_op(late);
    assert_eq!(engine.health().late, 1);
    assert_eq!(
        engine.buffer_stats().buffered_now,
        0,
        "late events never buffer"
    );

    // Above the floor: business as usual, just degraded.
    let fresh = {
        let mut e = f.h2d(9_000, 998);
        e.id = EventId(10_001);
        e
    };
    engine.push_data_op(fresh);
    assert_eq!(engine.health().late, 1);
    assert_eq!(engine.buffer_stats().buffered_now, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Stall recovery on random traces: force-release mid-stream, then
    /// deliver the rest. Late quarantines must match the count of
    /// remaining arrivals keyed at or below the forced floor, and
    /// finalize must survive (degraded, never panicking).
    #[test]
    fn stall_recovery_accounting_on_random_traces(
        seed in 0u64..u64::MAX,
        n in 40usize..160,
    ) {
        let (ops, kernels) = random_trace(seed | 1, n, 2);
        let arrivals = completion_order(&ops, &kernels);
        let half = arrivals.len() / 2;

        let mut engine = StreamingEngine::default();
        for (ev, _) in &arrivals[..half] {
            engine.push(ev.clone());
        }
        let released = engine.force_release_all();
        prop_assert_eq!(released, half);
        prop_assert_eq!(engine.health().forced_releases, half as u64);

        // Forced floor = the largest released key.
        let floor = arrivals[..half].iter().map(|(_, k)| *k).max();
        let expect_late = arrivals[half..]
            .iter()
            .filter(|(_, k)| floor.is_some_and(|f| *k <= f))
            .count() as u64;
        for (ev, _) in &arrivals[half..] {
            engine.push(ev.clone());
        }
        prop_assert_eq!(
            engine.health().late, expect_late,
            "late quarantine accounting diverged (seed {:#x})", seed
        );
        prop_assert!(engine.is_degraded() || half == 0);

        let view = EventView::new(&ops, &kernels, 2);
        let findings = engine.finalize(&view);
        // Degradation forks results legitimately; the counts must still
        // be internally consistent with what the engine emitted live.
        prop_assert_eq!(findings.counts(), engine.live_counts());
    }
}

// ---------------------------------------------------------------------
// Fault-profile traces: the reorder pipeline under lossy / hostile /
// stalled / OOM collection, against the post-mortem oracle.
// ---------------------------------------------------------------------

/// Record one small program under a fault profile and hand back the
/// surviving (hydrated) trace — the events both detection paths see.
fn faulty_trace(profile: FaultProfile, seed: u64) -> (Vec<DataOpEvent>, Vec<TargetEvent>) {
    let cfg = RuntimeConfig {
        faults: FaultPlan::from_profile(profile, seed),
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        quiet: true,
        ..Default::default()
    });
    rt.attach_tool(Box::new(tool));

    let a = rt.host_alloc("a", 64);
    let b = rt.host_alloc("b", 48);
    for round in 0..8u64 {
        let cp = CodePtr(0x2000 + round * 0x10);
        rt.target(
            0,
            cp,
            &[map(odp_model::MapType::To, a)],
            Kernel::new("k", KernelCost::fixed(40)).reads(&[a]),
        );
        rt.target_enter_data(0, cp, &[map(odp_model::MapType::To, b)]);
        if round % 2 == 0 {
            rt.target_update_from(0, cp, &[b]);
        }
        rt.target_exit_data(0, cp, &[map(odp_model::MapType::From, b)]);
    }
    rt.finish();

    let trace = handle.take_trace();
    (
        trace.data_op_events_sorted().to_vec(),
        trace.kernel_events_sorted().to_vec(),
    )
}

#[test]
fn fault_profile_traces_stay_byte_identical_through_the_reorder_pipeline() {
    for profile in [
        FaultProfile::Lossy,
        FaultProfile::Hostile,
        FaultProfile::Stalled,
        FaultProfile::Oom,
    ] {
        for seed in [7u64, 42] {
            let (ops, kernels) = faulty_trace(profile, seed);
            let sharded = shard_partition(&ops, &kernels, 3, seed ^ 0x5EED);
            assert_interleaving_matches_postmortem(
                &sharded.ops,
                &sharded.kernels,
                &sharded.shard_events,
                1,
                seed.wrapping_mul(31) | 1,
                &format!("{profile:?} seed {seed}"),
            );
        }
    }
}
