//! Differential tests for the streaming engine: finalize output must be
//! **byte-identical** (exact JSON equality) to [`Findings::detect`] on
//! randomized traces — with events delivered the way a real run
//! delivers them: in *completion* order, gated by the open-operation
//! watermark, not in the chronological order the detectors consume.
//!
//! The trace generator is shared with the fused suite (`common/mod.rs`),
//! so both engines face identical event distributions.

mod common;

use common::random_trace;
use odp_model::{DataOpEvent, SimTime, TargetEvent};
use ompdataperf::detect::{EventView, Findings, StreamConfig, StreamingEngine};

/// One deliverable event in arrival (completion) order.
enum Arrival {
    Op(DataOpEvent),
    Kernel(TargetEvent),
}

impl Arrival {
    fn start(&self) -> SimTime {
        match self {
            Arrival::Op(e) => e.span.start,
            Arrival::Kernel(k) => k.span.start,
        }
    }

    fn end_key(&self) -> (SimTime, u64) {
        match self {
            Arrival::Op(e) => (e.span.end, e.id.0),
            Arrival::Kernel(k) => (k.span.end, k.id.0),
        }
    }
}

/// Deliver the trace to the engine exactly as the tool would: events
/// arrive when they *complete*; after each arrival the watermark is the
/// earliest begin time among operations still open (here: events that
/// have begun but not yet arrived), clamped to the current time.
fn feed_completion_order(
    engine: &mut StreamingEngine,
    ops: &[DataOpEvent],
    kernels: &[TargetEvent],
) {
    let mut arrivals: Vec<Arrival> = ops.iter().cloned().map(Arrival::Op).collect();
    arrivals.extend(kernels.iter().cloned().map(Arrival::Kernel));
    arrivals.sort_by_key(Arrival::end_key);

    // suffix_min_start[i] = earliest start among arrivals i.. (the ops
    // still "open" once everything before i has been delivered).
    let mut suffix_min_start: Vec<SimTime> = vec![SimTime(u64::MAX); arrivals.len() + 1];
    for i in (0..arrivals.len()).rev() {
        suffix_min_start[i] = suffix_min_start[i + 1].min(arrivals[i].start());
    }

    for (i, arrival) in arrivals.into_iter().enumerate() {
        let now = arrival.end_key().0;
        match arrival {
            Arrival::Op(e) => engine.push_data_op(e),
            Arrival::Kernel(k) => engine.push_target(k),
        }
        // Open ops pin the watermark one tick below their begin (they
        // will emit an event at that start; see StreamClock::watermark).
        let open_floor = SimTime(suffix_min_start[i + 1].0.saturating_sub(1));
        engine.advance_watermark(now.min(open_floor));
    }
}

fn assert_streaming_identical(
    ops: &[DataOpEvent],
    kernels: &[TargetEvent],
    num_devices: u32,
    fixed: bool,
    ctx: &str,
) {
    let mut engine = StreamingEngine::new(StreamConfig {
        num_devices: fixed.then_some(num_devices),
    });
    feed_completion_order(&mut engine, ops, kernels);
    let view = EventView::new(ops, kernels, num_devices);
    let streamed = engine.finalize(&view);
    let postmortem = Findings::detect(ops, kernels, num_devices);
    assert_eq!(
        streamed.counts(),
        postmortem.counts(),
        "issue counts diverge ({ctx})"
    );
    assert_eq!(
        serde_json::to_string_pretty(&streamed).unwrap(),
        serde_json::to_string_pretty(&postmortem).unwrap(),
        "findings diverge ({ctx})"
    );
    assert_eq!(
        engine.live_counts(),
        postmortem.counts(),
        "live counts must agree with materialized counts ({ctx})"
    );
}

#[test]
fn streaming_equals_postmortem_on_random_traces() {
    for seed in 1..=40u64 {
        let (ops, kernels) = random_trace(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15), 300, 2);
        assert_streaming_identical(&ops, &kernels, 2, false, &format!("seed {seed}"));
    }
}

#[test]
fn streaming_equals_postmortem_on_large_trace() {
    let (ops, kernels) = random_trace(0xDEAD_BEEF, 20_000, 3);
    assert_streaming_identical(&ops, &kernels, 3, false, "large trace");
}

#[test]
fn streaming_equals_postmortem_with_single_device_pool() {
    // One device + tiny hash pool: maximal duplicate / round-trip churn,
    // the worst case for Algorithm 2's lookahead window.
    for seed in [3u64, 17, 99] {
        let (ops, kernels) = random_trace(seed, 500, 1);
        assert_streaming_identical(&ops, &kernels, 1, false, &format!("dense seed {seed}"));
    }
}

#[test]
fn streaming_equals_postmortem_on_kernel_free_trace() {
    // No kernels at all: Algorithms 4/5 can decide nothing before
    // finalize — the entire per-device pending state reconciles there.
    let (ops, _) = random_trace(0x5EED, 400, 2);
    assert_streaming_identical(&ops, &[], 2, false, "kernel-free");
}

#[test]
fn streaming_equals_postmortem_on_empty_trace() {
    assert_streaming_identical(&[], &[], 1, false, "empty");
}

#[test]
fn streaming_equals_postmortem_with_out_of_range_devices() {
    // Fixed-device mode: events naming devices beyond the configured
    // count must be excluded exactly as the post-mortem view excludes
    // them — and counted, not silently dropped.
    let (ops, kernels) = random_trace(0xABCD, 300, 4);
    assert_streaming_identical(&ops, &kernels, 2, true, "undercounted devices");

    let mut engine = StreamingEngine::new(StreamConfig {
        num_devices: Some(2),
    });
    feed_completion_order(&mut engine, &ops, &kernels);
    let view = EventView::new(&ops, &kernels, 2);
    let _ = engine.finalize(&view);
    assert_eq!(
        engine.out_of_range(),
        view.out_of_range(),
        "streaming and post-mortem must count identical exclusions"
    );
    assert!(engine.out_of_range().total() > 0);
}

#[test]
fn streaming_in_chronological_delivery_matches_too() {
    // Degraded (begin-only) runtimes deliver events already in start
    // order with an always-current watermark: the reorder buffer should
    // pass everything straight through.
    for seed in [5u64, 23] {
        let (ops, kernels) = random_trace(seed, 400, 2);
        let mut engine = StreamingEngine::default();
        let mut merged: Vec<(SimTime, u64, bool, usize)> = Vec::new();
        for (i, e) in ops.iter().enumerate() {
            merged.push((e.span.start, e.id.0, false, i));
        }
        for (i, k) in kernels.iter().enumerate() {
            merged.push((k.span.start, k.id.0, true, i));
        }
        merged.sort_by_key(|&(start, id, _, _)| (start, id));
        for &(start, _, is_kernel, i) in &merged {
            if is_kernel {
                engine.push_target(kernels[i].clone());
            } else {
                engine.push_data_op(ops[i].clone());
            }
            engine.advance_watermark(start);
        }
        assert_eq!(
            engine.buffer_stats().buffered_now,
            0,
            "chronological delivery must not accumulate"
        );
        let view = EventView::new(&ops, &kernels, 2);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect(&ops, &kernels, 2);
        assert_eq!(
            serde_json::to_string_pretty(&streamed).unwrap(),
            serde_json::to_string_pretty(&postmortem).unwrap(),
            "chronological seed {seed}"
        );
    }
}

#[test]
fn steady_state_memory_is_independent_of_trace_length() {
    // The acceptance criterion: Algorithm 2's lookahead buffer (and the
    // other windows) must not grow with trace length for steady-state
    // workloads. Build an iterative ping-pong — content leaves and
    // returns each iteration, kernels keep every cursor moving — at 1×
    // and 10× length and compare high-water marks.
    fn run(iters: usize) -> (ompdataperf::detect::StreamBufferStats, usize) {
        use odp_model::{CodePtr, DataOpKind, DeviceId, EventId, HashVal, TargetKind, TimeSpan};
        let mut ops = Vec::new();
        let mut kernels = Vec::new();
        let mut id = 0u64;
        #[allow(clippy::too_many_arguments)]
        fn next(
            id: &mut u64,
            v: &mut Vec<DataOpEvent>,
            kind: DataOpKind,
            src: DeviceId,
            dest: DeviceId,
            hash: Option<HashVal>,
            t0: u64,
            t1: u64,
        ) {
            v.push(DataOpEvent {
                id: EventId(*id),
                kind,
                src_device: src,
                dest_device: dest,
                src_addr: 0x1000,
                dest_addr: 0xd000,
                bytes: 64,
                hash,
                span: TimeSpan::new(SimTime(t0), SimTime(t1)),
                codeptr: CodePtr(0x1),
            });
            *id += 1;
        }
        for i in 0..iters as u64 {
            let t = i * 100;
            let host = DeviceId::HOST;
            let dev = DeviceId::target(0);
            next(
                &mut id,
                &mut ops,
                DataOpKind::Alloc,
                host,
                dev,
                None,
                t,
                t + 5,
            );
            next(
                &mut id,
                &mut ops,
                DataOpKind::Transfer,
                host,
                dev,
                Some(HashVal(7)),
                t + 10,
                t + 20,
            );
            kernels.push(TargetEvent {
                id: EventId(id),
                device: dev,
                kind: TargetKind::Kernel,
                span: TimeSpan::new(SimTime(t + 30), SimTime(t + 60)),
                codeptr: CodePtr(0x2),
            });
            id += 1;
            next(
                &mut id,
                &mut ops,
                DataOpKind::Transfer,
                dev,
                host,
                Some(HashVal(7)),
                t + 70,
                t + 80,
            );
            next(
                &mut id,
                &mut ops,
                DataOpKind::Delete,
                host,
                dev,
                None,
                t + 85,
                t + 90,
            );
        }
        let mut engine = StreamingEngine::default();
        feed_completion_order(&mut engine, &ops, &kernels);
        let stats = engine.buffer_stats();
        let view = EventView::new(&ops, &kernels, 1);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect(&ops, &kernels, 1);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap()
        );
        (stats, ops.len() + kernels.len())
    }
    let (small, small_events) = run(100);
    let (large, large_events) = run(1_000);
    assert!(large_events >= 10 * small_events - 10);
    assert_eq!(
        small.frontier_peak, large.frontier_peak,
        "Algorithm 2's window grew with trace length: {small:?} vs {large:?}"
    );
    assert_eq!(small.buffered_peak, large.buffered_peak);
    assert_eq!(small.device_pending_peak, large.device_pending_peak);
    assert!(large.frontier_peak <= 4, "{large:?}");
}
