//! Differential tests for the streaming engine: finalize output must be
//! **byte-identical** (exact JSON equality) to [`Findings::detect`] on
//! randomized traces — with events delivered the way a real run
//! delivers them: in *completion* order, gated by the open-operation
//! watermark, not in the chronological order the detectors consume.
//!
//! The trace generator is shared with the fused suite (`common/mod.rs`),
//! so both engines face identical event distributions.

mod common;

use common::{random_trace, shard_partition, Rng};
use odp_model::{DataOpEvent, SimTime, TargetEvent};
use odp_ompt::{GlobalWatermark, StreamClock};
use ompdataperf::detect::{EventView, Findings, StreamConfig, StreamEvent, StreamingEngine};

/// One deliverable event in arrival (completion) order.
enum Arrival {
    Op(DataOpEvent),
    Kernel(TargetEvent),
}

impl Arrival {
    fn start(&self) -> SimTime {
        match self {
            Arrival::Op(e) => e.span.start,
            Arrival::Kernel(k) => k.span.start,
        }
    }

    fn end_key(&self) -> (SimTime, u64) {
        match self {
            Arrival::Op(e) => (e.span.end, e.id.0),
            Arrival::Kernel(k) => (k.span.end, k.id.0),
        }
    }
}

/// Deliver the trace to the engine exactly as the tool would: events
/// arrive when they *complete*; after each arrival the watermark is the
/// earliest begin time among operations still open (here: events that
/// have begun but not yet arrived), clamped to the current time.
fn feed_completion_order(
    engine: &mut StreamingEngine,
    ops: &[DataOpEvent],
    kernels: &[TargetEvent],
) {
    let mut arrivals: Vec<Arrival> = ops.iter().cloned().map(Arrival::Op).collect();
    arrivals.extend(kernels.iter().cloned().map(Arrival::Kernel));
    arrivals.sort_by_key(Arrival::end_key);

    // suffix_min_start[i] = earliest start among arrivals i.. (the ops
    // still "open" once everything before i has been delivered).
    let mut suffix_min_start: Vec<SimTime> = vec![SimTime(u64::MAX); arrivals.len() + 1];
    for i in (0..arrivals.len()).rev() {
        suffix_min_start[i] = suffix_min_start[i + 1].min(arrivals[i].start());
    }

    for (i, arrival) in arrivals.into_iter().enumerate() {
        let now = arrival.end_key().0;
        match arrival {
            Arrival::Op(e) => engine.push_data_op(e),
            Arrival::Kernel(k) => engine.push_target(k),
        }
        // Open ops pin the watermark one tick below their begin (they
        // will emit an event at that start; see StreamClock::watermark).
        let open_floor = SimTime(suffix_min_start[i + 1].0.saturating_sub(1));
        engine.advance_watermark(now.min(open_floor));
    }
}

fn assert_streaming_identical(
    ops: &[DataOpEvent],
    kernels: &[TargetEvent],
    num_devices: u32,
    fixed: bool,
    ctx: &str,
) {
    let mut engine = StreamingEngine::new(StreamConfig {
        num_devices: fixed.then_some(num_devices),
        ..Default::default()
    });
    feed_completion_order(&mut engine, ops, kernels);
    // Finalize against an explicitly columnar view: the reconciliation
    // pass must behave identically whether the view borrows caller
    // slices or owned columns (the merged-log path).
    let cols = odp_trace::ColumnarView::from_events(ops, kernels);
    let view = EventView::over(&cols, num_devices);
    let streamed = engine.finalize(&view);
    let postmortem = Findings::detect(ops, kernels, num_devices);
    assert_eq!(
        streamed.counts(),
        postmortem.counts(),
        "issue counts diverge ({ctx})"
    );
    assert_eq!(
        serde_json::to_string_pretty(&streamed).unwrap(),
        serde_json::to_string_pretty(&postmortem).unwrap(),
        "findings diverge ({ctx})"
    );
    assert_eq!(
        engine.live_counts(),
        postmortem.counts(),
        "live counts must agree with materialized counts ({ctx})"
    );
}

#[test]
fn streaming_equals_postmortem_on_random_traces() {
    for seed in 1..=40u64 {
        let (ops, kernels) = random_trace(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15), 300, 2);
        assert_streaming_identical(&ops, &kernels, 2, false, &format!("seed {seed}"));
    }
}

#[test]
fn streaming_equals_postmortem_on_large_trace() {
    let (ops, kernels) = random_trace(0xDEAD_BEEF, 20_000, 3);
    assert_streaming_identical(&ops, &kernels, 3, false, "large trace");
}

#[test]
fn streaming_equals_postmortem_with_single_device_pool() {
    // One device + tiny hash pool: maximal duplicate / round-trip churn,
    // the worst case for Algorithm 2's lookahead window.
    for seed in [3u64, 17, 99] {
        let (ops, kernels) = random_trace(seed, 500, 1);
        assert_streaming_identical(&ops, &kernels, 1, false, &format!("dense seed {seed}"));
    }
}

#[test]
fn streaming_equals_postmortem_on_kernel_free_trace() {
    // No kernels at all: Algorithms 4/5 can decide nothing before
    // finalize — the entire per-device pending state reconciles there.
    let (ops, _) = random_trace(0x5EED, 400, 2);
    assert_streaming_identical(&ops, &[], 2, false, "kernel-free");
}

#[test]
fn streaming_equals_postmortem_on_empty_trace() {
    assert_streaming_identical(&[], &[], 1, false, "empty");
}

#[test]
fn streaming_equals_postmortem_with_out_of_range_devices() {
    // Fixed-device mode: events naming devices beyond the configured
    // count must be excluded exactly as the post-mortem view excludes
    // them — and counted, not silently dropped.
    let (ops, kernels) = random_trace(0xABCD, 300, 4);
    assert_streaming_identical(&ops, &kernels, 2, true, "undercounted devices");

    let mut engine = StreamingEngine::new(StreamConfig {
        num_devices: Some(2),
        ..Default::default()
    });
    feed_completion_order(&mut engine, &ops, &kernels);
    let view = EventView::new(&ops, &kernels, 2);
    let _ = engine.finalize(&view);
    assert_eq!(
        engine.out_of_range(),
        view.out_of_range(),
        "streaming and post-mortem must count identical exclusions"
    );
    assert!(engine.out_of_range().total() > 0);
}

#[test]
fn streaming_in_chronological_delivery_matches_too() {
    // Degraded (begin-only) runtimes deliver events already in start
    // order with an always-current watermark: the reorder buffer should
    // pass everything straight through.
    for seed in [5u64, 23] {
        let (ops, kernels) = random_trace(seed, 400, 2);
        let mut engine = StreamingEngine::default();
        let mut merged: Vec<(SimTime, u64, bool, usize)> = Vec::new();
        for (i, e) in ops.iter().enumerate() {
            merged.push((e.span.start, e.id.0, false, i));
        }
        for (i, k) in kernels.iter().enumerate() {
            merged.push((k.span.start, k.id.0, true, i));
        }
        merged.sort_by_key(|&(start, id, _, _)| (start, id));
        for &(start, _, is_kernel, i) in &merged {
            if is_kernel {
                engine.push_target(kernels[i].clone());
            } else {
                engine.push_data_op(ops[i].clone());
            }
            engine.advance_watermark(start);
        }
        assert_eq!(
            engine.buffer_stats().buffered_now,
            0,
            "chronological delivery must not accumulate"
        );
        let view = EventView::new(&ops, &kernels, 2);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect(&ops, &kernels, 2);
        assert_eq!(
            serde_json::to_string_pretty(&streamed).unwrap(),
            serde_json::to_string_pretty(&postmortem).unwrap(),
            "chronological seed {seed}"
        );
    }
}

/// Deliver a sharded trace through per-shard [`StreamClock`]s and the
/// [`GlobalWatermark`] merge, interleaving the shards' callback edges
/// with a seeded rng — the single-threaded, perfectly reproducible twin
/// of the multi-threaded tool path (whose OS-scheduled interleavings
/// the stress suite covers). Each shard's edge stream stays monotonic,
/// as the per-thread OMPT clock guarantees; *across* shards anything
/// goes.
fn feed_sharded_interleaved(
    engine: &mut StreamingEngine,
    shard_events: &[Vec<StreamEvent>],
    interleave_seed: u64,
) {
    #[derive(Clone, Copy)]
    enum Edge {
        Begin(usize),
        End(usize),
    }
    // Per shard: callback edges in per-thread time order.
    let edges: Vec<Vec<(u64, u8, Edge)>> = shard_events
        .iter()
        .map(|events| {
            let mut v = Vec::with_capacity(events.len() * 2);
            for (ix, ev) in events.iter().enumerate() {
                let (start, end) = match ev {
                    StreamEvent::Op(e) => (e.span.start.0, e.span.end.0),
                    StreamEvent::Kernel(k) => (k.span.start.0, k.span.end.0),
                };
                v.push((start, 0, Edge::Begin(ix)));
                v.push((end, 1, Edge::End(ix)));
            }
            v.sort_by_key(|&(t, kind, edge)| {
                (
                    t,
                    kind,
                    match edge {
                        Edge::Begin(ix) | Edge::End(ix) => ix,
                    },
                )
            });
            v
        })
        .collect();

    let shards = shard_events.len();
    let global = GlobalWatermark::with_capacity(shards);
    let slots: Vec<_> = (0..shards).map(|_| global.register()).collect();
    let mut clocks = vec![StreamClock::new(); shards];
    let mut pending: Vec<Vec<StreamEvent>> = vec![Vec::new(); shards];
    let mut cursors = vec![0usize; shards];
    let mut rng = Rng::new(interleave_seed | 1);
    let mut remaining: usize = edges.iter().map(|e| e.len()).sum();

    while remaining > 0 {
        // Pick any shard that still has edges — the interleaving is the
        // randomized part.
        let mut s = rng.below(shards as u64) as usize;
        while cursors[s] >= edges[s].len() {
            s = (s + 1) % shards;
        }
        let (t, _, edge) = edges[s][cursors[s]];
        cursors[s] += 1;
        remaining -= 1;
        match edge {
            Edge::Begin(_) => {
                clocks[s].open(SimTime(t));
                global.publish(slots[s], &clocks[s]);
            }
            Edge::End(ix) => {
                let ev = shard_events[s][ix].clone();
                let start = match &ev {
                    StreamEvent::Op(e) => e.span.start,
                    StreamEvent::Kernel(k) => k.span.start,
                };
                clocks[s].close(start, SimTime(t));
                // The tool's contract: queue the event, then publish,
                // then drain at the merged watermark.
                pending[s].push(ev);
                global.publish(slots[s], &clocks[s]);
                let watermark = global.merged();
                for queue in pending.iter_mut() {
                    for ev in queue.drain(..) {
                        engine.push(ev);
                    }
                }
                if let Some(watermark) = watermark {
                    engine.advance_watermark(watermark);
                }
            }
        }
    }
    for slot in &slots {
        global.retire(*slot);
    }
}

#[test]
fn streaming_equals_postmortem_under_randomized_thread_interleavings() {
    for seed in [1u64, 7, 23, 77, 1234] {
        for shards in [2usize, 3, 5] {
            let (ops, kernels) = random_trace(seed.wrapping_mul(0x5DEECE66D) | 1, 400, 2);
            let st = shard_partition(&ops, &kernels, shards, seed);
            let mut engine = StreamingEngine::default();
            feed_sharded_interleaved(&mut engine, &st.shard_events, seed ^ 0xF00D);
            let view = EventView::new(&st.ops, &st.kernels, 2);
            let streamed = engine.finalize(&view);
            let postmortem = Findings::detect(&st.ops, &st.kernels, 2);
            assert_eq!(
                serde_json::to_string_pretty(&streamed).unwrap(),
                serde_json::to_string_pretty(&postmortem).unwrap(),
                "interleaved shards diverged (seed {seed}, {shards} shards)"
            );
            assert_eq!(engine.live_counts(), postmortem.counts());
        }
    }
}

#[test]
fn sharded_delivery_is_insensitive_to_the_interleaving_choice() {
    // Same sharded trace, many different interleavings: finalize output
    // must be identical every time (and equal to post-mortem).
    let (ops, kernels) = random_trace(0xC0FFEE, 300, 2);
    let st = shard_partition(&ops, &kernels, 4, 9);
    let reference =
        serde_json::to_string_pretty(&Findings::detect(&st.ops, &st.kernels, 2)).unwrap();
    for interleave in [1u64, 2, 3, 99, 4096] {
        let mut engine = StreamingEngine::default();
        feed_sharded_interleaved(&mut engine, &st.shard_events, interleave);
        let view = EventView::new(&st.ops, &st.kernels, 2);
        let streamed = engine.finalize(&view);
        assert_eq!(
            serde_json::to_string_pretty(&streamed).unwrap(),
            reference,
            "interleaving {interleave} changed the output"
        );
    }
}

#[test]
fn steady_state_memory_is_independent_of_trace_length() {
    // The acceptance criterion: Algorithm 2's lookahead buffer (and the
    // other windows) must not grow with trace length for steady-state
    // workloads. Build an iterative ping-pong — content leaves and
    // returns each iteration, kernels keep every cursor moving — at 1×
    // and 10× length and compare high-water marks.
    fn run(iters: usize) -> (ompdataperf::detect::StreamBufferStats, usize) {
        use odp_model::{CodePtr, DataOpKind, DeviceId, EventId, HashVal, TargetKind, TimeSpan};
        let mut ops = Vec::new();
        let mut kernels = Vec::new();
        let mut id = 0u64;
        #[allow(clippy::too_many_arguments)]
        fn next(
            id: &mut u64,
            v: &mut Vec<DataOpEvent>,
            kind: DataOpKind,
            src: DeviceId,
            dest: DeviceId,
            hash: Option<HashVal>,
            t0: u64,
            t1: u64,
        ) {
            v.push(DataOpEvent {
                id: EventId(*id),
                kind,
                src_device: src,
                dest_device: dest,
                src_addr: 0x1000,
                dest_addr: 0xd000,
                bytes: 64,
                hash,
                span: TimeSpan::new(SimTime(t0), SimTime(t1)),
                codeptr: CodePtr(0x1),
            });
            *id += 1;
        }
        for i in 0..iters as u64 {
            let t = i * 100;
            let host = DeviceId::HOST;
            let dev = DeviceId::target(0);
            next(
                &mut id,
                &mut ops,
                DataOpKind::Alloc,
                host,
                dev,
                None,
                t,
                t + 5,
            );
            next(
                &mut id,
                &mut ops,
                DataOpKind::Transfer,
                host,
                dev,
                Some(HashVal(7)),
                t + 10,
                t + 20,
            );
            kernels.push(TargetEvent {
                id: EventId(id),
                device: dev,
                kind: TargetKind::Kernel,
                span: TimeSpan::new(SimTime(t + 30), SimTime(t + 60)),
                codeptr: CodePtr(0x2),
            });
            id += 1;
            next(
                &mut id,
                &mut ops,
                DataOpKind::Transfer,
                dev,
                host,
                Some(HashVal(7)),
                t + 70,
                t + 80,
            );
            next(
                &mut id,
                &mut ops,
                DataOpKind::Delete,
                host,
                dev,
                None,
                t + 85,
                t + 90,
            );
        }
        let mut engine = StreamingEngine::default();
        feed_completion_order(&mut engine, &ops, &kernels);
        let stats = engine.buffer_stats();
        let view = EventView::new(&ops, &kernels, 1);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect(&ops, &kernels, 1);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&postmortem).unwrap()
        );
        (stats, ops.len() + kernels.len())
    }
    let (small, small_events) = run(100);
    let (large, large_events) = run(1_000);
    assert!(large_events >= 10 * small_events - 10);
    assert_eq!(
        small.frontier_peak, large.frontier_peak,
        "Algorithm 2's window grew with trace length: {small:?} vs {large:?}"
    );
    assert_eq!(small.buffered_peak, large.buffered_peak);
    assert_eq!(small.device_pending_peak, large.device_pending_peak);
    assert!(large.frontier_peak <= 4, "{large:?}");
}
