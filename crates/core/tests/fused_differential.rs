//! Differential tests: the fused single-pass engine must produce
//! **byte-identical** findings to the five standalone reference
//! detectors — group order, event order within groups, reasons, issue
//! counts — on randomized chronological traces.
//!
//! Generation is fully deterministic (seeded xorshift64*, no wall clock
//! or OS entropy): a failing seed reproduces forever.

use odp_model::{
    CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, HashVal, SimTime, TargetEvent, TargetKind,
    TimeSpan,
};
use ompdataperf::detect::{EventView, Findings};

/// xorshift64* with splittable seeding.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// Build a random chronological trace. Small pools of addresses, hashes,
/// and devices force every collision class the detectors key on:
/// duplicate receptions, round trips, address reuse with matching and
/// mismatching sizes, interleaved kernels, overlapping spans, and
/// identical start times (tie-broken by log order, which the sort
/// preserves via `EventId`).
fn random_trace(seed: u64, len: usize, num_devices: u32) -> (Vec<DataOpEvent>, Vec<TargetEvent>) {
    let mut rng = Rng::new(seed);
    let mut data_ops = Vec::new();
    let mut kernels = Vec::new();
    let mut t = 0u64;
    for id in 0..len as u64 {
        // Occasionally reuse the same start time to exercise tie-breaks;
        // occasionally jump to create kernel-free gaps.
        match rng.below(10) {
            0 => {}
            1..=7 => t += 1 + rng.below(12),
            _ => t += 40 + rng.below(60),
        }
        let dur = rng.below(25);
        let span = TimeSpan::new(SimTime(t), SimTime(t + dur));
        let dev = DeviceId::target(rng.below(num_devices as u64) as u32);
        let haddr = 0x1000 + rng.below(5) * 0x100;
        let daddr = 0xd000 + rng.below(5) * 0x100;
        let bytes = 64 << rng.below(3);
        let hash = HashVal(rng.below(6));
        let codeptr = CodePtr(0x400_000 + rng.below(4) * 0x10);
        match rng.below(12) {
            0..=3 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: DataOpKind::Transfer,
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: Some(hash),
                span,
                codeptr,
            }),
            4..=6 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: DataOpKind::Transfer,
                src_device: dev,
                dest_device: DeviceId::HOST,
                src_addr: daddr,
                dest_addr: haddr,
                bytes,
                hash: Some(hash),
                span,
                codeptr,
            }),
            7 => data_ops.push(DataOpEvent {
                id: EventId(id),
                // A hashless transfer (e.g. degraded-mode zero-length
                // payload): ignored by Algorithms 1/2, seen by 5.
                kind: DataOpKind::Transfer,
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span,
                codeptr,
            }),
            8 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: DataOpKind::Alloc,
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span,
                codeptr,
            }),
            9 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: DataOpKind::Delete,
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span,
                codeptr,
            }),
            10 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: if rng.below(2) == 0 {
                    DataOpKind::Associate
                } else {
                    DataOpKind::Disassociate
                },
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span,
                codeptr,
            }),
            _ => kernels.push(TargetEvent {
                id: EventId(id),
                device: dev,
                kind: TargetKind::Kernel,
                span,
                codeptr,
            }),
        }
    }
    // The detectors' precondition: chronological by (start, log order).
    data_ops.sort_by_key(|e| (e.span.start, e.id));
    kernels.sort_by_key(|e| (e.span.start, e.id));
    (data_ops, kernels)
}

/// Exact equality through the canonical JSON rendering: covers every
/// field of every finding and the order of everything.
fn assert_identical(ops: &[DataOpEvent], kernels: &[TargetEvent], num_devices: u32, ctx: &str) {
    let view = EventView::new(ops, kernels, num_devices);
    let fused = Findings::detect_fused(&view);
    let separate = Findings::detect_separate(ops, kernels, num_devices);
    assert_eq!(
        fused.counts(),
        separate.counts(),
        "issue counts diverge ({ctx})"
    );
    assert_eq!(
        serde_json::to_string_pretty(&fused).unwrap(),
        serde_json::to_string_pretty(&separate).unwrap(),
        "findings diverge ({ctx})"
    );
}

#[test]
fn fused_equals_separate_on_random_traces() {
    for seed in 1..=40u64 {
        let (ops, kernels) = random_trace(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15), 300, 2);
        assert_identical(&ops, &kernels, 2, &format!("seed {seed}"));
    }
}

#[test]
fn fused_equals_separate_on_large_trace() {
    let (ops, kernels) = random_trace(0xDEAD_BEEF, 20_000, 3);
    assert_identical(&ops, &kernels, 3, "large trace");
}

#[test]
fn fused_equals_separate_with_single_device_pool() {
    // One device + tiny hash pool: maximal duplicate / round-trip churn.
    for seed in [3u64, 17, 99] {
        let (ops, kernels) = random_trace(seed, 500, 1);
        assert_identical(&ops, &kernels, 1, &format!("dense seed {seed}"));
    }
}

#[test]
fn fused_equals_separate_on_kernel_free_trace() {
    // No kernels at all: Algorithm 4 flags every allocation, Algorithm 5
    // every device-bound transfer.
    let (ops, _) = random_trace(0x5EED, 400, 2);
    assert_identical(&ops, &[], 2, "kernel-free");
}

#[test]
fn fused_equals_separate_on_empty_trace() {
    assert_identical(&[], &[], 1, "empty");
}

#[test]
fn indexed_counts_match_materialized_counts() {
    use ompdataperf::detect::engine::detect_indexed;
    for seed in [7u64, 21, 63] {
        let (ops, kernels) = random_trace(seed, 600, 2);
        let view = EventView::new(&ops, &kernels, 2);
        let indexed = detect_indexed(&view);
        let materialized = indexed.resolve(&view);
        assert_eq!(indexed.counts(&view), materialized.counts());
    }
}

#[test]
fn device_count_overflow_is_handled_identically() {
    // Events naming devices beyond num_devices: both paths must ignore
    // them in the per-device algorithms the same way.
    let (ops, kernels) = random_trace(0xABCD, 300, 4);
    assert_identical(&ops, &kernels, 2, "undercounted devices");
}
