//! Differential tests: the fused single-pass engine must produce
//! **byte-identical** findings to the five standalone reference
//! detectors — group order, event order within groups, reasons, issue
//! counts — on randomized chronological traces.
//!
//! The trace generator (seeded xorshift64*, fully deterministic) is
//! shared with the streaming suite — see `common/mod.rs`.

mod common;

use common::{random_trace, shard_partition};
use odp_model::{DataOpEvent, TargetEvent};
use odp_trace::ColumnarView;
use ompdataperf::detect::{EventView, Findings};

/// Exact equality through the canonical JSON rendering: covers every
/// field of every finding and the order of everything. Runs the fused
/// sweep twice — over the slice-backed view and over an explicitly
/// columnar one — so the borrowed and owned column paths both stay
/// pinned to the row reference passes.
fn assert_identical(ops: &[DataOpEvent], kernels: &[TargetEvent], num_devices: u32, ctx: &str) {
    let view = EventView::new(ops, kernels, num_devices);
    let fused = Findings::detect_fused(&view);
    let separate = Findings::detect_separate(ops, kernels, num_devices);
    assert_eq!(
        fused.counts(),
        separate.counts(),
        "issue counts diverge ({ctx})"
    );
    assert_eq!(
        serde_json::to_string_pretty(&fused).unwrap(),
        serde_json::to_string_pretty(&separate).unwrap(),
        "findings diverge ({ctx})"
    );
    let cols = ColumnarView::from_events(ops, kernels);
    let fused_columnar = Findings::detect_fused(&EventView::over(&cols, num_devices));
    assert_eq!(
        serde_json::to_string_pretty(&fused_columnar).unwrap(),
        serde_json::to_string_pretty(&separate).unwrap(),
        "columnar-view findings diverge ({ctx})"
    );
}

#[test]
fn fused_equals_separate_on_random_traces() {
    for seed in 1..=40u64 {
        let (ops, kernels) = random_trace(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15), 300, 2);
        assert_identical(&ops, &kernels, 2, &format!("seed {seed}"));
    }
}

#[test]
fn fused_equals_separate_on_large_trace() {
    let (ops, kernels) = random_trace(0xDEAD_BEEF, 20_000, 3);
    assert_identical(&ops, &kernels, 3, "large trace");
}

#[test]
fn fused_equals_separate_with_single_device_pool() {
    // One device + tiny hash pool: maximal duplicate / round-trip churn.
    for seed in [3u64, 17, 99] {
        let (ops, kernels) = random_trace(seed, 500, 1);
        assert_identical(&ops, &kernels, 1, &format!("dense seed {seed}"));
    }
}

#[test]
fn fused_equals_separate_on_kernel_free_trace() {
    // No kernels at all: Algorithm 4 flags every allocation, Algorithm 5
    // every device-bound transfer.
    let (ops, _) = random_trace(0x5EED, 400, 2);
    assert_identical(&ops, &[], 2, "kernel-free");
}

#[test]
fn fused_equals_separate_on_empty_trace() {
    assert_identical(&[], &[], 1, "empty");
}

#[test]
fn fused_equals_separate_on_sharded_thread_traces() {
    // Multi-threaded collection re-encodes event ids as (shard <<
    // 32 | per-shard seq) and merges streams by (start, id). Both
    // engines must agree on that id space exactly as they do on the
    // contiguous one — across different thread counts and partition
    // seeds (the randomized interleaving of recording threads).
    for seed in [5u64, 29, 4242] {
        for shards in [2usize, 4, 7] {
            let (ops, kernels) = random_trace(seed.wrapping_mul(0xB5), 400, 2);
            let st = shard_partition(&ops, &kernels, shards, seed);
            assert_eq!(st.ops.len(), ops.len(), "partition loses nothing");
            assert_identical(
                &st.ops,
                &st.kernels,
                2,
                &format!("sharded seed {seed}, {shards} threads"),
            );
        }
    }
}

#[test]
fn indexed_counts_match_materialized_counts() {
    use ompdataperf::detect::engine::detect_indexed;
    for seed in [7u64, 21, 63] {
        let (ops, kernels) = random_trace(seed, 600, 2);
        let view = EventView::new(&ops, &kernels, 2);
        let indexed = detect_indexed(&view);
        let materialized = indexed.resolve(&view);
        assert_eq!(indexed.counts(&view), materialized.counts());
    }
}

#[test]
fn device_count_overflow_is_handled_identically() {
    // Events naming devices beyond num_devices: both paths must ignore
    // them in the per-device algorithms the same way — and the view must
    // *count* what it excluded instead of dropping it silently, so
    // callers can surface the skew as a warning.
    let (ops, kernels) = random_trace(0xABCD, 300, 4);
    assert_identical(&ops, &kernels, 2, "undercounted devices");

    let view = EventView::new(&ops, &kernels, 2);
    let dropped = view.out_of_range();
    assert!(
        dropped.total() > 0,
        "a 4-device trace analyzed as 2 devices must drop something"
    );
    assert!(dropped.kernels > 0 && dropped.transfers > 0 && dropped.allocs > 0);
    let warning = dropped.warning(2).expect("non-zero drops must warn");
    assert!(warning.contains("Algorithms 4/5"), "{warning}");

    // A correctly sized view drops nothing and stays silent.
    let full = EventView::new(&ops, &kernels, 4);
    assert_eq!(full.out_of_range().total(), 0);
    assert!(full.out_of_range().warning(4).is_none());
}
