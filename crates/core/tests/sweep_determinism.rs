//! Determinism suite for the partitioned post-mortem sweep: the fused
//! detectors fan out across `std::thread::scope` workers (Algorithms
//! 4/5 partitioned by device, 1/3 by host address, 2 by hash), and the
//! index-ordered merge must make the worker count *unobservable* —
//! byte-identical findings for every thread count, on every trace.
//!
//! CI additionally re-runs the differential suites with
//! `ODP_SWEEP_THREADS=4`, so every byte-identity oracle in this
//! directory doubles as a parallel-sweep oracle there.

mod common;

use common::{random_trace, shard_partition};
use odp_model::{DataOpEvent, TargetEvent};
use ompdataperf::detect::{detect_with, set_sweep_threads, sweep_threads, EventView, Findings};

/// The oracle: worker counts 2/4/8 (and one absurdly oversubscribed
/// count) must reproduce the sequential sweep bit for bit.
fn assert_thread_count_unobservable(
    ops: &[DataOpEvent],
    kernels: &[TargetEvent],
    num_devices: u32,
    ctx: &str,
) {
    let view = EventView::new(ops, kernels, num_devices);
    let sequential = detect_with(&view, 1);
    let sequential_json = serde_json::to_string_pretty(&sequential).unwrap();
    for workers in [2usize, 4, 8, 33] {
        let parallel = detect_with(&view, workers);
        assert_eq!(
            sequential.counts(),
            parallel.counts(),
            "issue counts diverge at {workers} workers ({ctx})"
        );
        assert_eq!(
            sequential_json,
            serde_json::to_string_pretty(&parallel).unwrap(),
            "findings diverge at {workers} workers ({ctx})"
        );
    }
    // The public entry point must agree too, whatever the process-wide
    // worker knob currently says.
    let default_path = Findings::detect(ops, kernels, num_devices);
    assert_eq!(
        sequential_json,
        serde_json::to_string_pretty(&default_path).unwrap(),
        "Findings::detect diverges from the sequential sweep ({ctx})"
    );
}

#[test]
fn parallel_sweep_is_deterministic_on_random_traces() {
    for seed in 1..=20u64 {
        let devices = 1 + (seed % 3) as u32;
        let (ops, kernels) = random_trace(seed.wrapping_mul(0xA076_1D64_78BD_642F), 400, devices);
        assert_thread_count_unobservable(
            &ops,
            &kernels,
            devices,
            &format!("seed {seed}, {devices} devices"),
        );
    }
}

#[test]
fn parallel_sweep_is_deterministic_on_large_trace() {
    let (ops, kernels) = random_trace(0xC0FF_EE00, 20_000, 3);
    assert_thread_count_unobservable(&ops, &kernels, 3, "large trace");
}

#[test]
fn parallel_sweep_is_deterministic_on_sharded_ids() {
    // Shard-encoded event ids (high 32 bits = shard) stress the
    // partition hashing: ids are no longer dense small integers.
    let (ops, kernels) = random_trace(0xBEE5_1E55, 2_000, 2);
    let sharded = shard_partition(&ops, &kernels, 4, 0x51AB);
    assert_thread_count_unobservable(&sharded.ops, &sharded.kernels, 2, "4-shard ids");
}

#[test]
fn parallel_sweep_handles_degenerate_traces() {
    // Empty trace: nothing to partition, nothing to merge.
    assert_thread_count_unobservable(&[], &[], 1, "empty trace");
    // Tiny trace with more workers than events.
    let (ops, kernels) = random_trace(7, 3, 1);
    assert_thread_count_unobservable(&ops, &kernels, 1, "3-event trace");
}

#[test]
fn sweep_thread_knob_round_trips() {
    // The process-wide knob feeds `detect()`; byte-identity makes the
    // setting unobservable in the findings, so flipping it here cannot
    // disturb the other tests in this binary.
    set_sweep_threads(4);
    assert_eq!(sweep_threads(), 4);
    let (ops, kernels) = random_trace(11, 300, 2);
    let view = EventView::new(&ops, &kernels, 2);
    let at_four = ompdataperf::detect::engine::detect(&view);
    let sequential = detect_with(&view, 1);
    assert_eq!(
        serde_json::to_string_pretty(&at_four).unwrap(),
        serde_json::to_string_pretty(&sequential).unwrap(),
    );
    // Clamped to >= 1: zero means "sequential", never "panic".
    set_sweep_threads(0);
    assert_eq!(sweep_threads(), 1);
}
