//! Concurrency and determinism suite for the fleet ingest service.
//!
//! Many producers submit serialized shard streams from real OS threads,
//! in seeded-shuffled arrival orders; the compacted corpus — run
//! reports, fleet rollup, and the exact JSON bytes — must be identical
//! whatever the schedule. CI runs this suite twice (free-running and
//! `RUST_TEST_THREADS=1`) so the internal threads race under both
//! harness regimes.
//!
//! Also pinned here: duplicate submissions are *accounted* (never
//! silently merged), a corrupt submission degrades its run's health
//! without poisoning the process or sibling runs, and the rollup counts
//! per-site run occurrences across runs.

mod common;

use common::Rng;
use odp_model::{CodePtr, DataOpKind, DeviceId, SimTime, TargetKind, TimeSpan, TraceHealth};
use odp_trace::{TraceArtifact, TraceLog};
use ompdataperf::fleet::{diff_corpora, Corpus, FindingKind, FleetIngest};
use proptest::prelude::*;

fn span(a: u64, b: u64) -> TimeSpan {
    TimeSpan::new(SimTime(a), SimTime(b))
}

/// Build one shard's trace log from a seeded generator. Small pools of
/// hashes, addresses, and code pointers force cross-shard duplicate
/// receptions and repeated allocations so compaction has real findings
/// to aggregate.
fn shard_log(seed: u64, shard: u32, ops: u64) -> TraceLog {
    let mut log = TraceLog::for_shard(shard);
    let mut rng = Rng::new(seed ^ (u64::from(shard) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut t = u64::from(shard); // skewed clocks across shards
    for i in 0..ops {
        t += 1 + rng.below(20);
        let dev = DeviceId::target(rng.below(2) as u32);
        let cp = CodePtr(0x400_000 + rng.below(4) * 0x10);
        let _ = match rng.below(8) {
            0 | 1 => log.record_data_op(
                DataOpKind::Alloc,
                DeviceId::HOST,
                dev,
                0x1000 + rng.below(3) * 0x100,
                0xd000,
                64 << rng.below(3),
                None,
                span(t, t + 2),
                cp,
            ),
            2 => log.record_data_op(
                DataOpKind::Transfer,
                dev,
                DeviceId::HOST,
                0xd000,
                0x1000 + rng.below(3) * 0x100,
                64,
                Some(rng.below(4)),
                span(t, t + 5),
                cp,
            ),
            _ => log.record_data_op(
                DataOpKind::Transfer,
                DeviceId::HOST,
                dev,
                0x1000 + rng.below(3) * 0x100,
                0xd000,
                64,
                Some(rng.below(4)),
                span(t, t + 5),
                cp,
            ),
        };
        if i % 3 == 0 {
            log.record_target(TargetKind::Kernel, dev, span(t + 6, t + 9), CodePtr(0x77));
        }
    }
    log
}

/// `(run_id, serialized shard)` pairs for `runs` runs × `shards` shards.
fn submissions(seed: u64, runs: usize, shards: u32, ops: u64) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for r in 0..runs {
        for s in 0..shards {
            let log = shard_log(seed ^ (r as u64) << 32, s, ops);
            let artifact =
                TraceArtifact::from_log(&log, &format!("prog-{r}"), TraceHealth::default());
            out.push((format!("run-{r}"), artifact.to_bytes()));
        }
    }
    out
}

/// Submit every pair from `threads` OS threads in a seeded-shuffled
/// order, compact, and return the corpus JSON.
fn corpus_json(pairs: &[(String, Vec<u8>)], threads: usize, order_seed: u64) -> String {
    let mut idx: Vec<usize> = (0..pairs.len()).collect();
    let mut rng = Rng::new(order_seed);
    for i in (1..idx.len()).rev() {
        idx.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let ingest = FleetIngest::new();
    let per = idx.len().div_ceil(threads).max(1);
    std::thread::scope(|sc| {
        for chunk in idx.chunks(per) {
            let ingest = &ingest;
            sc.spawn(move || {
                for &i in chunk {
                    ingest.submit(&pairs[i].0, pairs[i].1.clone());
                }
            });
        }
    });
    ingest.compact().to_json()
}

// ---------------------------------------------------------------------
// Pinned coverage
// ---------------------------------------------------------------------

#[test]
fn eight_writers_compact_identically_to_one() {
    let pairs = submissions(7, 3, 4, 60);
    let serial = corpus_json(&pairs, 1, 0);
    for (threads, order_seed) in [(2, 11), (4, 23), (8, 37), (8, 41)] {
        assert_eq!(
            corpus_json(&pairs, threads, order_seed),
            serial,
            "{threads} writers (order seed {order_seed}) diverged from serial ingest"
        );
    }
    // The corpus is real, not vacuously empty.
    let corpus = Corpus::from_json(&serial).expect("parse");
    assert_eq!(corpus.runs.len(), 3);
    assert!(
        corpus.fleet.entries.iter().any(|e| e.runs > 1),
        "seeded runs share sites; the rollup must count them across runs"
    );
    assert!(!corpus.fleet.entries.is_empty());
}

#[test]
fn duplicate_submissions_are_accounted_not_merged() {
    let log = shard_log(99, 0, 20);
    let events = (log.data_op_count() + log.target_count()) as u64;
    let bytes = TraceArtifact::from_log(&log, "dup", TraceHealth::default()).to_bytes();

    let ingest = FleetIngest::new();
    ingest.submit("run", bytes.clone());
    ingest.submit("run", bytes);
    let corpus = ingest.compact();
    assert_eq!(
        corpus.runs[0].health.duplicate_ids, events,
        "every id claimed twice must be counted exactly once as a duplicate"
    );
    assert!(corpus.runs[0].health.warning().is_some());
}

#[test]
fn corrupt_submission_degrades_its_run_only() {
    let good = TraceArtifact::from_log(&shard_log(5, 0, 30), "ok", TraceHealth::default());

    let ingest = FleetIngest::new();
    ingest.submit("healthy", good.to_bytes());
    ingest.submit("poisoned", good.to_bytes());
    ingest.submit("poisoned", b"definitely not a trace file".to_vec());
    let corpus = ingest.compact();

    let healthy = corpus
        .runs
        .iter()
        .find(|r| r.run_id == "healthy")
        .expect("run");
    let poisoned = corpus
        .runs
        .iter()
        .find(|r| r.run_id == "poisoned")
        .expect("run");
    assert!(healthy.health.is_clean(), "sibling run must stay clean");
    assert_eq!(
        poisoned.health.unreadable, 1,
        "garbage must surface as unreadable"
    );
    // The good shard in the poisoned run still contributes findings.
    assert_eq!(poisoned.counts, healthy.counts);
}

#[test]
fn rollup_keys_sites_stably_across_runs() {
    // Two runs with the identical trace: every fleet entry spans both
    // runs with doubled totals, and diffing the corpus against itself
    // reports everything persisting.
    let pairs = submissions(13, 2, 2, 40);
    let solo = {
        let ingest = FleetIngest::new();
        for (run, bytes) in &pairs[..2] {
            ingest.submit(run, bytes.clone());
        }
        ingest.compact()
    };
    let both = Corpus::from_json(&corpus_json(&pairs, 2, 3)).expect("parse");
    for entry in &both.fleet.entries {
        assert!(entry.runs >= 1 && entry.runs <= 2);
        assert!(matches!(
            entry.kind,
            FindingKind::DuplicateTransfer
                | FindingKind::RoundTrip
                | FindingKind::RepeatedAlloc
                | FindingKind::UnusedAlloc
                | FindingKind::UnusedTransfer
        ));
    }
    let d = diff_corpora(&both, &both);
    assert!(!d.is_regression());
    assert_eq!(d.persisting.len(), both.fleet.entries.len());
    assert!(d.new.is_empty() && d.fixed.is_empty());
    // Sanity: the one-run corpus is a subset of the two-run fleet.
    for e in &solo.fleet.entries {
        assert!(
            both.fleet
                .entries
                .iter()
                .any(|b| (b.codeptr, b.device, b.kind) == (e.codeptr, e.device, e.kind)),
            "run-0 site vanished from the two-run rollup"
        );
    }
}

// ---------------------------------------------------------------------
// Property: scheduling independence over the generator space
// ---------------------------------------------------------------------

proptest! {
    // Each case spins up to 3 ingest rounds with real threads; keep the
    // count CI-sized. The vendored proptest stand-in seeds its RNG from
    // the test name, so every run draws the same cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn corpus_is_schedule_independent(
        seed in 0u64..u64::MAX,
        runs in 1usize..4,
        shards in 1u32..5,
        ops in 1u64..50,
        threads in 2usize..9,
        order_seed in 0u64..u64::MAX,
    ) {
        let pairs = submissions(seed, runs, shards, ops);
        let serial = corpus_json(&pairs, 1, 0);
        let threaded = corpus_json(&pairs, threads, order_seed);
        prop_assert_eq!(&threaded, &serial, "threaded ingest diverged from serial");
        let corpus = Corpus::from_json(&serial).expect("parse");
        prop_assert_eq!(corpus.runs.len(), runs);
        prop_assert_eq!(corpus.to_json(), serial);
    }
}
