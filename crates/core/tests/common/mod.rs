//! Shared randomized-trace generation for the differential suites.
//!
//! Generation is fully deterministic (seeded xorshift64*, no wall clock
//! or OS entropy): a failing seed reproduces forever. Both the fused
//! engine's and the streaming engine's differential tests build their
//! traces here so the two suites stress identical event distributions.

use odp_model::{
    CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, HashVal, SimTime, TargetEvent, TargetKind,
    TimeSpan,
};

/// xorshift64* with splittable seeding.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// Build a random chronological trace. Small pools of addresses, hashes,
/// and devices force every collision class the detectors key on:
/// duplicate receptions, round trips, address reuse with matching and
/// mismatching sizes, interleaved kernels, overlapping spans, and
/// identical start times (tie-broken by log order, which the sort
/// preserves via `EventId`).
pub fn random_trace(
    seed: u64,
    len: usize,
    num_devices: u32,
) -> (Vec<DataOpEvent>, Vec<TargetEvent>) {
    let mut rng = Rng::new(seed);
    let mut data_ops = Vec::new();
    let mut kernels = Vec::new();
    let mut t = 0u64;
    for id in 0..len as u64 {
        // Occasionally reuse the same start time to exercise tie-breaks;
        // occasionally jump to create kernel-free gaps.
        match rng.below(10) {
            0 => {}
            1..=7 => t += 1 + rng.below(12),
            _ => t += 40 + rng.below(60),
        }
        let dur = rng.below(25);
        let span = TimeSpan::new(SimTime(t), SimTime(t + dur));
        let dev = DeviceId::target(rng.below(num_devices as u64) as u32);
        let haddr = 0x1000 + rng.below(5) * 0x100;
        let daddr = 0xd000 + rng.below(5) * 0x100;
        let bytes = 64 << rng.below(3);
        let hash = HashVal(rng.below(6));
        let codeptr = CodePtr(0x400_000 + rng.below(4) * 0x10);
        match rng.below(12) {
            0..=3 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: DataOpKind::Transfer,
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: Some(hash),
                span,
                codeptr,
            }),
            4..=6 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: DataOpKind::Transfer,
                src_device: dev,
                dest_device: DeviceId::HOST,
                src_addr: daddr,
                dest_addr: haddr,
                bytes,
                hash: Some(hash),
                span,
                codeptr,
            }),
            7 => data_ops.push(DataOpEvent {
                id: EventId(id),
                // A hashless transfer (e.g. degraded-mode zero-length
                // payload): ignored by Algorithms 1/2, seen by 5.
                kind: DataOpKind::Transfer,
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span,
                codeptr,
            }),
            8 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: DataOpKind::Alloc,
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span,
                codeptr,
            }),
            9 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: DataOpKind::Delete,
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span,
                codeptr,
            }),
            10 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: if rng.below(2) == 0 {
                    DataOpKind::Associate
                } else {
                    DataOpKind::Disassociate
                },
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span,
                codeptr,
            }),
            _ => kernels.push(TargetEvent {
                id: EventId(id),
                device: dev,
                kind: TargetKind::Kernel,
                span,
                codeptr,
            }),
        }
    }
    // The detectors' precondition: chronological by (start, log order).
    data_ops.sort_by_key(|e| (e.span.start, e.id));
    kernels.sort_by_key(|e| (e.span.start, e.id));
    (data_ops, kernels)
}
