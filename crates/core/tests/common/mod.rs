//! Shared randomized-trace generation for the differential suites.
//!
//! Generation is fully deterministic (seeded xorshift64*, no wall clock
//! or OS entropy): a failing seed reproduces forever. Both the fused
//! engine's and the streaming engine's differential tests build their
//! traces here so the two suites stress identical event distributions.

#![allow(dead_code)] // shared across several test binaries; each uses a subset

use odp_model::{
    CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, HashVal, SimTime, TargetEvent, TargetKind,
    TimeSpan,
};
use ompdataperf::detect::StreamEvent;

/// xorshift64* with splittable seeding.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// Build a random chronological trace. Small pools of addresses, hashes,
/// and devices force every collision class the detectors key on:
/// duplicate receptions, round trips, address reuse with matching and
/// mismatching sizes, interleaved kernels, overlapping spans, and
/// identical start times (tie-broken by log order, which the sort
/// preserves via `EventId`).
pub fn random_trace(
    seed: u64,
    len: usize,
    num_devices: u32,
) -> (Vec<DataOpEvent>, Vec<TargetEvent>) {
    let mut rng = Rng::new(seed);
    let mut data_ops = Vec::new();
    let mut kernels = Vec::new();
    let mut t = 0u64;
    for id in 0..len as u64 {
        // Occasionally reuse the same start time to exercise tie-breaks;
        // occasionally jump to create kernel-free gaps.
        match rng.below(10) {
            0 => {}
            1..=7 => t += 1 + rng.below(12),
            _ => t += 40 + rng.below(60),
        }
        let dur = rng.below(25);
        let span = TimeSpan::new(SimTime(t), SimTime(t + dur));
        let dev = DeviceId::target(rng.below(num_devices as u64) as u32);
        let haddr = 0x1000 + rng.below(5) * 0x100;
        let daddr = 0xd000 + rng.below(5) * 0x100;
        let bytes = 64 << rng.below(3);
        let hash = HashVal(rng.below(6));
        let codeptr = CodePtr(0x400_000 + rng.below(4) * 0x10);
        match rng.below(12) {
            0..=3 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: DataOpKind::Transfer,
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: Some(hash),
                span,
                codeptr,
            }),
            4..=6 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: DataOpKind::Transfer,
                src_device: dev,
                dest_device: DeviceId::HOST,
                src_addr: daddr,
                dest_addr: haddr,
                bytes,
                hash: Some(hash),
                span,
                codeptr,
            }),
            7 => data_ops.push(DataOpEvent {
                id: EventId(id),
                // A hashless transfer (e.g. degraded-mode zero-length
                // payload): ignored by Algorithms 1/2, seen by 5.
                kind: DataOpKind::Transfer,
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span,
                codeptr,
            }),
            8 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: DataOpKind::Alloc,
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span,
                codeptr,
            }),
            9 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: DataOpKind::Delete,
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span,
                codeptr,
            }),
            10 => data_ops.push(DataOpEvent {
                id: EventId(id),
                kind: if rng.below(2) == 0 {
                    DataOpKind::Associate
                } else {
                    DataOpKind::Disassociate
                },
                src_device: DeviceId::HOST,
                dest_device: dev,
                src_addr: haddr,
                dest_addr: daddr,
                bytes,
                hash: None,
                span,
                codeptr,
            }),
            _ => kernels.push(TargetEvent {
                id: EventId(id),
                device: dev,
                kind: TargetKind::Kernel,
                span,
                codeptr,
            }),
        }
    }
    // The detectors' precondition: chronological by (start, log order).
    data_ops.sort_by_key(|e| (e.span.start, e.id));
    kernels.sort_by_key(|e| (e.span.start, e.id));
    (data_ops, kernels)
}

/// A trace split across runtime-thread shards, the way a sharded
/// multi-threaded collector observes it.
pub struct ShardedTrace {
    /// Merged data ops, chronological `(start, shard-encoded id)` —
    /// what the merged trace log hydrates.
    pub ops: Vec<DataOpEvent>,
    /// Merged kernels, same order contract.
    pub kernels: Vec<TargetEvent>,
    /// Per-shard event streams in per-shard *completion* order (the
    /// order the recording thread appends), ids re-encoded as
    /// `shard << 32 | per-shard seq` exactly like `TraceLog::for_shard`.
    pub shard_events: Vec<Vec<StreamEvent>>,
}

fn ev_span(ev: &StreamEvent) -> (u64, u64) {
    match ev {
        StreamEvent::Op(e) => (e.span.start.0, e.span.end.0),
        StreamEvent::Kernel(k) => (k.span.start.0, k.span.end.0),
    }
}

fn ev_id(ev: &StreamEvent) -> u64 {
    match ev {
        StreamEvent::Op(e) => e.id.0,
        StreamEvent::Kernel(k) => k.id.0,
    }
}

fn set_ev_id(ev: &mut StreamEvent, id: u64) {
    match ev {
        StreamEvent::Op(e) => e.id = EventId(id),
        StreamEvent::Kernel(k) => k.id = EventId(id),
    }
}

/// Randomly partition a chronological trace onto `shards` runtime
/// threads and re-encode event ids the way shard logs do. Deterministic
/// in `seed`.
pub fn shard_partition(
    ops: &[DataOpEvent],
    kernels: &[TargetEvent],
    shards: usize,
    seed: u64,
) -> ShardedTrace {
    let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let mut shard_events: Vec<Vec<StreamEvent>> = vec![Vec::new(); shards];
    for e in ops {
        shard_events[rng.below(shards as u64) as usize].push(StreamEvent::Op(e.clone()));
    }
    for k in kernels {
        shard_events[rng.below(shards as u64) as usize].push(StreamEvent::Kernel(k.clone()));
    }
    // Per shard: completion (record) order, then shard-encoded ids.
    for (s, events) in shard_events.iter_mut().enumerate() {
        events.sort_by_key(|ev| (ev_span(ev).1, ev_id(ev)));
        for (j, ev) in events.iter_mut().enumerate() {
            set_ev_id(ev, ((s as u64) << 32) | j as u64);
        }
    }
    // The merged hydration the post-mortem side consumes.
    let mut merged_ops = Vec::new();
    let mut merged_kernels = Vec::new();
    for events in &shard_events {
        for ev in events {
            match ev {
                StreamEvent::Op(e) => merged_ops.push(e.clone()),
                StreamEvent::Kernel(k) => merged_kernels.push(k.clone()),
            }
        }
    }
    merged_ops.sort_by_key(|e| (e.span.start, e.id));
    merged_kernels.sort_by_key(|e| (e.span.start, e.id));
    ShardedTrace {
        ops: merged_ops,
        kernels: merged_kernels,
        shard_events,
    }
}
