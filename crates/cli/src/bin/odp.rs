//! `odp` — corpus tooling for the persistent trace backend, plus the
//! static analysis front end.
//!
//! ```text
//! odp trace save --out corpus.json --runs babelstream,bfs [--size s]
//!                [--variant original] [--remediate] [--trace-dir DIR]
//! odp trace load FILE.odpt
//! odp trace diff BASE.json NEW.json [--json]
//! odp static analyze <workload> [--size s|m|l] [--json]
//! odp static crosscheck <workload> [--size s|m|l] [--json]
//! odp static plan <workload> [--size s|m|l] [--json]
//! ```
//!
//! `save` captures one instrumented run per named workload, feeds the
//! serialized traces through the fleet ingest compactor, and writes the
//! corpus JSON (optionally keeping the binary `.odpt` trace per run).
//! `load` hydrates one binary trace leniently and summarizes it —
//! corrupt files degrade to a health warning, never a failure. `diff`
//! compares two corpora and exits non-zero when new findings appear:
//! the CI regression gate.
//!
//! `static analyze` predicts the five inefficiency classes from the
//! declarative mapping IR without running the program; `crosscheck`
//! also lowers the IR onto the simulated runtime and scores the
//! predictions against the fused dynamic engine (exits non-zero if any
//! `Certain` prediction is refuted); `plan` emits machine-readable
//! directive rewrites from the `Certain` predictions and validates them
//! by applying, re-lowering and re-running (exits non-zero if the
//! rewritten program regresses).

use odp_trace::persist::load_trace_lenient;
use odp_workloads::{by_name, ProblemSize, Variant};
use ompdataperf::fleet::{diff_corpora, Corpus, FleetIngest};
use std::process::ExitCode;

const USAGE: &str = "\
odp — persistent trace corpus tooling & static analysis

USAGE:
    odp trace save --out <corpus.json> --runs <w1,w2,...> [options]
    odp trace load <file.odpt>
    odp trace diff <base.json> <new.json> [--json]
    odp static analyze <workload> [--size s|m|l] [--json]
    odp static crosscheck <workload> [--size s|m|l] [--json]
    odp static plan <workload> [--size s|m|l] [--json]

SAVE OPTIONS:
    --out PATH        corpus JSON output path (required)
    --runs LIST       comma-separated workload names (required)
    --size s|m|l      problem size (default s)
    --variant NAME    original | fixed | synthetic (default original)
    --remediate       capture remediated executions (live rewrite loop)
    --trace-dir DIR   also write each run's binary trace as DIR/<run>.odpt

DIFF:
    exits 1 when the new corpus contains finding sites absent from the
    baseline (new regressions); prints new/fixed/persisting either as
    text or, with --json, as a machine-readable document.

STATIC:
    workloads: babelstream, bfs, xsbench (declarative IR descriptions).
    analyze     print Certain / MayDependOnData predictions per site
    crosscheck  score predictions against a lowered dynamic run; exits 1
                if any Certain prediction is dynamically refuted
    plan        emit directive rewrites from Certain predictions and
                validate by re-running; exits 1 on apply failure or if
                the rewrite does not strictly help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    match strs.as_slice() {
        [] | ["-h" | "--help"] => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        ["--version"] => {
            println!("odp {}", env!("CARGO_PKG_VERSION"));
            ExitCode::SUCCESS
        }
        ["trace", "save", rest @ ..] => cmd_save(rest),
        ["trace", "load", rest @ ..] => cmd_load(rest),
        ["trace", "diff", rest @ ..] => cmd_diff(rest),
        ["static", rest @ ..] => cmd_static(rest),
        other => {
            eprintln!("unknown command {:?}\n\n{USAGE}", other.join(" "));
            ExitCode::FAILURE
        }
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn cmd_save(args: &[&str]) -> ExitCode {
    let mut out: Option<String> = None;
    let mut runs: Vec<String> = Vec::new();
    let mut size = ProblemSize::Small;
    let mut variant = Variant::Original;
    let mut remediate = false;
    let mut trace_dir: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--out" => match it.next() {
                Some(p) => out = Some(p.to_string()),
                None => return fail("--out needs a path"),
            },
            "--runs" => match it.next() {
                Some(list) => runs.extend(
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string),
                ),
                None => return fail("--runs needs a comma-separated list"),
            },
            "--size" => match it.next().copied() {
                Some("s") | Some("small") => size = ProblemSize::Small,
                Some("m") | Some("medium") => size = ProblemSize::Medium,
                Some("l") | Some("large") => size = ProblemSize::Large,
                other => return fail(&format!("bad --size {other:?}")),
            },
            "--variant" => match it.next().copied() {
                Some("original") => variant = Variant::Original,
                Some("fixed") | Some("fix") => variant = Variant::Fixed,
                Some("synthetic") | Some("syn") => variant = Variant::Synthetic,
                other => return fail(&format!("bad --variant {other:?}")),
            },
            "--remediate" => remediate = true,
            "--trace-dir" => match it.next() {
                Some(d) => trace_dir = Some(d.to_string()),
                None => return fail("--trace-dir needs a directory"),
            },
            other => return fail(&format!("unknown save option {other}")),
        }
    }
    let Some(out) = out else {
        return fail("save needs --out");
    };
    if runs.is_empty() {
        return fail("save needs --runs");
    }

    let ingest = FleetIngest::new();
    for run_id in &runs {
        let Some(w) = by_name(run_id) else {
            return fail(&format!("unknown workload '{run_id}'"));
        };
        let artifact = odp_workloads::capture::capture_artifact(&*w, size, variant, remediate);
        if let Some(warning) = artifact.health.warning() {
            eprintln!("{run_id}: {warning}");
        }
        let bytes = artifact.to_bytes();
        if let Some(dir) = &trace_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                return fail(&format!("cannot create {dir}: {e}"));
            }
            let path = format!("{dir}/{run_id}.odpt");
            if let Err(e) = std::fs::write(&path, &bytes) {
                return fail(&format!("cannot write {path}: {e}"));
            }
            println!("wrote {path} ({} bytes)", bytes.len());
        }
        ingest.submit(run_id, bytes);
    }
    let corpus = ingest.compact();
    if let Err(e) = std::fs::write(&out, corpus.to_json()) {
        return fail(&format!("cannot write {out}: {e}"));
    }
    println!(
        "wrote {out}: {} run(s), {} fleet finding site(s)",
        corpus.runs.len(),
        corpus.fleet.entries.len()
    );
    ExitCode::SUCCESS
}

fn cmd_load(args: &[&str]) -> ExitCode {
    let [path] = args else {
        return fail("load needs exactly one file");
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let artifact = load_trace_lenient(&bytes);
    let stats = artifact.stats();
    println!(
        "{path}: program '{}', {} shard(s), {} data op(s), {} target event(s)",
        artifact.meta.program,
        artifact.shards.len(),
        artifact.data_op_count(),
        artifact.target_count(),
    );
    println!(
        "  transfers {} ({} bytes), allocs {}, kernels {}, total time {} ns",
        stats.transfers,
        stats.bytes_transferred,
        stats.allocs,
        stats.kernels,
        stats.total_time.as_nanos(),
    );
    match artifact.health.warning() {
        Some(w) => println!("  {w}"),
        None => println!("  health: clean"),
    }
    ExitCode::SUCCESS
}

fn cmd_static(args: &[&str]) -> ExitCode {
    let (verb, rest) = match args {
        [verb @ ("analyze" | "crosscheck" | "plan"), rest @ ..] => (*verb, rest),
        _ => {
            return fail("static needs analyze|crosscheck|plan <workload> [--size s|m|l] [--json]")
        }
    };
    let mut workload: Option<&str> = None;
    let mut size = odp_static::Size::S;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--size" => match it.next().copied().and_then(odp_static::Size::parse) {
                Some(s) => size = s,
                None => return fail("--size needs s|m|l"),
            },
            "--json" => json = true,
            name if workload.is_none() && !name.starts_with('-') => workload = Some(name),
            other => return fail(&format!("unknown static option {other}")),
        }
    }
    let Some(name) = workload else {
        return fail(&format!(
            "static {verb} needs a workload: {}",
            odp_static::NAMES.join(", ")
        ));
    };
    let Some(program) = odp_static::by_name(name, size) else {
        return fail(&format!(
            "unknown workload '{name}' (have: {})",
            odp_static::NAMES.join(", ")
        ));
    };

    match verb {
        "analyze" => {
            let report = odp_static::analyze(&program);
            if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", odp_static::analysis::render_report(&program, &report));
            }
            ExitCode::SUCCESS
        }
        "crosscheck" => {
            let (check, _report, run) = odp_static::crosscheck(&program);
            if json {
                println!("{}", check.to_json());
            } else {
                print!("{}", check.render(&program));
                for w in &run.warnings {
                    println!("  runtime warning: {w}");
                }
            }
            if check.summary.certain_precision_is_total() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "refuted: {} Certain prediction(s) not dynamically confirmed",
                    check.summary.certain_refuted
                );
                ExitCode::FAILURE
            }
        }
        "plan" => {
            let report = odp_static::analyze(&program);
            let plan = odp_static::emit_plan(&program, &report);
            match odp_static::validate_plan(&program, &plan) {
                Ok((outcome, _rewritten)) => {
                    if json {
                        println!("{}", plan.to_json());
                    } else {
                        print!("{}", plan.render());
                    }
                    println!(
                        "validated: {} dynamic finding(s) before, {} after",
                        outcome.before_total, outcome.after_total
                    );
                    if outcome.non_increasing() {
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("rewrite regressed the program");
                        ExitCode::FAILURE
                    }
                }
                Err(e) => fail(&format!("plan failed to apply: {e}")),
            }
        }
        _ => unreachable!(),
    }
}

fn cmd_diff(args: &[&str]) -> ExitCode {
    let (base_path, new_path, json) = match args {
        [b, n] => (b, n, false),
        [b, n, "--json"] => (b, n, true),
        _ => return fail("diff needs <base.json> <new.json> [--json]"),
    };
    let load = |path: &str| -> Result<Corpus, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Corpus::from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let base = match load(base_path) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let new = match load(new_path) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let diff = diff_corpora(&base, &new);
    if json {
        println!("{}", diff.to_json());
    } else {
        print!("{}", diff.render());
    }
    if diff.is_regression() {
        eprintln!(
            "regression: {} new finding site(s) vs {base_path}",
            diff.new.len()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
