//! The `ompdataperf` profiler binary (§A.5.3).
//!
//! ```sh
//! cargo run -p odp-cli --bin ompdataperf -- hotspot --size s
//! cargo run -p odp-cli --bin ompdataperf -- bfs --size m --variant fixed
//! cargo run -p odp-cli --bin ompdataperf -- tealeaf --pre-emi   # §A.6 warning
//! ```

use odp_cli::{parse, resolve_profile, Parsed};
use odp_hash::HashAlgoId;
use odp_sim::{Runtime, RuntimeConfig};
use ompdataperf::detect::EventView;
use ompdataperf::report::{ConsoleStreamSink, FindingsSink};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse("ompdataperf", &args) {
        Parsed::Exit(msg) => {
            println!("{msg}");
            return ExitCode::SUCCESS;
        }
        Parsed::Error(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
        Parsed::Run(a) => a,
    };

    let Some(workload) = odp_workloads::by_name(&parsed.program) else {
        eprintln!(
            "error: unknown program '{}'; available: {}",
            parsed.program,
            odp_workloads::all()
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    };
    if !workload.supports(parsed.variant) {
        eprintln!(
            "error: {} has no '{:?}' variant in the paper's evaluation",
            workload.name(),
            parsed.variant
        );
        return ExitCode::FAILURE;
    }

    let hash_algo = match &parsed.hash {
        None => HashAlgoId::default(),
        Some(name) => match HashAlgoId::from_name(name) {
            Some(a) => a,
            None => {
                eprintln!(
                    "error: unknown hash '{name}'; available: {}",
                    HashAlgoId::ALL
                        .iter()
                        .map(|a| a.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
    };

    let mut cfg = RuntimeConfig::default();
    if parsed.pre_emi {
        cfg = cfg.pre_emi();
    }
    if let Some(p) = &parsed.profile {
        match resolve_profile(p) {
            Some(profile) => cfg = cfg.with_profile(profile),
            None => {
                eprintln!("error: unknown compiler profile '{p}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut rt = Runtime::new(cfg);
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        hash_algo,
        collision_audit: parsed.audit,
        quiet: parsed.quiet,
        verbose: parsed.verbose,
        stream: parsed.stream,
    });
    rt.attach_tool(Box::new(tool));

    let wall = std::time::Instant::now();
    let dbg = workload.run(&mut rt, parsed.size, parsed.variant);
    let stats = rt.finish();
    let wall = wall.elapsed();

    let trace = handle.take_trace();
    if let Some(path) = &parsed.trace_out {
        let json = odp_trace::chrome::to_chrome_trace(&trace);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !parsed.quiet {
            println!("info: wrote chrome://tracing timeline to {path}");
        }
    }
    // Streaming mode: the online engine already ran the detectors during
    // the run, so detection work is done by the time the workload
    // returns. The simulated runtime is synchronous, so this front end
    // prints the accumulated findings here; a concurrent consumer would
    // drain ToolHandle::take_stream_findings while the program executes.
    // Finalize against the trace (byte-identical to the post-mortem
    // sweep) and build the report from those findings — no re-detection.
    let report = if let Some(mut engine) = handle.take_stream_engine() {
        let mut sink = ConsoleStreamSink::default();
        for finding in engine.take_findings() {
            sink.on_finding(&finding);
        }
        // Live lines go to stdout only in the human-readable mode; with
        // --json the stream output would corrupt the machine-readable
        // document (the findings are in the report JSON anyway).
        if !parsed.quiet && !parsed.json {
            const MAX_LIVE_LINES: usize = 40;
            for line in sink.lines.iter().take(MAX_LIVE_LINES) {
                println!("{line}");
            }
            if sink.lines.len() > MAX_LIVE_LINES {
                println!(
                    "stream: ... {} further findings elided",
                    sink.lines.len() - MAX_LIVE_LINES
                );
            }
            let stats = engine.buffer_stats();
            println!(
                "info: streaming detection emitted {} finding(s) live \
                 (reorder peak {}, lookahead peak {})",
                sink.lines.len(),
                stats.buffered_peak,
                stats.frontier_peak
            );
        }
        let view = EventView::from_log(&trace);
        let findings = engine.finalize(&view);
        ompdataperf::analysis::analyze_with_findings(
            &trace,
            Some(&dbg),
            workload.name(),
            handle.console_lines(),
            findings,
        )
    } else {
        ompdataperf::analysis::analyze_named(
            &trace,
            Some(&dbg),
            workload.name(),
            handle.console_lines(),
        )
    };

    if parsed.json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.render());
        if parsed.verbose {
            println!(
                "simulated time  : {} | wall-clock (host) : {:?}",
                stats.total_time, wall
            );
            println!(
                "hash rate       : {:.1} GB/s ({})",
                handle.hash_rate_gb_per_s(),
                hash_algo
            );
            if parsed.audit {
                println!("hash collisions : {}", handle.collision_count());
            }
        }
    }
    ExitCode::SUCCESS
}
