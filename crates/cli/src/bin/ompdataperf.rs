//! The `ompdataperf` profiler binary (§A.5.3).
//!
//! ```sh
//! cargo run -p odp-cli --bin ompdataperf -- hotspot --size s
//! cargo run -p odp-cli --bin ompdataperf -- bfs --size m --variant fixed
//! cargo run -p odp-cli --bin ompdataperf -- tealeaf --pre-emi   # §A.6 warning
//! cargo run -p odp-cli --bin ompdataperf -- bfs --threads 4 --stream \
//!     --stream-interval 20                                # sharded + live report
//! ```

use odp_cli::{parse, resolve_profile, Parsed};
use odp_hash::HashAlgoId;
use odp_ompt::Tool;
use odp_sim::{Runtime, RuntimeConfig};
use ompdataperf::detect::EventView;
use ompdataperf::remedy::{LiveRemediator, RemediationReport};
use ompdataperf::report::{ConsoleStreamSink, FindingsSink, SnapshotStreamSink};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse("ompdataperf", &args) {
        Parsed::Exit(msg) => {
            println!("{msg}");
            return ExitCode::SUCCESS;
        }
        Parsed::Error(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
        Parsed::Run(a) => a,
    };

    let Some(workload) = odp_workloads::by_name(&parsed.program) else {
        eprintln!(
            "error: unknown program '{}'; available: {}",
            parsed.program,
            odp_workloads::all()
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    };
    if !workload.supports(parsed.variant) {
        eprintln!(
            "error: {} has no '{:?}' variant in the paper's evaluation",
            workload.name(),
            parsed.variant
        );
        return ExitCode::FAILURE;
    }

    let hash_algo = match &parsed.hash {
        None => HashAlgoId::default(),
        Some(name) => match HashAlgoId::from_name(name) {
            Some(a) => a,
            None => {
                eprintln!(
                    "error: unknown hash '{name}'; available: {}",
                    HashAlgoId::ALL
                        .iter()
                        .map(|a| a.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
    };

    // Pin the post-mortem sweep's worker count before any detection
    // runs (`--sweep-threads` overrides `ODP_SWEEP_THREADS`; findings
    // are byte-identical at every count).
    if let Some(n) = parsed.sweep_threads {
        ompdataperf::detect::set_sweep_threads(n);
    }

    let mut cfg = RuntimeConfig::default();
    if parsed.pre_emi {
        cfg = cfg.pre_emi();
    }
    // Seeded fault injection (--fault-profile / --fault-seed): the plan
    // is cloned into the runtime config; clones share the injected-
    // fault totals, so the summary after the run sees every shard.
    let fault_plan = odp_sim::FaultPlan::from_profile(
        parsed.fault_profile.unwrap_or(odp_sim::FaultProfile::None),
        parsed.fault_seed.unwrap_or(42),
    );
    cfg.faults = fault_plan.clone();
    if let Some(p) = &parsed.profile {
        match resolve_profile(p) {
            Some(profile) => cfg = cfg.with_profile(profile),
            None => {
                eprintln!("error: unknown compiler profile '{p}'");
                return ExitCode::FAILURE;
            }
        }
    }

    if parsed.threads as usize > OmpDataPerfTool::MAX_SHARDS {
        eprintln!(
            "error: --threads {} exceeds the collector's shard capacity ({})",
            parsed.threads,
            OmpDataPerfTool::MAX_SHARDS
        );
        return ExitCode::FAILURE;
    }
    if parsed.threads > 1 && !workload.supports_threads() {
        eprintln!(
            "error: {} has no threaded variant; --threads supports: {}",
            workload.name(),
            odp_workloads::threaded::threaded_workloads()
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    }

    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        hash_algo,
        collision_audit: parsed.audit,
        quiet: parsed.quiet,
        verbose: parsed.verbose,
        stream: parsed.stream,
        stream_max_frontier: parsed.stream_cap,
        stall_timeout: parsed
            .stall_timeout_ms
            .map(std::time::Duration::from_millis),
        ring_capacity: None,
        publish_every: None,
    });

    // Live report consumer: drains findings while the program runs and
    // interleaves incremental §A.6 snapshot lines (suppressed under
    // --json, where stdout must stay machine-readable). Consumes its
    // own tee tap, so it composes with --remediate: the policy's pump
    // and this poller each see the full findings stream.
    let run_done = Arc::new(AtomicBool::new(false));
    let poller = parsed
        .stream_interval_ms
        .filter(|_| !parsed.json && !parsed.quiet)
        .map(|ms| {
            let tap = handle.tap_stream_findings();
            let run_done = run_done.clone();
            std::thread::spawn(move || {
                let mut sink = SnapshotStreamSink::new(0);
                loop {
                    let done = run_done.load(Ordering::Acquire);
                    let findings = tap.take();
                    if !findings.is_empty() {
                        for f in &findings {
                            sink.on_finding(f);
                        }
                        sink.snapshot();
                        for line in sink.lines.drain(..) {
                            println!("{line}");
                        }
                    }
                    if done {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
            })
        });

    let wall = std::time::Instant::now();
    let mut remedy = None;
    let (dbg, stats) = if parsed.threads > 1 {
        let mut tools: Vec<Box<dyn Tool>> = vec![Box::new(tool)];
        for _ in 1..parsed.threads {
            tools.push(Box::new(handle.fork_tool()));
        }
        if parsed.remediate {
            // Threaded remediation: the threads share one device data
            // environment (true libomptarget semantics) and one live-fed
            // policy behind per-thread advisor handles.
            let (advisors, policy) =
                odp_workloads::adaptive::threaded_advisors(&handle, parsed.threads, true, None);
            let run = odp_workloads::threaded::run_threaded_shared(
                &*workload,
                parsed.threads,
                parsed.size,
                parsed.variant,
                &cfg,
                tools,
                advisors,
            );
            if let Some(policy) = policy {
                remedy = Some((policy, run.remediation));
            }
            (run.dbg, run.stats)
        } else {
            odp_workloads::threaded::run_threaded(
                &*workload,
                parsed.threads,
                parsed.size,
                parsed.variant,
                &cfg,
                tools,
            )
        }
    } else {
        let mut rt = Runtime::new(cfg);
        rt.attach_tool(Box::new(tool));
        // --remediate: the live findings stream steers an advisor that
        // rewrites inefficient mappings at every subsequent region.
        let policy = parsed.remediate.then(|| {
            let (remediator, policy) = LiveRemediator::new(handle.clone());
            rt.attach_advisor(Box::new(remediator));
            policy
        });
        let dbg = workload.run(&mut rt, parsed.size, parsed.variant);
        let stats = rt.finish();
        if let Some(policy) = policy {
            remedy = Some((policy, rt.remediation_stats()));
        }
        (dbg, stats)
    };
    let wall = wall.elapsed();
    run_done.store(true, Ordering::Release);
    if let Some(poller) = poller {
        let _ = poller.join();
    }

    let trace = handle.take_trace();
    if let Some(path) = &parsed.trace_out {
        let json = odp_trace::chrome::to_chrome_trace(&trace);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !parsed.quiet {
            println!("info: wrote chrome://tracing timeline to {path}");
        }
    }
    // Streaming mode: the online engine already ran the detectors during
    // the run, so detection work is done by the time the workload
    // returns. The simulated runtime is synchronous, so this front end
    // prints the accumulated findings here; a concurrent consumer would
    // drain ToolHandle::take_stream_findings while the program executes.
    // Finalize against the trace (byte-identical to the post-mortem
    // sweep) and build the report from those findings — no re-detection.
    let report = if let Some(mut engine) = handle.take_stream_engine() {
        // Everything the engine emitted over the whole run — including
        // findings a --stream-interval poller already drained and
        // printed (take_findings below only returns the residue).
        let live_total = engine.live_counts().total();
        let mut sink = ConsoleStreamSink::default();
        for finding in engine.take_findings() {
            sink.on_finding(&finding);
        }
        // Live lines go to stdout only in the human-readable mode; with
        // --json the stream output would corrupt the machine-readable
        // document (the findings are in the report JSON anyway).
        if !parsed.quiet && !parsed.json {
            const MAX_LIVE_LINES: usize = 40;
            for line in sink.lines.iter().take(MAX_LIVE_LINES) {
                println!("{line}");
            }
            if sink.lines.len() > MAX_LIVE_LINES {
                println!(
                    "stream: ... {} further findings elided",
                    sink.lines.len() - MAX_LIVE_LINES
                );
            }
            let stats = engine.buffer_stats();
            println!(
                "info: streaming detection emitted {} finding(s) live \
                 (reorder peak {}, lookahead peak {}, spilled {})",
                live_total, stats.buffered_peak, stats.frontier_peak, stats.frontier_spilled,
            );
        }
        let mut console = handle.console_lines();
        if let Some(warning) = engine.spill_warning() {
            console.push(warning);
        }
        let view = EventView::from_log(&trace);
        let findings = engine.finalize(&view);
        // Trace health: shard-side quarantine counters (the engine left
        // the handle above, so fold its counters in by hand) plus
        // merge-time duplicate ids. A dirty trace warns in the report.
        let mut health = handle.trace_health();
        health.merge(&engine.health());
        health.duplicate_ids += trace.duplicate_id_count();
        if let Some(warning) = health.warning() {
            console.push(warning);
        }
        ompdataperf::analysis::analyze_with_findings(
            &trace,
            Some(&dbg),
            workload.name(),
            console,
            findings,
        )
    } else {
        let mut console = handle.console_lines();
        let mut health = handle.trace_health();
        health.duplicate_ids += trace.duplicate_id_count();
        if let Some(warning) = health.warning() {
            console.push(warning);
        }
        ompdataperf::analysis::analyze_named(&trace, Some(&dbg), workload.name(), console)
    };

    // The remediation summary rides along with the report: recovered
    // bytes/time per finding kind, §A.6 console style or JSON.
    let remediation = remedy.map(|(policy, remedy_stats)| {
        RemediationReport::new(
            &policy.lock(),
            &remedy_stats,
            stats.bytes_transferred,
            stats.transfer_time,
        )
    });

    if parsed.json {
        match &remediation {
            Some(r) => println!(
                "{{\"report\":{},\"remediation\":{}}}",
                report.to_json(),
                r.to_json()
            ),
            None => println!("{}", report.to_json()),
        }
    } else {
        println!("{}", report.render());
        if let Some(r) = &remediation {
            print!("{}", r.render());
        }
        if fault_plan.is_enabled() && !parsed.quiet {
            println!("info: injected faults — {}", fault_plan.counts().summary());
        }
        if parsed.verbose {
            println!(
                "simulated time  : {} | wall-clock (host) : {:?}",
                stats.total_time, wall
            );
            println!(
                "hash rate       : {:.1} GB/s ({})",
                handle.hash_rate_gb_per_s(),
                hash_algo
            );
            if parsed.audit {
                println!("hash collisions : {}", handle.collision_count());
            }
        }
    }
    ExitCode::SUCCESS
}
