//! The `arbalest-vec` correctness-checker binary — the §7.7 comparison
//! baseline, runnable on the same workloads.
//!
//! ```sh
//! cargo run -p odp-cli --bin arbalest_vec -- bspline-vgh-omp --size m
//! cargo run -p odp-cli --bin arbalest_vec -- bfs --threads 4   # sharded
//! ```

use odp_arbalest::{AnomalyKind, ArbalestVecTool};
use odp_cli::{parse, Parsed};
use odp_ompt::Tool;
use odp_sim::{Runtime, RuntimeConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse("arbalest-vec", &args) {
        Parsed::Exit(msg) => {
            println!("{msg}");
            return ExitCode::SUCCESS;
        }
        Parsed::Error(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
        Parsed::Run(a) => a,
    };

    let Some(workload) = odp_workloads::by_name(&parsed.program) else {
        eprintln!("error: unknown program '{}'", parsed.program);
        return ExitCode::FAILURE;
    };
    if parsed.threads > 1 && !workload.supports_threads() {
        eprintln!(
            "error: {} has no threaded variant; --threads supports: {}",
            workload.name(),
            odp_workloads::threaded::threaded_workloads()
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    }

    // Previously this binary silently ignored --threads (and the
    // unsharded collector would have miscompared a multi-threaded run:
    // one thread's deletes poisoned every thread's same-address
    // mappings). The collector state is now keyed per forked shard.
    let (tool, handle) = ArbalestVecTool::new();
    let stats = if parsed.threads > 1 {
        let mut tools: Vec<Box<dyn Tool>> = vec![Box::new(tool)];
        for _ in 1..parsed.threads {
            tools.push(Box::new(handle.fork_tool()));
        }
        let (_dbg, stats) = odp_workloads::threaded::run_threaded(
            &*workload,
            parsed.threads,
            parsed.size,
            parsed.variant,
            &RuntimeConfig::default(),
            tools,
        );
        stats
    } else {
        let mut rt = Runtime::with_defaults();
        rt.attach_tool(Box::new(tool));
        workload.run(&mut rt, parsed.size, parsed.variant);
        rt.finish()
    };

    let report = handle.report();
    println!("=== Arbalest-Vec Data Mapping Correctness Report ===");
    println!("program        : {}", workload.name());
    println!("anomaly classes: {}", report.summary());
    for kind in [
        AnomalyKind::Uum,
        AnomalyKind::Usd,
        AnomalyKind::Uaf,
        AnomalyKind::Bo,
    ] {
        for a in report.of_kind(kind) {
            println!(
                "  {}: variable at host address 0x{:012x} ({} bytes) on {}, first at {}",
                kind.abbrev(),
                a.host_addr,
                a.bytes,
                a.device,
                odp_model::SimDuration(a.time.as_nanos())
            );
        }
    }
    println!(
        "native runtime {}, instrumented estimate ~{} (x{} slowdown, §8)",
        stats.total_time,
        odp_model::SimDuration(
            (stats.total_time.as_nanos() as f64 * odp_arbalest::ArbalestReport::NOMINAL_SLOWDOWN)
                as u64
        ),
        odp_arbalest::ArbalestReport::NOMINAL_SLOWDOWN
    );
    if !parsed.quiet && report.count(AnomalyKind::Uum) > 0 {
        println!(
            "note: UUM reports on write-only kernel outputs are known false \
             positives of the conservative masked-store analysis (§7.7)."
        );
    }
    ExitCode::SUCCESS
}
