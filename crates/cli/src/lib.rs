//! Shared argument handling for the command-line front ends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use odp_workloads::{ProblemSize, Variant};

/// Parsed common arguments.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Workload name.
    pub program: String,
    /// Problem size.
    pub size: ProblemSize,
    /// Program variant.
    pub variant: Variant,
    /// `-q`.
    pub quiet: bool,
    /// `-v`.
    pub verbose: bool,
    /// `--json`.
    pub json: bool,
    /// `--hash <name>`.
    pub hash: Option<String>,
    /// `--audit-collisions`.
    pub audit: bool,
    /// `--pre-emi` (simulate an OMPT 5.0-preview runtime).
    pub pre_emi: bool,
    /// `--profile <compiler>` (Table 6 capability profile).
    pub profile: Option<String>,
    /// `--trace-out <path>`: write the event log as Chrome Trace Format
    /// JSON for chrome://tracing / Perfetto.
    pub trace_out: Option<String>,
    /// `--stream`: run the detection engine online. Findings are
    /// computed as events arrive; live consumers pull them via
    /// `ToolHandle::take_stream_findings` (the synchronous CLI prints
    /// them once the run returns).
    pub stream: bool,
    /// `--stream-interval <ms>`: while streaming, print live findings
    /// and an incremental §A.6 snapshot line every that-many
    /// milliseconds from a consumer thread (implies `--stream`).
    pub stream_interval_ms: Option<u64>,
    /// `--stream-cap <n>`: hard cap for Algorithm 2's streaming
    /// lookahead window (spills trade exactness for bounded memory).
    pub stream_cap: Option<usize>,
    /// `--threads <n>`: drive the workload's offload pattern from N OS
    /// threads, each with its own runtime and tool shard (workloads
    /// that support it: babelstream, bfs, xsbench).
    pub threads: u32,
    /// `--remediate`: close the detect→fix loop — stream findings into
    /// a live remediation policy and rewrite inefficient mappings
    /// mid-run, then print the recovered-transfer summary (implies
    /// `--stream`). With `--threads N` the threads share one device
    /// data environment and one policy behind per-thread advisor
    /// handles; composes with `--stream-interval` (the live findings
    /// stream is teed to both consumers).
    pub remediate: bool,
    /// `--fault-profile NAME`: inject seeded faults into the simulated
    /// runtime's callback stream (drops, duplicates, truncation,
    /// corruption, transfer failures, OOM, a stalled shard). The
    /// pipeline must survive every profile without panicking.
    pub fault_profile: Option<odp_sim::FaultProfile>,
    /// `--fault-seed N`: the deterministic seed for the fault plan
    /// (default 42). Same seed + same profile = same faults.
    pub fault_seed: Option<u64>,
    /// `--stall-timeout MS`: with `--stream`, force-release the reorder
    /// buffer after the merged watermark has not advanced for this many
    /// milliseconds (findings decided afterwards are degraded evidence).
    pub stall_timeout_ms: Option<u64>,
    /// `--sweep-threads N`: worker count for the fused post-mortem
    /// detector sweep (1 = sequential; findings are byte-identical at
    /// every count). Overrides `ODP_SWEEP_THREADS`.
    pub sweep_threads: Option<usize>,
}

/// Outcome of argument parsing.
pub enum Parsed {
    /// Run with these arguments.
    Run(Box<CommonArgs>),
    /// Print this text and exit successfully.
    Exit(String),
    /// Print this error and exit with failure.
    Error(String),
}

/// The §A.5.3 usage text, extended with the simulator's knobs.
pub fn usage(tool: &str) -> String {
    format!(
        "Usage: {tool} [options] [program] [program arguments]\n\
         Options:\n\
         \x20 -h, --help            Show this help message\n\
         \x20 -q, --quiet           Suppress warnings\n\
         \x20 -v, --verbose         Enable verbose output\n\
         \x20 --version             Print the version of {tool}\n\
         \x20 --size s|m|l          Problem size (default: s)\n\
         \x20 --variant NAME        original|fixed|synthetic (default: original)\n\
         \x20 --json                Emit the report as JSON\n\
         \x20 --hash NAME           Content hash (default: t1ha0_avx2)\n\
         \x20 --audit-collisions    Keep payload copies, verify hashes (§B.1)\n\
         \x20 --pre-emi             Simulate a pre-5.1 OMPT runtime (§A.6)\n\
         \x20 --profile NAME        Compiler capability profile (Table 6)\n\
         \x20 --trace-out PATH      Write a chrome://tracing JSON timeline\n\
         \x20 --stream              Run the detectors online during execution\n\
         \x20 --stream-interval MS  Print live findings + snapshot every MS ms (implies --stream)\n\
         \x20 --stream-cap N        Cap the streaming round-trip lookahead window at N\n\
         \x20 --threads N           Drive the workload from N OS threads (sharded collection)\n\
         \x20 --remediate           Rewrite inefficient mappings mid-run from live findings (implies --stream;\n\
         \x20                       with --threads: shared device tables + per-thread advisors)\n\
         \x20 --fault-profile NAME  Inject seeded runtime faults: {}\n\
         \x20 --fault-seed N        Deterministic fault seed (default: 42)\n\
         \x20 --stall-timeout MS    With --stream: force-release the reorder buffer after MS ms\n\
         \x20                       without watermark progress (degrades findings)\n\
         \x20 --sweep-threads N     Post-mortem detector sweep workers (default: ODP_SWEEP_THREADS or 1;\n\
         \x20                       findings are byte-identical at every count)\n\
         Programs:\n\x20 {}",
        odp_sim::FaultProfile::NAMES,
        odp_workloads::all()
            .iter()
            .map(|w| w.name())
            .collect::<Vec<_>>()
            .join(", ")
    )
}

/// Parse command-line arguments (everything after `argv[0]`).
pub fn parse(tool: &str, args: &[String]) -> Parsed {
    let mut out = CommonArgs {
        program: String::new(),
        size: ProblemSize::Small,
        variant: Variant::Original,
        quiet: false,
        verbose: false,
        json: false,
        hash: None,
        audit: false,
        pre_emi: false,
        profile: None,
        trace_out: None,
        stream: false,
        stream_interval_ms: None,
        stream_cap: None,
        threads: 1,
        remediate: false,
        fault_profile: None,
        fault_seed: None,
        stall_timeout_ms: None,
        sweep_threads: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Parsed::Exit(usage(tool)),
            "--version" => return Parsed::Exit(format!("{tool} {}", env!("CARGO_PKG_VERSION"))),
            "-q" | "--quiet" => out.quiet = true,
            "-v" | "--verbose" => out.verbose = true,
            "--json" => out.json = true,
            "--audit-collisions" => out.audit = true,
            "--pre-emi" => out.pre_emi = true,
            "--stream" => out.stream = true,
            "--remediate" => {
                out.remediate = true;
                out.stream = true;
            }
            "--size" => match it.next().map(|s| s.as_str()) {
                Some("s") | Some("small") => out.size = ProblemSize::Small,
                Some("m") | Some("medium") => out.size = ProblemSize::Medium,
                Some("l") | Some("large") => out.size = ProblemSize::Large,
                other => return Parsed::Error(format!("bad --size {other:?}")),
            },
            "--variant" => match it.next().map(|s| s.as_str()) {
                Some("original") => out.variant = Variant::Original,
                Some("fixed") | Some("fix") => out.variant = Variant::Fixed,
                Some("synthetic") | Some("syn") => out.variant = Variant::Synthetic,
                other => return Parsed::Error(format!("bad --variant {other:?}")),
            },
            "--hash" => match it.next() {
                Some(h) => out.hash = Some(h.clone()),
                None => return Parsed::Error("--hash needs a value".into()),
            },
            "--profile" => match it.next() {
                Some(p) => out.profile = Some(p.clone()),
                None => return Parsed::Error("--profile needs a value".into()),
            },
            "--trace-out" => match it.next() {
                Some(p) => out.trace_out = Some(p.clone()),
                None => return Parsed::Error("--trace-out needs a path".into()),
            },
            "--stream-interval" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => {
                    out.stream_interval_ms = Some(ms);
                    out.stream = true;
                }
                _ => return Parsed::Error("--stream-interval needs a positive ms value".into()),
            },
            "--stream-cap" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => out.stream_cap = Some(n),
                _ => return Parsed::Error("--stream-cap needs a positive value".into()),
            },
            "--threads" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n >= 1 => out.threads = n,
                _ => return Parsed::Error("--threads needs a value >= 1".into()),
            },
            "--fault-profile" => match it.next().map(|s| s.as_str()) {
                Some(name) => match odp_sim::FaultProfile::parse(name) {
                    Some(p) => out.fault_profile = Some(p),
                    None => {
                        return Parsed::Error(format!(
                            "unknown fault profile '{name}'; available: {}",
                            odp_sim::FaultProfile::NAMES
                        ))
                    }
                },
                None => return Parsed::Error("--fault-profile needs a name".into()),
            },
            "--fault-seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(seed) => out.fault_seed = Some(seed),
                None => return Parsed::Error("--fault-seed needs an integer value".into()),
            },
            "--stall-timeout" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => out.stall_timeout_ms = Some(ms),
                None => return Parsed::Error("--stall-timeout needs a ms value".into()),
            },
            "--sweep-threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => out.sweep_threads = Some(n),
                _ => return Parsed::Error("--sweep-threads needs a value >= 1".into()),
            },
            other if other.starts_with('-') => {
                return Parsed::Error(format!("unknown option {other}\n\n{}", usage(tool)))
            }
            other => {
                if out.program.is_empty() {
                    out.program = other.to_string();
                }
                // Remaining positional args are the program's own; the
                // simulated workloads take their inputs from --size.
            }
        }
    }
    if out.program.is_empty() {
        return Parsed::Error(format!("no program given\n\n{}", usage(tool)));
    }
    // --remediate composes with --threads (shared-device semantics, one
    // policy behind per-thread advisors) and with --stream-interval
    // (the live findings stream is teed to every consumer).
    Parsed::Run(Box::new(out))
}

/// Resolve a Table 6 profile name.
pub fn resolve_profile(name: &str) -> Option<odp_ompt::CompilerProfile> {
    use odp_ompt::CompilerProfile as P;
    Some(match name.to_ascii_lowercase().as_str() {
        "llvm" | "clang" => P::LlvmClang,
        "aocc" => P::AmdAocc,
        "aomp" => P::AmdAomp,
        "rocm" => P::AmdRocm,
        "acfl" | "arm" => P::ArmAcfl,
        "gcc" | "gnu" => P::GnuGcc,
        "cce" | "cray" => P::HpeCce,
        "icx" | "intel" => P::IntelIcx,
        "nvhpc" | "nvidia" => P::NvidiaHpc,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_and_version() {
        assert!(matches!(
            parse("ompdataperf", &argv("--help")),
            Parsed::Exit(_)
        ));
        match parse("ompdataperf", &argv("--version")) {
            Parsed::Exit(s) => assert!(s.starts_with("ompdataperf")),
            _ => panic!("expected version exit"),
        }
    }

    #[test]
    fn full_run_line() {
        match parse(
            "ompdataperf",
            &argv("--size m --variant fixed --json -q bfs"),
        ) {
            Parsed::Run(a) => {
                assert_eq!(a.program, "bfs");
                assert_eq!(a.size, ProblemSize::Medium);
                assert_eq!(a.variant, Variant::Fixed);
                assert!(a.json && a.quiet && !a.verbose);
                assert!(!a.stream, "streaming is opt-in");
            }
            _ => panic!("expected run"),
        }
    }

    #[test]
    fn stream_flag_is_parsed() {
        match parse("ompdataperf", &argv("--stream bfs")) {
            Parsed::Run(a) => assert!(a.stream),
            _ => panic!("expected run"),
        }
        let usage = usage("ompdataperf");
        assert!(usage.contains("--stream"));
        assert!(usage.contains("--threads"));
        assert!(usage.contains("--stream-interval"));
    }

    #[test]
    fn threads_and_stream_interval_are_parsed() {
        match parse(
            "ompdataperf",
            &argv("--threads 4 --stream-interval 50 --stream-cap 4096 bfs"),
        ) {
            Parsed::Run(a) => {
                assert_eq!(a.threads, 4);
                assert_eq!(a.stream_interval_ms, Some(50));
                assert_eq!(a.stream_cap, Some(4096));
                assert!(a.stream, "--stream-interval implies --stream");
            }
            _ => panic!("expected run"),
        }
        assert!(matches!(
            parse("ompdataperf", &argv("--threads 0 bfs")),
            Parsed::Error(_)
        ));
        assert!(matches!(
            parse("ompdataperf", &argv("--stream-interval nope bfs")),
            Parsed::Error(_)
        ));
        match parse("ompdataperf", &argv("bfs")) {
            Parsed::Run(a) => assert_eq!(a.threads, 1),
            _ => panic!("expected run"),
        }
    }

    #[test]
    fn remediate_implies_stream_and_composes_with_threads_and_interval() {
        match parse("ompdataperf", &argv("--remediate babelstream")) {
            Parsed::Run(a) => {
                assert!(a.remediate);
                assert!(a.stream, "--remediate implies --stream");
            }
            _ => panic!("expected run"),
        }
        match parse("ompdataperf", &argv("--remediate --threads 4 babelstream")) {
            Parsed::Run(a) => {
                assert!(a.remediate && a.threads == 4, "threaded remediation runs");
            }
            _ => panic!("expected run: --remediate --threads is supported"),
        }
        match parse(
            "ompdataperf",
            &argv("--remediate --stream-interval 10 babelstream"),
        ) {
            Parsed::Run(a) => {
                assert!(
                    a.remediate && a.stream_interval_ms == Some(10),
                    "the findings tee lets the poller and the policy coexist"
                );
            }
            _ => panic!("expected run: --remediate --stream-interval is supported"),
        }
        assert!(usage("ompdataperf").contains("--remediate"));
    }

    #[test]
    fn fault_flags_are_parsed() {
        match parse(
            "ompdataperf",
            &argv("--fault-profile lossy --fault-seed 7 bfs"),
        ) {
            Parsed::Run(a) => {
                assert_eq!(a.fault_profile, Some(odp_sim::FaultProfile::Lossy));
                assert_eq!(a.fault_seed, Some(7));
            }
            _ => panic!("expected run"),
        }
        assert!(matches!(
            parse("ompdataperf", &argv("--fault-profile bogus bfs")),
            Parsed::Error(_)
        ));
        assert!(matches!(
            parse("ompdataperf", &argv("--fault-seed nope bfs")),
            Parsed::Error(_)
        ));
        let u = usage("ompdataperf");
        assert!(u.contains("--fault-profile"));
        assert!(u.contains("--fault-seed"));
        assert!(u.contains("lossy"));
    }

    #[test]
    fn stall_timeout_is_parsed() {
        match parse("ompdataperf", &argv("--stream --stall-timeout 250 bfs")) {
            Parsed::Run(a) => {
                assert_eq!(a.stall_timeout_ms, Some(250));
                assert!(a.stream);
            }
            _ => panic!("expected run"),
        }
        assert!(matches!(
            parse("ompdataperf", &argv("--stall-timeout nope bfs")),
            Parsed::Error(_)
        ));
        assert!(usage("ompdataperf").contains("--stall-timeout"));
    }

    #[test]
    fn sweep_threads_is_parsed() {
        match parse("ompdataperf", &argv("--sweep-threads 4 bfs")) {
            Parsed::Run(a) => assert_eq!(a.sweep_threads, Some(4)),
            _ => panic!("expected run"),
        }
        match parse("ompdataperf", &argv("bfs")) {
            Parsed::Run(a) => assert_eq!(a.sweep_threads, None, "default defers to the env"),
            _ => panic!("expected run"),
        }
        assert!(matches!(
            parse("ompdataperf", &argv("--sweep-threads 0 bfs")),
            Parsed::Error(_)
        ));
        assert!(usage("ompdataperf").contains("--sweep-threads"));
    }

    #[test]
    fn missing_program_is_an_error() {
        assert!(matches!(
            parse("ompdataperf", &argv("-q")),
            Parsed::Error(_)
        ));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(matches!(
            parse("ompdataperf", &argv("--frobnicate bfs")),
            Parsed::Error(_)
        ));
    }

    #[test]
    fn profile_resolution() {
        assert!(resolve_profile("llvm").is_some());
        assert!(resolve_profile("GCC").is_some());
        assert!(resolve_profile("tcc").is_none());
    }
}
