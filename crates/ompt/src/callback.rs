//! OMPT callback payload types.
//!
//! These mirror the EMI callback signatures of OpenMP 5.1 §4.5. The
//! runtime invokes each callback twice — at [`Endpoint::Begin`] and
//! [`Endpoint::End`] of the event — which is precisely the property that
//! lets a tool measure event durations without overhead compensation
//! (the non-EMI callbacks fire only at the start, §2.3).

use odp_model::{CodePtr, DeviceId, SimTime};
use serde::{Deserialize, Serialize};

/// `ompt_scope_endpoint_t`: which edge of the event is being reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// `ompt_scope_begin`.
    Begin,
    /// `ompt_scope_end`.
    End,
}

/// The callbacks a tool can register, including deprecated non-EMI forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CallbackKind {
    /// `ompt_callback_target_emi` — **required by OMPDataPerf**.
    TargetEmi,
    /// `ompt_callback_target_data_op_emi` — **required by OMPDataPerf**.
    TargetDataOpEmi,
    /// `ompt_callback_target_submit_emi`.
    TargetSubmitEmi,
    /// `ompt_callback_target_map_emi` (optional in every runtime surveyed
    /// except NVHPC, Table 6).
    TargetMapEmi,
    /// Deprecated non-EMI `ompt_callback_target`.
    Target,
    /// Deprecated non-EMI `ompt_callback_target_data_op`.
    TargetDataOp,
    /// Deprecated non-EMI `ompt_callback_target_submit`.
    TargetSubmit,
    /// Deprecated non-EMI `ompt_callback_target_map`.
    TargetMap,
}

impl CallbackKind {
    /// All callback kinds, EMI first.
    pub const ALL: [CallbackKind; 8] = [
        CallbackKind::TargetEmi,
        CallbackKind::TargetDataOpEmi,
        CallbackKind::TargetSubmitEmi,
        CallbackKind::TargetMapEmi,
        CallbackKind::Target,
        CallbackKind::TargetDataOp,
        CallbackKind::TargetSubmit,
        CallbackKind::TargetMap,
    ];

    /// Is this an EMI (begin+end) callback?
    pub fn is_emi(self) -> bool {
        matches!(
            self,
            CallbackKind::TargetEmi
                | CallbackKind::TargetDataOpEmi
                | CallbackKind::TargetSubmitEmi
                | CallbackKind::TargetMapEmi
        )
    }

    /// The OMPT C identifier.
    pub fn c_name(self) -> &'static str {
        match self {
            CallbackKind::TargetEmi => "ompt_callback_target_emi",
            CallbackKind::TargetDataOpEmi => "ompt_callback_target_data_op_emi",
            CallbackKind::TargetSubmitEmi => "ompt_callback_target_submit_emi",
            CallbackKind::TargetMapEmi => "ompt_callback_target_map_emi",
            CallbackKind::Target => "ompt_callback_target",
            CallbackKind::TargetDataOp => "ompt_callback_target_data_op",
            CallbackKind::TargetSubmit => "ompt_callback_target_submit",
            CallbackKind::TargetMap => "ompt_callback_target_map",
        }
    }
}

/// `ompt_target_t`: which construct produced a target callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetConstructKind {
    /// `omp target`.
    Target,
    /// `omp target data` (structured region).
    TargetData,
    /// `omp target enter data`.
    TargetEnterData,
    /// `omp target exit data`.
    TargetExitData,
    /// `omp target update`.
    TargetUpdate,
}

/// `ompt_target_data_op_t`: the operation type of a data-op callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataOpType {
    /// `ompt_target_data_alloc`.
    Alloc,
    /// `ompt_target_data_transfer_to_device`.
    TransferToDevice,
    /// `ompt_target_data_transfer_from_device`.
    TransferFromDevice,
    /// `ompt_target_data_delete`.
    Delete,
    /// `ompt_target_data_associate`.
    Associate,
    /// `ompt_target_data_disassociate`.
    Disassociate,
}

impl DataOpType {
    /// Is this a transfer (either direction)?
    pub fn is_transfer(self) -> bool {
        matches!(
            self,
            DataOpType::TransferToDevice | DataOpType::TransferFromDevice
        )
    }
}

/// Payload of `ompt_callback_target_emi`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetCallback {
    /// Begin or end of the construct.
    pub endpoint: Endpoint,
    /// Which construct.
    pub construct: TargetConstructKind,
    /// Device the construct addresses.
    pub device: DeviceId,
    /// Runtime-assigned id correlating begin/end and nested data ops.
    pub target_id: u64,
    /// Return address of the runtime call (source attribution).
    pub codeptr_ra: CodePtr,
    /// Virtual time the callback fires.
    pub time: SimTime,
}

/// Payload of `ompt_callback_target_data_op_emi`.
///
/// `payload` is this crate's one extension over the C API: a native tool
/// dereferences `src_addr` to hash the bytes being transferred; a Rust
/// tool without `unsafe` needs the runtime to hand it the slice instead.
/// It is `None` at `Begin` endpoints and for non-transfer ops, matching
/// what a pointer-chasing tool could observe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataOpCallback<'a> {
    /// Begin or end of the operation.
    pub endpoint: Endpoint,
    /// Correlates with the enclosing target construct.
    pub target_id: u64,
    /// Runtime-assigned id correlating begin/end of this op.
    pub host_op_id: u64,
    /// Operation type.
    pub optype: DataOpType,
    /// Source device.
    pub src_device: DeviceId,
    /// Source address (host address for alloc/delete).
    pub src_addr: u64,
    /// Destination device.
    pub dest_device: DeviceId,
    /// Destination address.
    pub dest_addr: u64,
    /// Bytes moved/allocated.
    pub bytes: u64,
    /// Return address of the runtime call.
    pub codeptr_ra: CodePtr,
    /// Virtual time the callback fires.
    pub time: SimTime,
    /// The bytes being transferred (End endpoint of transfers only).
    pub payload: Option<&'a [u8]>,
}

/// A contiguous access range inside a kernel (instrumentation feed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessRange {
    /// Host address of the variable backing the range.
    pub host_addr: u64,
    /// Device address of the mapped buffer.
    pub dev_addr: u64,
    /// Length in bytes.
    pub bytes: u64,
}

/// Kernel memory-access information.
///
/// **Not part of OMPT.** Tools like Arbalest obtain this through binary
/// instrumentation of the device code; the simulator offers it as an
/// optional side channel so such tools can be reproduced. OMPDataPerf
/// never consumes it — the paper's detectors are deliberately
/// access-blind (§5: "designed to avoid relying on information that would
/// necessitate costly instrumentation").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelAccessInfo {
    /// Device executing the kernel.
    pub device: DeviceId,
    /// Correlates with the target construct.
    pub target_id: u64,
    /// Ranges the kernel reads.
    pub reads: Vec<AccessRange>,
    /// Ranges the kernel writes with plain stores.
    pub writes: Vec<AccessRange>,
    /// Ranges the kernel writes through vector-masked/predicated stores.
    /// Binary instrumentation cannot prove these are write-only (the
    /// mask may leave lanes unwritten), which is the mechanism behind
    /// Arbalest-Vec's conservative UUM false positives (§7.7).
    pub masked_writes: Vec<AccessRange>,
    /// Kernel start time.
    pub time: SimTime,
}

/// A host-side access to a mapped variable (instrumentation feed; same
/// caveat as [`KernelAccessInfo`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostAccessInfo {
    /// Host address accessed.
    pub host_addr: u64,
    /// Length in bytes.
    pub bytes: u64,
    /// Was it a write?
    pub is_write: bool,
    /// Access time.
    pub time: SimTime,
}

/// Payload of `ompt_callback_target_submit_emi` (kernel launch).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubmitCallback {
    /// Begin or end of kernel execution.
    pub endpoint: Endpoint,
    /// Correlates with the enclosing target construct.
    pub target_id: u64,
    /// Device executing the kernel.
    pub device: DeviceId,
    /// Requested number of teams.
    pub requested_num_teams: u32,
    /// Return address of the runtime call.
    pub codeptr_ra: CodePtr,
    /// Virtual time the callback fires.
    pub time: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emi_classification() {
        assert!(CallbackKind::TargetEmi.is_emi());
        assert!(CallbackKind::TargetDataOpEmi.is_emi());
        assert!(!CallbackKind::Target.is_emi());
        assert!(!CallbackKind::TargetMap.is_emi());
    }

    #[test]
    fn c_names_are_distinct() {
        let mut names: Vec<_> = CallbackKind::ALL.iter().map(|k| k.c_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CallbackKind::ALL.len());
    }

    #[test]
    fn transfer_predicate() {
        assert!(DataOpType::TransferToDevice.is_transfer());
        assert!(DataOpType::TransferFromDevice.is_transfer());
        assert!(!DataOpType::Alloc.is_transfer());
        assert!(!DataOpType::Delete.is_transfer());
    }
}
