//! OMPT interface versions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The OMPT interface version a runtime implements.
///
/// OMPDataPerf requires 5.1 (EMI callbacks); it degrades with a warning on
/// 5.0 (non-EMI target callbacks only) and cannot operate on runtimes
/// without OMPT (§A.6, §D).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OmptVersion {
    /// No OMPT support at all (e.g. GCC's libgomp).
    None,
    /// Pre-5.0 technical-report preview ("TR4 5.0 preview 1" in §A.6).
    Tr4Preview,
    /// OpenMP 5.0: tool initialization + non-EMI target callbacks.
    V5_0,
    /// OpenMP 5.1: EMI callbacks — what OMPDataPerf requires.
    V5_1,
    /// OpenMP 6.0: non-EMI target callbacks deprecated.
    V6_0,
}

impl OmptVersion {
    /// Does this version provide the EMI target callbacks?
    pub fn has_emi(self) -> bool {
        matches!(self, OmptVersion::V5_1 | OmptVersion::V6_0)
    }

    /// Does this version provide any (possibly deprecated non-EMI) target
    /// callbacks?
    pub fn has_target_callbacks(self) -> bool {
        !matches!(self, OmptVersion::None)
    }

    /// Version string as a runtime would report it.
    pub fn version_string(self) -> &'static str {
        match self {
            OmptVersion::None => "none",
            OmptVersion::Tr4Preview => "TR4 5.0 preview 1",
            OmptVersion::V5_0 => "5.0",
            OmptVersion::V5_1 => "5.1",
            OmptVersion::V6_0 => "6.0",
        }
    }
}

impl fmt::Display for OmptVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.version_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emi_availability() {
        assert!(!OmptVersion::None.has_emi());
        assert!(!OmptVersion::Tr4Preview.has_emi());
        assert!(!OmptVersion::V5_0.has_emi());
        assert!(OmptVersion::V5_1.has_emi());
        assert!(OmptVersion::V6_0.has_emi());
    }

    #[test]
    fn ordering_matches_chronology() {
        assert!(OmptVersion::None < OmptVersion::Tr4Preview);
        assert!(OmptVersion::Tr4Preview < OmptVersion::V5_0);
        assert!(OmptVersion::V5_0 < OmptVersion::V5_1);
        assert!(OmptVersion::V5_1 < OmptVersion::V6_0);
    }

    #[test]
    fn display_strings() {
        assert_eq!(OmptVersion::Tr4Preview.to_string(), "TR4 5.0 preview 1");
        assert_eq!(OmptVersion::V5_1.to_string(), "5.1");
    }
}
