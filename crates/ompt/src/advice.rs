//! Mapping advice — the feedback half of the tool/runtime interface.
//!
//! Real OMPT is observation-only: the runtime tells the tool what
//! happened and the tool may at most print a report. This module is the
//! write-back extension the paper's §8 outlook (and Marzen et al.'s
//! static mapping generation, PAPERS.md) points at: a [`MapAdvisor`]
//! lets an attached analysis *steer* the runtime's data environment
//! while the program runs. The runtime consults the advisor once per
//! map-clause item at region entry and exit and applies the returned
//! [`MapAdvice`] as a concrete mapping rewrite:
//!
//! * **skip the enter copy** — `map(to:)` behaves as `map(alloc:)`
//!   (the §5 *unused transfer* fix);
//! * **skip the exit copy** — `map(from:)` behaves as `map(release:)`
//!   (the *round trip* fix when the host provably already holds the
//!   content);
//! * **persist** — keep the mapping resident at region exit instead of
//!   releasing it, so later regions reuse the present-table entry with
//!   no re-allocation and no re-send (the *duplicate transfer* /
//!   *repeated allocation* fix); an exit-side `from` copy degrades to a
//!   targeted update (the "inject an `update` instead of a round trip"
//!   rewrite);
//! * **elide** — drop the clause entirely (the *unused allocation*
//!   fix). The runtime overrides elision — and enter-copy skips — for
//!   variables a kernel actually references, so a mispredicting
//!   advisor can cost bandwidth but never correctness.
//!
//! Advice must be *monotone*: once an advisor returns a rewrite for a
//! `(device, host address)` site it must keep returning it (rules may
//! strengthen, never vanish), so the enter and exit halves of one
//! region can never disagree in an unsound direction. The runtime
//! accounts every applied rewrite — and every transfer, allocation, or
//! delete it made unnecessary — in a [`RemediationStats`], attributed
//! to the [`AdviceCause`] that motivated it.

use odp_model::{CodePtr, MapType, SimDuration};

/// Why a rewrite was advised — the five §5 finding categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AdviceCause {
    /// Algorithm 1: the site re-delivers content already on the device.
    DuplicateTransfer,
    /// Algorithm 2: the site bounces content away and back unchanged.
    RoundTrip,
    /// Algorithm 3: the site re-allocates the same mapping.
    RepeatedAlloc,
    /// Algorithm 4: no kernel ever uses the allocation.
    UnusedAlloc,
    /// Algorithm 5: the transferred data is provably never read.
    UnusedTransfer,
}

impl AdviceCause {
    /// Number of causes (array-table size).
    pub const COUNT: usize = 5;

    /// All causes, Table 1 order.
    pub const ALL: [AdviceCause; AdviceCause::COUNT] = [
        AdviceCause::DuplicateTransfer,
        AdviceCause::RoundTrip,
        AdviceCause::RepeatedAlloc,
        AdviceCause::UnusedAlloc,
        AdviceCause::UnusedTransfer,
    ];

    /// Dense index 0..[`AdviceCause::COUNT`].
    pub fn index(self) -> usize {
        match self {
            AdviceCause::DuplicateTransfer => 0,
            AdviceCause::RoundTrip => 1,
            AdviceCause::RepeatedAlloc => 2,
            AdviceCause::UnusedAlloc => 3,
            AdviceCause::UnusedTransfer => 4,
        }
    }

    /// Human-readable name (report rows).
    pub fn name(self) -> &'static str {
        match self {
            AdviceCause::DuplicateTransfer => "duplicate transfer",
            AdviceCause::RoundTrip => "round trip",
            AdviceCause::RepeatedAlloc => "repeated allocation",
            AdviceCause::UnusedAlloc => "unused allocation",
            AdviceCause::UnusedTransfer => "unused transfer",
        }
    }
}

/// The rewrite(s) advised for one map-clause item. Each slot carries the
/// finding category that motivated it, for per-cause accounting. All
/// `None` means "execute the clause as written".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MapAdvice {
    /// Drop the clause entirely (never allocate or copy).
    pub elide: Option<AdviceCause>,
    /// Keep the mapping resident at region exit (skip the release and
    /// the delete); later entries reuse the present-table entry.
    pub persist: Option<AdviceCause>,
    /// Skip the enter-side host→device copy (`to` → `alloc`).
    pub skip_to: Option<AdviceCause>,
    /// Skip the exit-side device→host copy (`from` → `release`).
    pub skip_from: Option<AdviceCause>,
}

impl MapAdvice {
    /// No rewrite: execute the clause as written.
    pub const KEEP: MapAdvice = MapAdvice {
        elide: None,
        persist: None,
        skip_to: None,
        skip_from: None,
    };

    /// Does this advice leave the clause untouched?
    pub fn is_keep(&self) -> bool {
        *self == MapAdvice::KEEP
    }
}

/// A mapping advisor the runtime consults at every map-clause item.
///
/// `device` is the target-device index the directive names, `codeptr`
/// the directive's return address, `host_addr`/`bytes` the mapped host
/// range, and `map_type` the clause as written. Implementations must be
/// monotone (see the module docs) and cheap: the consult sits on the
/// directive dispatch path (cost pinned by the `remediation_overhead`
/// bench group).
pub trait MapAdvisor: Send {
    /// Advise the enter side of a map clause (region entry).
    fn advise_enter(
        &mut self,
        device: u32,
        codeptr: CodePtr,
        host_addr: u64,
        bytes: u64,
        map_type: MapType,
    ) -> MapAdvice;

    /// Advise the exit side of a map clause (region exit).
    fn advise_exit(
        &mut self,
        device: u32,
        codeptr: CodePtr,
        host_addr: u64,
        bytes: u64,
        map_type: MapType,
    ) -> MapAdvice;
}

/// Per-cause counters of what remediation changed and what it saved.
/// "Avoided" quantities are priced with the runtime's own timing model
/// at the moment the operation was skipped, so recovered time is
/// directly comparable to the run's transfer/alloc time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemedyCounter {
    /// Advisor actions applied (exit-side retains, elisions, downgrades).
    pub rewrites: u64,
    /// Transfers that did not happen because of a rewrite.
    pub transfers_avoided: u64,
    /// Bytes those transfers would have moved.
    pub transfer_bytes_avoided: u64,
    /// Time those transfers would have cost.
    pub transfer_time_avoided: SimDuration,
    /// Device allocations that did not happen.
    pub allocs_avoided: u64,
    /// Device deallocations that did not happen.
    pub deletes_avoided: u64,
    /// Alloc/free time avoided.
    pub mgmt_time_avoided: SimDuration,
    /// Exit-side `from` copies degraded to targeted updates (these
    /// still move bytes; counted separately, not as recovered).
    pub updates_injected: u64,
    /// Bytes moved by injected updates.
    pub update_bytes: u64,
}

impl RemedyCounter {
    /// Accumulate another counter into this one.
    pub fn merge(&mut self, o: &RemedyCounter) {
        self.rewrites += o.rewrites;
        self.transfers_avoided += o.transfers_avoided;
        self.transfer_bytes_avoided += o.transfer_bytes_avoided;
        self.transfer_time_avoided += o.transfer_time_avoided;
        self.allocs_avoided += o.allocs_avoided;
        self.deletes_avoided += o.deletes_avoided;
        self.mgmt_time_avoided += o.mgmt_time_avoided;
        self.updates_injected += o.updates_injected;
        self.update_bytes += o.update_bytes;
    }
}

/// What online remediation recovered, per finding kind and per device.
#[derive(Clone, Debug, Default)]
pub struct RemediationStats {
    /// Counters indexed by `[device][cause.index()]`.
    devices: Vec<[RemedyCounter; AdviceCause::COUNT]>,
}

impl RemediationStats {
    /// Mutable counter for `(device, cause)`, growing the table.
    pub fn counter_mut(&mut self, device: u32, cause: AdviceCause) -> &mut RemedyCounter {
        let ix = device as usize;
        if ix >= self.devices.len() {
            self.devices
                .resize(ix + 1, [RemedyCounter::default(); AdviceCause::COUNT]);
        }
        &mut self.devices[ix][cause.index()]
    }

    /// Counter for `(device, cause)` (zero if never touched).
    pub fn counter(&self, device: u32, cause: AdviceCause) -> RemedyCounter {
        self.devices
            .get(device as usize)
            .map(|row| row[cause.index()])
            .unwrap_or_default()
    }

    /// Number of devices with any recorded activity slot.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Aggregate over all devices for one cause.
    pub fn per_cause(&self, cause: AdviceCause) -> RemedyCounter {
        let mut total = RemedyCounter::default();
        for row in &self.devices {
            total.merge(&row[cause.index()]);
        }
        total
    }

    /// Aggregate over all devices for one device across causes.
    pub fn per_device(&self, device: u32) -> RemedyCounter {
        let mut total = RemedyCounter::default();
        if let Some(row) = self.devices.get(device as usize) {
            for c in row {
                total.merge(c);
            }
        }
        total
    }

    /// Grand total across devices and causes.
    pub fn totals(&self) -> RemedyCounter {
        let mut total = RemedyCounter::default();
        for row in &self.devices {
            for c in row {
                total.merge(c);
            }
        }
        total
    }

    /// Did any rewrite fire at all?
    pub fn any_rewrites(&self) -> bool {
        self.totals().rewrites > 0
    }

    /// Accumulate another runtime's stats into this one (per-device,
    /// per-cause) — how a shared-device threaded run folds each
    /// thread's advisor accounting into one report.
    pub fn merge(&mut self, other: &RemediationStats) {
        for (device, row) in other.devices.iter().enumerate() {
            for (cause, counter) in AdviceCause::ALL.iter().zip(row.iter()) {
                if *counter != RemedyCounter::default() {
                    self.counter_mut(device as u32, *cause).merge(counter);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_indices_are_dense_and_stable() {
        for (i, c) in AdviceCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn keep_is_the_default() {
        assert!(MapAdvice::default().is_keep());
        assert!(MapAdvice::KEEP.is_keep());
        let advice = MapAdvice {
            persist: Some(AdviceCause::DuplicateTransfer),
            ..MapAdvice::KEEP
        };
        assert!(!advice.is_keep());
    }

    #[test]
    fn stats_aggregate_per_cause_and_device() {
        let mut s = RemediationStats::default();
        s.counter_mut(0, AdviceCause::DuplicateTransfer)
            .transfer_bytes_avoided += 100;
        s.counter_mut(2, AdviceCause::DuplicateTransfer)
            .transfer_bytes_avoided += 50;
        s.counter_mut(2, AdviceCause::RoundTrip).rewrites += 1;
        assert_eq!(s.device_count(), 3);
        assert_eq!(
            s.per_cause(AdviceCause::DuplicateTransfer)
                .transfer_bytes_avoided,
            150
        );
        assert_eq!(s.per_device(2).transfer_bytes_avoided, 50);
        assert_eq!(s.totals().transfer_bytes_avoided, 150);
        assert!(s.any_rewrites());
        assert_eq!(
            s.counter(1, AdviceCause::UnusedAlloc),
            RemedyCounter::default()
        );
    }

    #[test]
    fn empty_stats_have_no_rewrites() {
        let s = RemediationStats::default();
        assert!(!s.any_rewrites());
        assert_eq!(s.totals(), RemedyCounter::default());
    }
}
