//! Lock-free single-producer / single-consumer ingest rings.
//!
//! The sharded tool gives every callback thread (producer) a
//! fixed-capacity ring into which it publishes completed events; the
//! drain path (consumer) sweeps the rings in batches without ever
//! taking the producer's shard lock. This replaces the
//! mutex-protected pending queue: on the callback fast path an event
//! handoff is one slot write plus one release store, and a draining
//! consumer never blocks a recording thread.
//!
//! # Design
//!
//! A classic Lamport ring: a power-of-two slot array indexed by two
//! monotonically increasing cursors (`tail` = producer, `head` =
//! consumer), each owned exclusively by one side and published with
//! release stores. Both handles cache the opposing cursor and refresh
//! it only when the ring looks full/empty, so the steady state touches
//! one shared cache line per side. Cursors are `usize` positions, not
//! masked indices; wraparound uses wrapping arithmetic and is covered
//! by the storm tests.
//!
//! # Safety
//!
//! This is the one module in the workspace that uses `unsafe` (the
//! crate is `deny(unsafe_code)`, not `forbid`, for exactly this file).
//! The invariant carried by every unsafe block: slot `i & mask` is
//! initialized iff `head <= i < tail`. The producer writes a slot
//! before release-storing `tail = i + 1` (making it visible), and the
//! consumer reads a slot after acquire-loading `tail` (observing the
//! write) and before release-storing `head = i + 1` (surrendering it).
//! `Producer`/`Consumer` take `&mut self`, so each cursor has exactly
//! one writer. The concurrent storm suite in
//! `crates/core/tests/ring_storm.rs` races both sides at the capacity
//! boundary under seeded schedules.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A cursor on its own cache line, so producer and consumer updates
/// never false-share.
#[repr(align(64))]
struct CachePadded(AtomicUsize);

struct Inner<T> {
    mask: usize,
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer cursor: everything below it has been popped.
    head: CachePadded,
    /// Producer cursor: everything below it has been pushed.
    tail: CachePadded,
}

// SAFETY: the cursor protocol above gives each initialized slot exactly
// one accessor at a time; sending the halves to different threads is
// the intended use. `T: Send` is required because values cross threads.
unsafe impl<T: Send> Sync for Inner<T> {}
unsafe impl<T: Send> Send for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): plain loads are fine.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let mut i = head;
        while i != tail {
            // SAFETY: head..tail slots are initialized and no handle
            // can access them anymore.
            unsafe {
                (*self.buf[i & self.mask].get()).assume_init_drop();
            }
            i = i.wrapping_add(1);
        }
    }
}

/// Create a ring with room for at least `capacity` values (rounded up
/// to a power of two). Returns the two single-owner endpoints.
///
/// # Panics
///
/// Panics if `capacity` is 0.
pub fn spsc<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be non-zero");
    let cap = capacity.next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        mask: cap - 1,
        buf,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            head_cache: 0,
        },
        Consumer {
            inner,
            tail_cache: 0,
        },
    )
}

/// The producing endpoint: exactly one thread at a time may push.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Last observed consumer cursor (refreshed only on apparent full).
    head_cache: usize,
}

impl<T: Send> Producer<T> {
    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Push a value; returns it back if the ring is full (the caller
    /// spills it elsewhere — the ring never blocks).
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let tail = self.inner.tail.0.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.head_cache) == self.capacity() {
            self.head_cache = self.inner.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.head_cache) == self.capacity() {
                return Err(value);
            }
        }
        // SAFETY: `tail - head < capacity`, so slot `tail & mask` is
        // unoccupied and owned by the producer until the store below.
        unsafe {
            (*self.inner.buf[tail & self.inner.mask].get()).write(value);
        }
        self.inner
            .tail
            .0
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("capacity", &(self.inner.mask + 1))
            .finish()
    }
}

/// The consuming endpoint: exactly one thread at a time may pop. (The
/// tool serializes successive drainers behind its engine lock; the
/// mutex handoff provides the happens-before edge between them.)
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Last observed producer cursor (refreshed on apparent empty).
    tail_cache: usize,
}

impl<T: Send> Consumer<T> {
    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Pop the oldest value, if any.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.inner.head.0.load(Ordering::Relaxed);
        if head == self.tail_cache {
            self.tail_cache = self.inner.tail.0.load(Ordering::Acquire);
            if head == self.tail_cache {
                return None;
            }
        }
        // SAFETY: `head < tail`, so slot `head & mask` is initialized
        // and owned by the consumer until the store below.
        let value = unsafe { (*self.inner.buf[head & self.inner.mask].get()).assume_init_read() };
        self.inner
            .head
            .0
            .store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Drain everything currently visible into `out`; returns how many
    /// values were appended. One acquire load amortized over the whole
    /// batch.
    pub fn pop_all(&mut self, out: &mut Vec<T>) -> usize {
        let mut head = self.inner.head.0.load(Ordering::Relaxed);
        self.tail_cache = self.inner.tail.0.load(Ordering::Acquire);
        let n = self.tail_cache.wrapping_sub(head);
        out.reserve(n);
        let before = out.len();
        while head != self.tail_cache {
            // SAFETY: as in `pop`; each slot in head..tail is
            // initialized and surrendered exactly once below.
            out.push(unsafe { (*self.inner.buf[head & self.inner.mask].get()).assume_init_read() });
            head = head.wrapping_add(1);
        }
        self.inner.head.0.store(head, Ordering::Release);
        out.len() - before
    }

    /// Is the ring empty as of the latest producer publication?
    pub fn is_empty(&mut self) -> bool {
        let head = self.inner.head.0.load(Ordering::Relaxed);
        self.tail_cache = self.inner.tail.0.load(Ordering::Acquire);
        head == self.tail_cache
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("capacity", &(self.inner.mask + 1))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_full_signal() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "full ring hands the value back");
        assert_eq!(rx.pop(), Some(0));
        tx.push(4).unwrap();
        let mut out = Vec::new();
        assert_eq!(rx.pop_all(&mut out), 4);
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn wraparound_preserves_order() {
        let (mut tx, mut rx) = spsc::<usize>(8);
        let mut expect = 0usize;
        for round in 0..1000 {
            for i in 0..(round % 8) + 1 {
                tx.push(round * 10 + i).unwrap();
            }
            for i in 0..(round % 8) + 1 {
                assert_eq!(rx.pop(), Some(round * 10 + i));
            }
            expect += (round % 8) + 1;
        }
        assert!(
            expect > 3000,
            "exercised well past one index wrap of the mask"
        );
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = spsc::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx1, _rx1) = spsc::<u8>(1);
        assert_eq!(tx1.capacity(), 1);
    }

    #[test]
    fn dropping_the_ring_drops_undrained_values() {
        let marker = Arc::new(());
        {
            let (mut tx, mut rx) = spsc::<Arc<()>>(8);
            for _ in 0..5 {
                tx.push(Arc::clone(&marker)).unwrap();
            }
            assert!(rx.pop().is_some());
            assert_eq!(Arc::strong_count(&marker), 5, "4 still queued + original");
        }
        assert_eq!(Arc::strong_count(&marker), 1, "ring drop released the rest");
    }

    #[test]
    fn threaded_handoff_at_capacity_boundary() {
        // Shrunk under miri (interpreted execution): still enough to wrap
        // the 4-slot ring's index mask many times while miri checks the
        // unsafe cell accesses and Acquire/Release pairs for UB.
        const N: usize = if cfg!(miri) { 1_000 } else { 200_000 };
        let (mut tx, mut rx) = spsc::<usize>(4);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    while let Err(back) = tx.push(v) {
                        v = back;
                        std::hint::spin_loop();
                    }
                }
            });
            s.spawn(move || {
                let mut next = 0usize;
                let mut batch = Vec::new();
                while next < N {
                    if rx.pop_all(&mut batch) > 0 {
                        for v in batch.drain(..) {
                            assert_eq!(v, next, "strict FIFO under racing");
                            next += 1;
                        }
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
        });
    }
}
