//! Compiler/runtime OMPT capability profiles — the paper's Table 6.
//!
//! Appendix D surveys OMPT target-feature support across nine compiler
//! infrastructures. This module encodes that matrix: which callbacks each
//! runtime supports, since which release, and the footnoted
//! deprecation/optionality status. The simulator can be configured with
//! any profile, which makes tool degradation (§A.6's version warning)
//! testable without the actual compilers.

use crate::callback::CallbackKind;
use crate::version::OmptVersion;
use serde::{Deserialize, Serialize};

/// One of the nine surveyed compiler infrastructures (Table 6 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompilerProfile {
    /// AMD Optimizing C/C++ and Fortran Compilers.
    AmdAocc,
    /// AMD AOMP (Radeon-focused LLVM fork).
    AmdAomp,
    /// AMD ROCm LLVM.
    AmdRocm,
    /// Arm Compiler for Linux (offload disabled; non-target OMPT only).
    ArmAcfl,
    /// GNU GCC (no OMPT at all).
    GnuGcc,
    /// HPE Cray Compiling Environment.
    HpeCce,
    /// Intel oneAPI DPC++/C++ and Fortran.
    IntelIcx,
    /// LLVM Clang/Flang (the paper's primary platform).
    LlvmClang,
    /// NVIDIA HPC SDK.
    NvidiaHpc,
}

/// What a configured runtime offers to tools.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeCapabilities {
    /// The compiler infrastructure this models.
    pub profile: CompilerProfile,
    /// OMPT interface version reported at tool initialization.
    pub ompt_version: OmptVersion,
    /// Runtime identification string (cf. §A.6 "LLVM OMP version ...").
    pub runtime_name: &'static str,
    /// Callbacks this runtime dispatches.
    pub supported_callbacks: Vec<CallbackKind>,
    /// Does the runtime implement the OMPT target tracing interface?
    pub tracing_interface: bool,
    /// Must the program be (re)compiled with a special flag for OMPT to
    /// engage (NVHPC's `-mp=ompt`)?
    pub requires_recompile_flag: Option<&'static str>,
}

impl RuntimeCapabilities {
    /// Does the runtime dispatch `kind`?
    pub fn supports(&self, kind: CallbackKind) -> bool {
        self.supported_callbacks.contains(&kind)
    }

    /// Does this runtime satisfy OMPDataPerf's two hard requirements
    /// (`target_emi` + `target_data_op_emi`, §6)?
    pub fn meets_ompdataperf_requirements(&self) -> bool {
        self.supports(CallbackKind::TargetEmi) && self.supports(CallbackKind::TargetDataOpEmi)
    }
}

/// A row of Table 6: per-feature first-supporting version strings.
#[derive(Clone, Debug, Serialize)]
pub struct SupportMatrixRow {
    /// Compiler column.
    pub profile: CompilerProfile,
    /// Display name.
    pub compiler: &'static str,
    /// Runtime library name.
    pub runtime_name: &'static str,
    /// Tool-initialization support since (None = unsupported).
    pub tool_init: Option<&'static str>,
    /// Non-EMI target callbacks since.
    pub target_callbacks: Option<&'static str>,
    /// OMPT tracing interface since.
    pub tracing: Option<&'static str>,
    /// EMI target callbacks since.
    pub target_emi: Option<&'static str>,
    /// Target-map EMI callback since (optional feature).
    pub target_map_emi: Option<&'static str>,
}

impl CompilerProfile {
    /// All nine profiles, Table 6 column order.
    pub const ALL: [CompilerProfile; 9] = [
        CompilerProfile::AmdAocc,
        CompilerProfile::AmdAomp,
        CompilerProfile::AmdRocm,
        CompilerProfile::ArmAcfl,
        CompilerProfile::GnuGcc,
        CompilerProfile::HpeCce,
        CompilerProfile::IntelIcx,
        CompilerProfile::LlvmClang,
        CompilerProfile::NvidiaHpc,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CompilerProfile::AmdAocc => "AMD AOCC",
            CompilerProfile::AmdAomp => "AMD AOMP",
            CompilerProfile::AmdRocm => "AMD ROCm",
            CompilerProfile::ArmAcfl => "Arm ACfL",
            CompilerProfile::GnuGcc => "GNU GCC",
            CompilerProfile::HpeCce => "HPE CCE",
            CompilerProfile::IntelIcx => "Intel ICX/IFX",
            CompilerProfile::LlvmClang => "LLVM Clang/Flang",
            CompilerProfile::NvidiaHpc => "NVIDIA NVHPC",
        }
    }

    /// The capability set this compiler's runtime offers (Table 6 body).
    pub fn capabilities(self) -> RuntimeCapabilities {
        use CallbackKind::*;
        let full_emi = vec![
            TargetEmi,
            TargetDataOpEmi,
            TargetSubmitEmi,
            Target,
            TargetDataOp,
            TargetSubmit,
        ];
        match self {
            CompilerProfile::LlvmClang => RuntimeCapabilities {
                profile: self,
                ompt_version: OmptVersion::V5_1,
                runtime_name: "LLVM OMP version: 5.0.20140926",
                supported_callbacks: full_emi,
                tracing_interface: false,
                requires_recompile_flag: None,
            },
            CompilerProfile::AmdAocc => RuntimeCapabilities {
                profile: self,
                ompt_version: OmptVersion::V5_1,
                runtime_name: "AOCC libomp",
                supported_callbacks: full_emi,
                tracing_interface: false,
                requires_recompile_flag: None,
            },
            CompilerProfile::AmdAomp => RuntimeCapabilities {
                profile: self,
                ompt_version: OmptVersion::V5_1,
                runtime_name: "AOMP libomp",
                supported_callbacks: full_emi,
                tracing_interface: true,
                requires_recompile_flag: None,
            },
            CompilerProfile::AmdRocm => RuntimeCapabilities {
                profile: self,
                ompt_version: OmptVersion::V5_1,
                runtime_name: "ROCm libomp",
                supported_callbacks: full_emi,
                tracing_interface: true,
                requires_recompile_flag: None,
            },
            CompilerProfile::HpeCce => RuntimeCapabilities {
                profile: self,
                ompt_version: OmptVersion::V5_1,
                runtime_name: "libcraymp",
                supported_callbacks: full_emi,
                tracing_interface: false,
                requires_recompile_flag: None,
            },
            CompilerProfile::IntelIcx => RuntimeCapabilities {
                profile: self,
                ompt_version: OmptVersion::V5_1,
                runtime_name: "Intel libomp",
                supported_callbacks: full_emi,
                tracing_interface: false,
                requires_recompile_flag: None,
            },
            CompilerProfile::NvidiaHpc => {
                let mut cbs = full_emi;
                cbs.push(TargetMapEmi);
                cbs.push(TargetMap);
                RuntimeCapabilities {
                    profile: self,
                    ompt_version: OmptVersion::V5_1,
                    runtime_name: "libnvomp",
                    supported_callbacks: cbs,
                    tracing_interface: false,
                    requires_recompile_flag: Some("-mp=ompt"),
                }
            }
            CompilerProfile::ArmAcfl => RuntimeCapabilities {
                profile: self,
                ompt_version: OmptVersion::V5_0,
                runtime_name: "ACfL libomp",
                // Non-target OMPT only: no target callbacks at all.
                supported_callbacks: vec![],
                tracing_interface: false,
                requires_recompile_flag: None,
            },
            CompilerProfile::GnuGcc => RuntimeCapabilities {
                profile: self,
                ompt_version: OmptVersion::None,
                runtime_name: "libgomp",
                supported_callbacks: vec![],
                tracing_interface: false,
                requires_recompile_flag: None,
            },
        }
    }

    /// A degraded variant of this profile reporting only OMPT 5.0
    /// (non-EMI callbacks) — used to reproduce the §A.6 warning, which
    /// shows OMPDataPerf operating against "OMPT interface version TR4 5.0
    /// preview 1" with degraded features.
    pub fn capabilities_pre_emi(self) -> RuntimeCapabilities {
        use CallbackKind::*;
        let mut caps = self.capabilities();
        caps.ompt_version = OmptVersion::Tr4Preview;
        caps.supported_callbacks = vec![Target, TargetDataOp, TargetSubmit];
        caps
    }

    /// Table 6 row (feature → first supporting release).
    pub fn support_matrix_row(self) -> SupportMatrixRow {
        let caps = self.capabilities();
        match self {
            CompilerProfile::AmdAocc => SupportMatrixRow {
                profile: self,
                compiler: self.name(),
                runtime_name: caps.runtime_name,
                tool_init: Some("2.0"),
                target_callbacks: Some("5.0"),
                tracing: None,
                target_emi: Some("5.0"),
                target_map_emi: None,
            },
            CompilerProfile::AmdAomp => SupportMatrixRow {
                profile: self,
                compiler: self.name(),
                runtime_name: caps.runtime_name,
                tool_init: Some("0.8-0"),
                target_callbacks: Some("17.0-3"),
                tracing: Some("14.0-1"),
                target_emi: Some("17.0-3"),
                target_map_emi: None,
            },
            CompilerProfile::AmdRocm => SupportMatrixRow {
                profile: self,
                compiler: self.name(),
                runtime_name: caps.runtime_name,
                tool_init: Some("3.5.0"),
                target_callbacks: Some("5.7.0"),
                tracing: Some("5.1.0"),
                target_emi: Some("5.7.0"),
                target_map_emi: None,
            },
            CompilerProfile::ArmAcfl => SupportMatrixRow {
                profile: self,
                compiler: self.name(),
                runtime_name: caps.runtime_name,
                tool_init: Some("20.0"),
                target_callbacks: None,
                tracing: None,
                target_emi: None,
                target_map_emi: None,
            },
            CompilerProfile::GnuGcc => SupportMatrixRow {
                profile: self,
                compiler: self.name(),
                runtime_name: caps.runtime_name,
                tool_init: None,
                target_callbacks: None,
                tracing: None,
                target_emi: None,
                target_map_emi: None,
            },
            CompilerProfile::HpeCce => SupportMatrixRow {
                profile: self,
                compiler: self.name(),
                runtime_name: caps.runtime_name,
                tool_init: Some("11.0.0"),
                target_callbacks: Some("16.0.0"),
                tracing: None,
                target_emi: Some("16.0.0"),
                target_map_emi: None,
            },
            CompilerProfile::IntelIcx => SupportMatrixRow {
                profile: self,
                compiler: self.name(),
                runtime_name: caps.runtime_name,
                tool_init: Some("2021.1"),
                target_callbacks: Some("2023.2"),
                tracing: None,
                target_emi: Some("2023.2"),
                target_map_emi: None,
            },
            CompilerProfile::LlvmClang => SupportMatrixRow {
                profile: self,
                compiler: self.name(),
                runtime_name: caps.runtime_name,
                tool_init: Some("8.0.0"),
                target_callbacks: Some("17.0.1"),
                tracing: None,
                target_emi: Some("17.0.1"),
                target_map_emi: None,
            },
            CompilerProfile::NvidiaHpc => SupportMatrixRow {
                profile: self,
                compiler: self.name(),
                runtime_name: caps.runtime_name,
                tool_init: Some("22.7"),
                target_callbacks: Some("22.7"),
                tracing: None,
                target_emi: Some("22.7"),
                target_map_emi: Some("22.7"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_of_nine_meet_ompdataperf_requirements() {
        // Table 6 / §D: all full-EMI runtimes qualify; ACfL (no target
        // callbacks) and GCC (no OMPT) do not.
        let qualifying = CompilerProfile::ALL
            .iter()
            .filter(|p| p.capabilities().meets_ompdataperf_requirements())
            .count();
        assert_eq!(qualifying, 7);
        assert!(!CompilerProfile::GnuGcc
            .capabilities()
            .meets_ompdataperf_requirements());
        assert!(!CompilerProfile::ArmAcfl
            .capabilities()
            .meets_ompdataperf_requirements());
    }

    #[test]
    fn only_amd_forks_have_tracing() {
        for p in CompilerProfile::ALL {
            let expect = matches!(p, CompilerProfile::AmdAomp | CompilerProfile::AmdRocm);
            assert_eq!(p.capabilities().tracing_interface, expect, "{p:?}");
        }
    }

    #[test]
    fn nvhpc_requires_recompile_flag() {
        assert_eq!(
            CompilerProfile::NvidiaHpc
                .capabilities()
                .requires_recompile_flag,
            Some("-mp=ompt")
        );
        assert_eq!(
            CompilerProfile::LlvmClang
                .capabilities()
                .requires_recompile_flag,
            None
        );
    }

    #[test]
    fn pre_emi_profile_reports_tr4_and_no_emi() {
        let caps = CompilerProfile::LlvmClang.capabilities_pre_emi();
        assert_eq!(caps.ompt_version, OmptVersion::Tr4Preview);
        assert!(!caps.supports(CallbackKind::TargetEmi));
        assert!(caps.supports(CallbackKind::Target));
        assert!(!caps.meets_ompdataperf_requirements());
    }

    #[test]
    fn matrix_rows_match_capabilities() {
        for p in CompilerProfile::ALL {
            let row = p.support_matrix_row();
            let caps = p.capabilities();
            assert_eq!(
                row.target_emi.is_some(),
                caps.supports(CallbackKind::TargetEmi),
                "{p:?}: matrix row and capability set disagree on EMI"
            );
            assert_eq!(row.tracing.is_some(), caps.tracing_interface, "{p:?}");
        }
    }

    #[test]
    fn gcc_row_is_all_dashes() {
        let row = CompilerProfile::GnuGcc.support_matrix_row();
        assert!(row.tool_init.is_none());
        assert!(row.target_callbacks.is_none());
        assert!(row.target_emi.is_none());
    }
}
