//! Tool registration and dispatch, modeled on `ompt_start_tool`.
//!
//! A tool implements [`Tool`]; when attached to a runtime it receives
//! `initialize` with the runtime's [`RuntimeCapabilities`] and returns the
//! set of callbacks it wants. The runtime answers each request with a
//! [`SetCallbackResult`] — mirroring `ompt_set_callback`'s return codes —
//! and thereafter only delivers events for callbacks that registered
//! successfully. This is exactly the negotiation that produces the
//! degraded-mode warning in the paper's §A.6 sample output.

use crate::callback::{
    CallbackKind, DataOpCallback, HostAccessInfo, KernelAccessInfo, SubmitCallback, TargetCallback,
};
use crate::capability::RuntimeCapabilities;

/// Result of requesting one callback, per `ompt_set_result_t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetCallbackResult {
    /// `ompt_set_always`: the callback will be dispatched on every event.
    Always,
    /// `ompt_set_never`: the runtime will never dispatch this callback.
    Never,
    /// `ompt_set_error`: the callback is unknown to this runtime.
    Error,
}

impl SetCallbackResult {
    /// Did registration succeed?
    pub fn is_registered(self) -> bool {
        matches!(self, SetCallbackResult::Always)
    }
}

/// What a tool asked for and what it was granted.
#[derive(Clone, Debug, Default)]
pub struct ToolRegistration {
    /// Callbacks the tool requested, in request order.
    pub requested: Vec<CallbackKind>,
    /// Per-callback grant results (same order as `requested`).
    pub results: Vec<SetCallbackResult>,
}

impl ToolRegistration {
    /// Request a set of callbacks against the runtime's capabilities.
    pub fn negotiate(requested: &[CallbackKind], caps: &RuntimeCapabilities) -> Self {
        let results = requested
            .iter()
            .map(|&k| {
                if caps.supports(k) {
                    SetCallbackResult::Always
                } else {
                    SetCallbackResult::Never
                }
            })
            .collect();
        ToolRegistration {
            requested: requested.to_vec(),
            results,
        }
    }

    /// Was `kind` granted?
    pub fn granted(&self, kind: CallbackKind) -> bool {
        self.requested
            .iter()
            .zip(&self.results)
            .any(|(&k, r)| k == kind && r.is_registered())
    }

    /// Were all requested callbacks granted?
    pub fn fully_granted(&self) -> bool {
        self.results.iter().all(|r| r.is_registered())
    }

    /// Callbacks that were requested but denied.
    pub fn denied(&self) -> Vec<CallbackKind> {
        self.requested
            .iter()
            .zip(&self.results)
            .filter(|(_, r)| !r.is_registered())
            .map(|(&k, _)| k)
            .collect()
    }
}

/// An OMPT tool. The runtime calls `initialize` once at startup (the
/// `ompt_start_tool` handshake), dispatches events while the program runs,
/// and calls `finalize` at shutdown.
///
/// Tools are `Send`: a multi-threaded runtime hands each of its threads
/// a tool instance (usually shards of one shared collector — see
/// `ompdataperf::tool::ToolHandle::fork_tool`), and those instances move
/// into the runtime threads.
pub trait Tool: Send {
    /// Handshake: inspect the runtime's capabilities and request
    /// callbacks. Returning an empty request detaches the tool (the
    /// `ompt_start_tool` NULL return).
    fn initialize(&mut self, caps: &RuntimeCapabilities) -> ToolRegistration;

    /// A target construct began or ended.
    fn on_target(&mut self, cb: &TargetCallback) {
        let _ = cb;
    }

    /// A data operation began or ended.
    fn on_data_op(&mut self, cb: &DataOpCallback<'_>) {
        let _ = cb;
    }

    /// A kernel launch began or ended.
    fn on_submit(&mut self, cb: &SubmitCallback) {
        let _ = cb;
    }

    /// Instrumentation feed (NOT OMPT): per-kernel access ranges, as a
    /// binary-instrumentation tool like Arbalest would observe them.
    /// OMPDataPerf leaves this at its no-op default.
    fn on_kernel_access(&mut self, info: &KernelAccessInfo) {
        let _ = info;
    }

    /// Instrumentation feed (NOT OMPT): host accesses to mapped data.
    fn on_host_access(&mut self, info: &HostAccessInfo) {
        let _ = info;
    }

    /// The monitored program finished; `total_time_ns` is its final
    /// virtual clock.
    fn finalize(&mut self, total_time_ns: u64) {
        let _ = total_time_ns;
    }
}

/// A tool that observes nothing — used to measure baseline (tool-off)
/// runs through the identical dispatch path.
#[derive(Debug, Default)]
pub struct NullTool;

impl Tool for NullTool {
    fn initialize(&mut self, _caps: &RuntimeCapabilities) -> ToolRegistration {
        ToolRegistration::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CompilerProfile;

    #[test]
    fn negotiation_against_full_runtime() {
        let caps = CompilerProfile::LlvmClang.capabilities();
        let reg = ToolRegistration::negotiate(
            &[
                CallbackKind::TargetEmi,
                CallbackKind::TargetDataOpEmi,
                CallbackKind::TargetSubmitEmi,
            ],
            &caps,
        );
        assert!(reg.fully_granted());
        assert!(reg.granted(CallbackKind::TargetEmi));
        assert!(reg.denied().is_empty());
    }

    #[test]
    fn negotiation_against_gcc_denies_everything() {
        let caps = CompilerProfile::GnuGcc.capabilities();
        let reg = ToolRegistration::negotiate(
            &[CallbackKind::TargetEmi, CallbackKind::TargetDataOpEmi],
            &caps,
        );
        assert!(!reg.fully_granted());
        assert_eq!(reg.denied().len(), 2);
    }

    #[test]
    fn map_emi_is_only_granted_by_nvhpc() {
        for profile in CompilerProfile::ALL {
            let caps = profile.capabilities();
            let reg = ToolRegistration::negotiate(&[CallbackKind::TargetMapEmi], &caps);
            let expect = profile == CompilerProfile::NvidiaHpc;
            assert_eq!(reg.fully_granted(), expect, "{profile:?}");
        }
    }

    #[test]
    fn null_tool_requests_nothing() {
        let mut t = NullTool;
        let reg = t.initialize(&CompilerProfile::LlvmClang.capabilities());
        assert!(reg.requested.is_empty());
        assert!(reg.fully_granted(), "vacuously");
    }
}
