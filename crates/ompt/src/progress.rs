//! Stream-progress tracking for online tools.
//!
//! OMPT delivers end callbacks in *completion* order, while every
//! detection algorithm consumes events in *chronological start* order.
//! A tool that analyzes online therefore needs to know when an event's
//! position in the chronological order is settled: once no still-open
//! operation (and no operation yet to begin) can start at or before
//! time *t*, every buffered event starting at or before *t* is safe to
//! release.
//!
//! [`StreamClock`] computes that bound — the **watermark** — from the
//! begin/end callback edges the tool already receives. The runtime's
//! callback clock is monotonic, so a new operation can never begin
//! before the latest callback time; open operations pin the watermark
//! at their earliest begin time.

use odp_model::SimTime;
use std::collections::BTreeMap;

/// Tracks open operation begin times and the latest callback time, and
/// yields the reorder watermark for streaming consumers.
///
/// `open`/`close` must be called with matching begin times (the tool
/// already keeps per-id begin maps for duration pairing, so the close
/// time is at hand). Multiple operations may share a begin time.
#[derive(Clone, Debug, Default)]
pub struct StreamClock {
    /// Begin time → number of open operations that began then.
    open: BTreeMap<SimTime, u32>,
    /// Latest callback time observed (the runtime clock is monotonic).
    now: SimTime,
}

impl StreamClock {
    /// A fresh clock at time zero with nothing open.
    pub fn new() -> StreamClock {
        StreamClock::default()
    }

    /// Observe any callback edge at `t` (advances the monotonic clock).
    pub fn observe(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// An operation began at `t`.
    pub fn open(&mut self, t: SimTime) {
        self.observe(t);
        *self.open.entry(t).or_insert(0) += 1;
    }

    /// An operation that began at `begin` ended at `t`. Unmatched closes
    /// are ignored (mirrors the tool's tolerance of unmatched End
    /// callbacks).
    pub fn close(&mut self, begin: SimTime, t: SimTime) {
        self.observe(t);
        if let Some(n) = self.open.get_mut(&begin) {
            *n -= 1;
            if *n == 0 {
                self.open.remove(&begin);
            }
        }
    }

    /// Number of currently open operations.
    pub fn open_count(&self) -> usize {
        self.open.values().map(|&n| n as usize).sum()
    }

    /// The watermark: no future event can start at or before this time
    /// minus one... precisely, no event delivered after this call will
    /// have a start time strictly below the returned value, and any
    /// event starting exactly at it was recorded earlier (monotonic
    /// sequence numbers break the tie). Buffered events with
    /// `start <= watermark()` are safe to release in `(start, id)`
    /// order.
    pub fn watermark(&self) -> SimTime {
        match self.open.keys().next() {
            // An open op will eventually emit an event at its begin
            // time; nothing at or after that is settled yet. `- 1`
            // (saturating) keeps `start <= watermark` releases strictly
            // ahead of it.
            Some(&earliest) => SimTime(earliest.0.saturating_sub(1)),
            None => self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_clock_follows_observations() {
        let mut c = StreamClock::new();
        assert_eq!(c.watermark(), SimTime(0));
        c.observe(SimTime(100));
        assert_eq!(c.watermark(), SimTime(100));
        c.observe(SimTime(50)); // non-monotonic observations are clamped
        assert_eq!(c.watermark(), SimTime(100));
    }

    #[test]
    fn open_ops_pin_the_watermark() {
        let mut c = StreamClock::new();
        c.open(SimTime(10));
        c.open(SimTime(30));
        c.observe(SimTime(90));
        assert_eq!(c.watermark(), SimTime(9), "held below the earliest open");
        c.close(SimTime(10), SimTime(95));
        assert_eq!(c.watermark(), SimTime(29));
        c.close(SimTime(30), SimTime(99));
        assert_eq!(c.watermark(), SimTime(99), "released to the clock");
        assert_eq!(c.open_count(), 0);
    }

    #[test]
    fn shared_begin_times_are_counted() {
        let mut c = StreamClock::new();
        c.open(SimTime(5));
        c.open(SimTime(5));
        c.close(SimTime(5), SimTime(20));
        assert_eq!(c.watermark(), SimTime(4), "one of the two is still open");
        c.close(SimTime(5), SimTime(25));
        assert_eq!(c.watermark(), SimTime(25));
    }

    #[test]
    fn unmatched_close_is_ignored() {
        let mut c = StreamClock::new();
        c.close(SimTime(5), SimTime(10));
        assert_eq!(c.watermark(), SimTime(10));
    }
}
