//! Stream-progress tracking for online tools.
//!
//! OMPT delivers end callbacks in *completion* order, while every
//! detection algorithm consumes events in *chronological start* order.
//! A tool that analyzes online therefore needs to know when an event's
//! position in the chronological order is settled: once no still-open
//! operation (and no operation yet to begin) can start at or before
//! time *t*, every buffered event starting at or before *t* is safe to
//! release.
//!
//! [`StreamClock`] computes that bound — the **watermark** — from the
//! begin/end callback edges the tool already receives. The runtime's
//! callback clock is monotonic, so a new operation can never begin
//! before the latest callback time; open operations pin the watermark
//! at their earliest begin time.
//!
//! # Multi-threaded runtimes: the merged watermark
//!
//! A multi-threaded runtime drives callbacks from N threads, each with
//! its own monotonic callback clock. No single [`StreamClock`] can see
//! them all without a lock on the callback fast path, so each thread
//! owns a clock and publishes its progress into one [`GlobalWatermark`]
//! slot — two relaxed-size atomics per shard, no lock anywhere:
//!
//! * `safe_below` — the smallest start time any *future* event from
//!   that thread can carry (its earliest open begin, or its current
//!   clock when idle);
//! * the thread's own tie-safe local watermark (used verbatim when only
//!   one shard exists, preserving single-threaded release semantics).
//!
//! The merged watermark is `min(safe_below) - 1` across registered
//! shards: strictly below every possible future start, so releases of
//! buffered events at or below it can never be overtaken by a
//! later-arriving event from *any* thread — even when two threads carry
//! events with identical start times (cross-thread ties break by shard
//! id, which only stays consistent if neither side is released early).
//! With a single shard the subtraction is unnecessary (same-thread ties
//! are ordered by monotonic sequence numbers) and the merge returns the
//! shard's own watermark unchanged.

use odp_model::SimTime;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Tracks open operation begin times and the latest callback time, and
/// yields the reorder watermark for streaming consumers.
///
/// `open`/`close` must be called with matching begin times (the tool
/// already keeps per-id begin maps for duration pairing, so the close
/// time is at hand). Multiple operations may share a begin time.
#[derive(Clone, Debug, Default)]
pub struct StreamClock {
    /// Begin time → number of open operations that began then.
    open: BTreeMap<SimTime, u32>,
    /// Latest callback time observed (the runtime clock is monotonic).
    now: SimTime,
}

impl StreamClock {
    /// A fresh clock at time zero with nothing open.
    pub fn new() -> StreamClock {
        StreamClock::default()
    }

    /// Observe any callback edge at `t` (advances the monotonic clock).
    pub fn observe(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// An operation began at `t`.
    pub fn open(&mut self, t: SimTime) {
        self.observe(t);
        *self.open.entry(t).or_insert(0) += 1;
    }

    /// An operation that began at `begin` ended at `t`. Unmatched closes
    /// are ignored (mirrors the tool's tolerance of unmatched End
    /// callbacks).
    pub fn close(&mut self, begin: SimTime, t: SimTime) {
        self.observe(t);
        if let Some(n) = self.open.get_mut(&begin) {
            *n -= 1;
            if *n == 0 {
                self.open.remove(&begin);
            }
        }
    }

    /// Number of currently open operations.
    pub fn open_count(&self) -> usize {
        self.open.values().map(|&n| n as usize).sum()
    }

    /// The watermark: no future event can start at or before this time
    /// minus one... precisely, no event delivered after this call will
    /// have a start time strictly below the returned value, and any
    /// event starting exactly at it was recorded earlier (monotonic
    /// sequence numbers break the tie). Buffered events with
    /// `start <= watermark()` are safe to release in `(start, id)`
    /// order.
    pub fn watermark(&self) -> SimTime {
        match self.open.keys().next() {
            // An open op will eventually emit an event at its begin
            // time; nothing at or after that is settled yet. `- 1`
            // (saturating) keeps `start <= watermark` releases strictly
            // ahead of it.
            Some(&earliest) => SimTime(earliest.0.saturating_sub(1)),
            None => self.now,
        }
    }

    /// The smallest start time any *future* event observed through this
    /// clock can carry: the earliest open begin (those operations will
    /// emit events at their begin times), or the current clock when
    /// nothing is open (the monotonic callback clock forbids earlier
    /// begins, but permits one at exactly `now`). This is the
    /// per-thread contribution to [`GlobalWatermark`]: unlike
    /// [`StreamClock::watermark`], equality is *not* safe across
    /// threads, so the merge subtracts one.
    pub fn safe_below(&self) -> SimTime {
        match self.open.keys().next() {
            Some(&earliest) => earliest,
            None => self.now,
        }
    }
}

/// A registered publisher slot of a [`GlobalWatermark`] (one per
/// runtime thread / shard).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSlot(usize);

impl ShardSlot {
    /// The shard index this slot publishes for.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One shard's published progress. Padded to a cache line so two
/// threads publishing concurrently never false-share.
#[repr(align(64))]
struct Slot {
    /// The shard's [`StreamClock::safe_below`] bound.
    safe_below: AtomicU64,
    /// The shard's tie-safe [`StreamClock::watermark`].
    local: AtomicU64,
}

/// Merges per-thread [`StreamClock`] progress into one global reorder
/// watermark without any lock on the publish (callback) path.
///
/// Threads register once (at shard creation), then publish after every
/// clock edge; any thread may read [`GlobalWatermark::merged`] at any
/// time. A finished thread calls [`GlobalWatermark::retire`] so it
/// stops pinning the merge. All operations are wait-free.
pub struct GlobalWatermark {
    slots: Box<[Slot]>,
    registered: AtomicUsize,
}

impl std::fmt::Debug for GlobalWatermark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalWatermark")
            .field("registered", &self.registered.load(Ordering::Relaxed))
            .field("merged", &self.merged())
            .finish()
    }
}

impl GlobalWatermark {
    /// Default shard capacity (more than any plausible host thread
    /// count in the simulated runtime).
    pub const DEFAULT_SHARDS: usize = 64;

    /// A watermark with room for `capacity` shards.
    pub fn with_capacity(capacity: usize) -> GlobalWatermark {
        GlobalWatermark {
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    // Unregistered slots must not pin the merge.
                    safe_below: AtomicU64::new(u64::MAX),
                    local: AtomicU64::new(u64::MAX),
                })
                .collect(),
            registered: AtomicUsize::new(0),
        }
    }

    /// Register the next shard. The slot starts pinned at time zero
    /// (the new thread may emit events from its clock's origin).
    /// Register every shard *before* the first event is published:
    /// once the merge has advanced, a late shard's early-time events
    /// would release out of order.
    ///
    /// # Panics
    /// When the fixed capacity is exhausted.
    pub fn register(&self) -> ShardSlot {
        let ix = self.registered.fetch_add(1, Ordering::AcqRel);
        assert!(
            ix < self.slots.len(),
            "GlobalWatermark capacity ({}) exhausted",
            self.slots.len()
        );
        self.slots[ix].safe_below.store(0, Ordering::Release);
        self.slots[ix].local.store(0, Ordering::Release);
        ShardSlot(ix)
    }

    /// Number of registered shards.
    pub fn shard_count(&self) -> usize {
        self.registered
            .load(Ordering::Acquire)
            .min(self.slots.len())
    }

    /// Publish `clock`'s progress for `slot`. Call *after* the event
    /// that closed (or observed) the edge has been queued for the
    /// consumer: the merge promises that every event at or below the
    /// merged watermark has already been handed over, and that promise
    /// is exactly "queue, then publish" in program order.
    pub fn publish(&self, slot: ShardSlot, clock: &StreamClock) {
        let s = &self.slots[slot.0];
        s.safe_below.store(clock.safe_below().0, Ordering::Release);
        s.local.store(clock.watermark().0, Ordering::Release);
    }

    /// The shard finished for good: stop pinning the merge.
    pub fn retire(&self, slot: ShardSlot) {
        let s = &self.slots[slot.0];
        s.safe_below.store(u64::MAX, Ordering::Release);
        s.local.store(u64::MAX, Ordering::Release);
    }

    /// The merged watermark: buffered events with `start <= merged()`
    /// are safe to release in `(start, id)` order, with `id` encoding
    /// `(shard, per-shard seq)` so cross-shard ties break
    /// deterministically. `None` means nothing is settled yet — some
    /// shard may still emit an event at time zero, and no watermark can
    /// be strictly below that.
    pub fn merged(&self) -> Option<SimTime> {
        let n = self.shard_count();
        if n == 1 {
            // Single shard: same-thread ties are ordered by monotonic
            // sequence numbers, so the local (tie-safe) watermark is
            // exact — identical to the single-threaded StreamClock path.
            return Some(SimTime(self.slots[0].local.load(Ordering::Acquire)));
        }
        // Scan the whole slot array, not just `registered` slots: a
        // register() whose count increment is visible before its slot
        // reset would otherwise be read as retired (u64::MAX) and let
        // the merge advance past the brand-new shard. Unregistered
        // slots hold u64::MAX and never pin.
        let mut min = u64::MAX;
        for s in self.slots.iter() {
            min = min.min(s.safe_below.load(Ordering::Acquire));
        }
        // Another shard may still emit an event starting exactly at
        // `min`; releasing at `min` could let that event sort *before*
        // an already-released same-start event with a larger shard id.
        // Strictly-below is the only safe release bound — and when some
        // shard is still pinned at time zero there is none (a saturated
        // `0 - 1 = 0` here would silently re-admit the exact race this
        // type exists to prevent).
        (min > 0).then(|| SimTime(min - 1))
    }
}

/// Batches [`GlobalWatermark::publish`] calls on the callback fast
/// path: instead of two release stores per event, a shard publishes
/// every K-th event edge — plus immediately whenever deferral would be
/// *unsound*, i.e. the clock's bounds moved **backwards** relative to
/// what was last published (an `open` pinning the shard below its
/// published `safe_below`). Deferring a *forward* move is always safe:
/// the published bound merely lags reality, so the merged watermark
/// stays conservative. Liveness (events stuck behind a stale published
/// bound) is the drain path's job — blocking observers re-publish every
/// shard's clock fresh before snapshotting the merge.
#[derive(Clone, Debug)]
pub struct PublishBatcher {
    every: u32,
    pending: u32,
    /// Bounds as of the last publish; `None` until the first edge (the
    /// first edge always publishes, replacing the `register()` origin).
    published: Option<(SimTime, SimTime)>,
}

impl PublishBatcher {
    /// Default publish cadence: every 32nd event edge.
    pub const DEFAULT_EVERY: u32 = 32;

    /// A batcher publishing every `every`-th edge (clamped to >= 1;
    /// `every == 1` reproduces unbatched per-event publication).
    pub fn new(every: u32) -> PublishBatcher {
        PublishBatcher {
            every: every.max(1),
            pending: 0,
            published: None,
        }
    }

    /// Note one event edge on `clock` (after `open`/`close`/`observe`
    /// has been applied). Returns `true` when the caller must publish
    /// now — then confirm with [`PublishBatcher::mark_published`].
    pub fn note(&mut self, clock: &StreamClock) -> bool {
        self.pending += 1;
        let Some((safe_below, local)) = self.published else {
            return true;
        };
        // Retreat risk: the published bounds now overstate what is
        // settled; the merge could release an event this shard still
        // owes. Publish the corrected (lower) bound immediately.
        clock.safe_below() < safe_below || clock.watermark() < local || self.pending >= self.every
    }

    /// Record that the caller just published `clock`'s bounds.
    pub fn mark_published(&mut self, clock: &StreamClock) {
        self.pending = 0;
        self.published = Some((clock.safe_below(), clock.watermark()));
    }

    /// Are there edges noted since the last publish? Blocking drains
    /// use this to skip the publish stores for untouched shards.
    pub fn dirty(&self) -> bool {
        self.pending > 0
    }
}

impl Default for PublishBatcher {
    fn default() -> PublishBatcher {
        PublishBatcher::new(PublishBatcher::DEFAULT_EVERY)
    }
}

/// Detects a wedged merged watermark and authorizes timeout-based
/// forced releases.
///
/// A shard that stops delivering End callbacks (a crashed runtime
/// thread, a dropped End in a lossy transport) pins the merged
/// watermark forever: every other shard's buffered events sit behind
/// the stalled shard's earliest open begin and the drain thread spins
/// without progress. The detector watches `(merged watermark, buffered
/// event count)` snapshots from the drain loop; when the watermark has
/// not advanced for `timeout` of wall-clock time while events remain
/// buffered, [`StallDetector::check`] returns `true` and the consumer
/// may force-release its buffer. Forced releases abandon the ordering
/// guarantee the watermark provides, so consumers must tag everything
/// released this way as degraded evidence.
///
/// The timer restarts on every watermark advance, on every buffer
/// drain, and after each forced release (so repeated stalls are spaced
/// at least `timeout` apart).
#[derive(Debug)]
pub struct StallDetector {
    timeout: std::time::Duration,
    last_merged: Option<SimTime>,
    since: std::time::Instant,
    forced: u64,
}

impl StallDetector {
    /// A detector that declares a stall after `timeout` without
    /// watermark progress.
    pub fn new(timeout: std::time::Duration) -> StallDetector {
        StallDetector {
            timeout,
            last_merged: None,
            since: std::time::Instant::now(),
            forced: 0,
        }
    }

    /// Feed one drain-loop snapshot: the current merged watermark and
    /// the number of events still buffered behind it. Returns `true`
    /// when the stream is stalled — the watermark has not advanced for
    /// at least the timeout while events remain buffered — in which
    /// case the caller should force-release and report the release via
    /// [`StallDetector::force_released`].
    pub fn check(&mut self, merged: Option<SimTime>, buffered: usize) -> bool {
        if merged > self.last_merged || buffered == 0 {
            self.last_merged = self.last_merged.max(merged);
            self.since = std::time::Instant::now();
            return false;
        }
        self.since.elapsed() >= self.timeout
    }

    /// Record a forced release and restart the stall timer.
    pub fn force_released(&mut self) {
        self.forced += 1;
        self.since = std::time::Instant::now();
    }

    /// Number of forced releases recorded so far.
    pub fn forced_count(&self) -> u64 {
        self.forced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_clock_follows_observations() {
        let mut c = StreamClock::new();
        assert_eq!(c.watermark(), SimTime(0));
        c.observe(SimTime(100));
        assert_eq!(c.watermark(), SimTime(100));
        c.observe(SimTime(50)); // non-monotonic observations are clamped
        assert_eq!(c.watermark(), SimTime(100));
    }

    #[test]
    fn open_ops_pin_the_watermark() {
        let mut c = StreamClock::new();
        c.open(SimTime(10));
        c.open(SimTime(30));
        c.observe(SimTime(90));
        assert_eq!(c.watermark(), SimTime(9), "held below the earliest open");
        c.close(SimTime(10), SimTime(95));
        assert_eq!(c.watermark(), SimTime(29));
        c.close(SimTime(30), SimTime(99));
        assert_eq!(c.watermark(), SimTime(99), "released to the clock");
        assert_eq!(c.open_count(), 0);
    }

    #[test]
    fn shared_begin_times_are_counted() {
        let mut c = StreamClock::new();
        c.open(SimTime(5));
        c.open(SimTime(5));
        c.close(SimTime(5), SimTime(20));
        assert_eq!(c.watermark(), SimTime(4), "one of the two is still open");
        c.close(SimTime(5), SimTime(25));
        assert_eq!(c.watermark(), SimTime(25));
    }

    #[test]
    fn unmatched_close_is_ignored() {
        let mut c = StreamClock::new();
        c.close(SimTime(5), SimTime(10));
        assert_eq!(c.watermark(), SimTime(10));
    }

    #[test]
    fn safe_below_tracks_earliest_open_then_now() {
        let mut c = StreamClock::new();
        assert_eq!(c.safe_below(), SimTime(0));
        c.observe(SimTime(40));
        assert_eq!(c.safe_below(), SimTime(40), "idle: future begins >= now");
        c.open(SimTime(50));
        c.open(SimTime(60));
        c.observe(SimTime(90));
        assert_eq!(c.safe_below(), SimTime(50), "pinned at the earliest open");
        c.close(SimTime(50), SimTime(95));
        assert_eq!(c.safe_below(), SimTime(60));
        c.close(SimTime(60), SimTime(99));
        assert_eq!(c.safe_below(), SimTime(99));
    }

    #[test]
    fn single_shard_merge_is_the_local_watermark() {
        let g = GlobalWatermark::with_capacity(4);
        let slot = g.register();
        let mut c = StreamClock::new();
        assert_eq!(g.merged(), Some(SimTime(0)), "single shard at origin");
        c.observe(SimTime(100));
        g.publish(slot, &c);
        // Idle single shard: events at exactly t=100 may release (ties
        // are same-thread, ordered by sequence number).
        assert_eq!(g.merged(), Some(SimTime(100)));
        c.open(SimTime(120));
        g.publish(slot, &c);
        assert_eq!(g.merged(), Some(SimTime(119)));
    }

    #[test]
    fn multi_shard_merge_is_strictly_below_every_future_start() {
        let g = GlobalWatermark::with_capacity(4);
        let a = g.register();
        let b = g.register();
        let mut ca = StreamClock::new();
        let mut cb = StreamClock::new();
        // Both shards still at their origin: nothing is settled — an
        // event at time zero may yet arrive from either, and no
        // watermark is strictly below zero.
        assert_eq!(g.merged(), None);
        ca.observe(SimTime(200));
        cb.observe(SimTime(100));
        g.publish(a, &ca);
        g.publish(b, &cb);
        // Shard b could still emit an event starting exactly at 100:
        // the merge stays strictly below it.
        assert_eq!(g.merged(), Some(SimTime(99)));
        cb.open(SimTime(150));
        cb.observe(SimTime(400));
        g.publish(b, &cb);
        assert_eq!(g.merged(), Some(SimTime(149)), "open op pins its shard");
        cb.close(SimTime(150), SimTime(410));
        g.publish(b, &cb);
        assert_eq!(g.merged(), Some(SimTime(199)), "now bounded by shard a");
    }

    #[test]
    fn unregistered_slots_and_retired_shards_do_not_pin() {
        let g = GlobalWatermark::with_capacity(8);
        let a = g.register();
        let b = g.register();
        let mut ca = StreamClock::new();
        ca.observe(SimTime(500));
        g.publish(a, &ca);
        // Shard b registered but never ran: it may still emit at time
        // zero, so nothing at all is settled.
        assert_eq!(g.merged(), None);
        g.retire(b);
        assert_eq!(
            g.merged(),
            Some(SimTime(499)),
            "retired shard releases the pin"
        );
        g.retire(a);
        assert!(
            g.merged() >= Some(SimTime(499)),
            "fully retired: nothing pins"
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn register_beyond_capacity_panics() {
        let g = GlobalWatermark::with_capacity(1);
        let _ = g.register();
        let _ = g.register();
    }

    #[test]
    fn stall_detector_fires_only_without_progress() {
        let mut d = StallDetector::new(std::time::Duration::ZERO);
        // Progress (watermark advance) always resets, even with a zero
        // timeout.
        assert!(!d.check(Some(SimTime(10)), 5));
        assert!(!d.check(Some(SimTime(20)), 5));
        // Same watermark, events buffered, timeout elapsed: stalled.
        assert!(d.check(Some(SimTime(20)), 5));
        d.force_released();
        assert_eq!(d.forced_count(), 1);
        // An empty buffer is never a stall — nothing is held back.
        assert!(!d.check(Some(SimTime(20)), 0));
    }

    #[test]
    fn stall_detector_waits_out_the_timeout() {
        let mut d = StallDetector::new(std::time::Duration::from_secs(3600));
        assert!(!d.check(None, 3));
        assert!(
            !d.check(None, 3),
            "no progress, but the timeout has not elapsed"
        );
        assert_eq!(d.forced_count(), 0);
    }

    #[test]
    fn batcher_first_edge_and_every_kth_publish() {
        let mut c = StreamClock::new();
        let mut b = PublishBatcher::new(4);
        c.observe(SimTime(10));
        assert!(b.note(&c), "first edge always publishes");
        b.mark_published(&c);
        for t in [20u64, 30, 40, 50] {
            c.observe(SimTime(t));
            let due = b.note(&c);
            if t < 50 {
                assert!(!due, "forward moves defer until the K-th edge");
                assert!(b.dirty());
            } else {
                assert!(due, "4th edge since the last publish completes the batch");
            }
        }
        b.mark_published(&c);
        assert!(!b.dirty());
    }

    #[test]
    fn batcher_publishes_immediately_on_retreat() {
        let mut c = StreamClock::new();
        let mut b = PublishBatcher::new(1000);
        c.observe(SimTime(100));
        assert!(b.note(&c));
        b.mark_published(&c);
        // An open below the published bound (non-monotonic callback
        // time): deferral would leave the merge overstated.
        c.open(SimTime(50));
        assert!(b.note(&c), "retreat must publish on the spot");
        b.mark_published(&c);
        // Closing it moves the bound forward again: deferrable.
        c.close(SimTime(50), SimTime(120));
        assert!(!b.note(&c));
    }

    #[test]
    fn batcher_every_one_is_per_event() {
        let mut c = StreamClock::new();
        let mut b = PublishBatcher::new(1);
        for t in 1..50u64 {
            c.observe(SimTime(t));
            assert!(b.note(&c));
            b.mark_published(&c);
        }
        let mut z = PublishBatcher::new(0);
        assert!(z.note(&c), "every=0 clamps to 1");
    }

    #[test]
    fn concurrent_merge_is_monotonic() {
        // Per-shard `safe_below` only ever grows (opens happen at or
        // after `now`, closes move the pin forward), so the merged
        // watermark a concurrent reader observes must be monotonic —
        // the property the consumer's snapshot-then-drain protocol
        // leans on.
        use std::sync::Arc;
        let g = Arc::new(GlobalWatermark::with_capacity(4));
        let slots: Vec<ShardSlot> = (0..3).map(|_| g.register()).collect();
        std::thread::scope(|s| {
            for slot in slots {
                let g = g.clone();
                s.spawn(move || {
                    let mut c = StreamClock::new();
                    // Shrunk under miri; the atomics are still exercised
                    // across threads, just over fewer publishes.
                    let top = if cfg!(miri) { 400u64 } else { 20_000u64 };
                    for t in (0..top).step_by(2) {
                        c.open(SimTime(t));
                        g.publish(slot, &c);
                        c.close(SimTime(t), SimTime(t + 1));
                        g.publish(slot, &c);
                    }
                    g.retire(slot);
                });
            }
            let g2 = g.clone();
            s.spawn(move || {
                let mut last = None;
                let reads = if cfg!(miri) { 1_000 } else { 50_000 };
                for _ in 0..reads {
                    let m = g2.merged();
                    assert!(m >= last, "merged watermark went backwards");
                    last = m;
                }
            });
        });
    }
}
