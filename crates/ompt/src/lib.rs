//! # odp-ompt — the OpenMP Tools Interface, in Rust
//!
//! OMPT (paper §2.3) is the OpenMP-runtime-integrated API through which
//! portable tools observe target events. OMPDataPerf depends on exactly
//! two callbacks: `ompt_callback_target_emi` and
//! `ompt_callback_target_data_op_emi` (§6); it additionally uses
//! `ompt_callback_target_submit_emi` to delimit kernel executions.
//!
//! This crate defines:
//!
//! * the callback payload types ([`TargetCallback`], [`DataOpCallback`],
//!   [`SubmitCallback`]) mirroring the OMPT EMI signatures, with one
//!   extension — transfers expose the payload bytes so content-hashing
//!   tools can read them the way a native tool reads the source pointer;
//! * the [`Tool`] trait that tools implement and the registration
//!   machinery ([`ToolRegistration`]) modeled on `ompt_start_tool` +
//!   `ompt_set_callback`, including per-callback availability results;
//! * [`capability`] — the compiler/runtime support matrix from the
//!   paper's Table 6, so that degraded-runtime behaviour (§A.6's warning)
//!   is reproducible and testable against nine compiler profiles;
//! * [`progress`] — the [`StreamClock`] watermark used by online
//!   (streaming) tools to turn completion-ordered callbacks back into a
//!   chronological event stream, and the lock-free [`GlobalWatermark`]
//!   that merges per-thread clocks when a multi-threaded runtime drives
//!   callbacks from several shards at once. The merged watermark is
//!   *strictly below*: it promises only that no future event can start
//!   at or below it (`None` while any shard may still emit at t=0).
//!   [`PublishBatcher`] amortizes the publish stores across K events on
//!   the callback fast path without ever letting the published bound
//!   overstate what is settled;
//! * [`ring`] — the lock-free SPSC ingest ring each callback shard uses
//!   to hand completed events to the streaming drain path without a
//!   mutex on the producer side;
//! * [`advice`] — the feedback extension real OMPT lacks: a
//!   [`MapAdvisor`] the runtime consults at every map-clause item so a
//!   live analysis can rewrite inefficient mappings mid-run, with
//!   per-cause [`RemediationStats`] accounting what the rewrites saved.

// `deny`, not `forbid`: the `ring` module opts back in with a scoped
// `allow` and per-block SAFETY proofs; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod advice;
pub mod callback;
pub mod capability;
pub mod progress;
pub mod ring;
pub mod tool;
pub mod version;

pub use advice::{AdviceCause, MapAdvice, MapAdvisor, RemediationStats, RemedyCounter};
pub use callback::{
    AccessRange, CallbackKind, DataOpCallback, DataOpType, Endpoint, HostAccessInfo,
    KernelAccessInfo, SubmitCallback, TargetCallback, TargetConstructKind,
};
pub use capability::{CompilerProfile, RuntimeCapabilities};
pub use progress::{GlobalWatermark, PublishBatcher, ShardSlot, StallDetector, StreamClock};
pub use tool::{NullTool, SetCallbackResult, Tool, ToolRegistration};
pub use version::OmptVersion;
