//! Host and device memory addresses.
//!
//! The simulator assigns stable virtual addresses to host variables and
//! device allocations; detection keys on raw addresses exactly the way the
//! paper's tool keys on the pointers reported by OMPT (e.g. Algorithm 3's
//! `(host_addr, tgt_device_num, bytes)` key).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A host virtual address.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct HostAddr(pub u64);

/// A device virtual address.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct DevAddr(pub u64);

impl HostAddr {
    /// Null host address (used for ops with no host-side operand).
    pub const NULL: HostAddr = HostAddr(0);

    /// Offset this address by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> HostAddr {
        HostAddr(self.0 + bytes)
    }
}

impl DevAddr {
    /// Null device address.
    pub const NULL: DevAddr = DevAddr(0);

    /// Offset this address by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> DevAddr {
        DevAddr(self.0 + bytes)
    }
}

impl fmt::Display for HostAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

impl fmt::Display for DevAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

/// A contiguous byte range in some address space.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct MemRange {
    /// Base address (raw, space determined by context).
    pub base: u64,
    /// Length in bytes.
    pub bytes: u64,
}

impl MemRange {
    /// Construct a range.
    #[inline]
    pub const fn new(base: u64, bytes: u64) -> Self {
        MemRange { base, bytes }
    }

    /// One-past-the-end address.
    #[inline]
    pub const fn end(self) -> u64 {
        self.base + self.bytes
    }

    /// Is the range empty?
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.bytes == 0
    }

    /// Does this range fully contain `other`?
    #[inline]
    pub fn contains_range(self, other: MemRange) -> bool {
        other.base >= self.base && other.end() <= self.end()
    }

    /// Does this range contain the single address `addr`?
    #[inline]
    pub fn contains(self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Do the two ranges share at least one byte?
    #[inline]
    pub fn overlaps(self, other: MemRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.base < other.end() && other.base < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_geometry() {
        let r = MemRange::new(100, 50);
        assert_eq!(r.end(), 150);
        assert!(r.contains(100));
        assert!(r.contains(149));
        assert!(!r.contains(150));
        assert!(!r.contains(99));
    }

    #[test]
    fn containment() {
        let outer = MemRange::new(0, 100);
        assert!(outer.contains_range(MemRange::new(0, 100)));
        assert!(outer.contains_range(MemRange::new(10, 20)));
        assert!(!outer.contains_range(MemRange::new(90, 20)));
    }

    #[test]
    fn empty_ranges_never_overlap() {
        let e = MemRange::new(10, 0);
        assert!(!e.overlaps(MemRange::new(0, 100)));
        assert!(!MemRange::new(0, 100).overlaps(e));
    }

    #[test]
    fn address_display_is_hex() {
        assert_eq!(HostAddr(0xdead).to_string(), "0x00000000dead");
    }

    proptest! {
        #[test]
        fn overlap_is_symmetric(a in 0u64..1000, al in 0u64..100, b in 0u64..1000, bl in 0u64..100) {
            let ra = MemRange::new(a, al);
            let rb = MemRange::new(b, bl);
            prop_assert_eq!(ra.overlaps(rb), rb.overlaps(ra));
        }

        #[test]
        fn containment_implies_overlap(a in 0u64..1000, al in 1u64..100, off in 0u64..50, len in 1u64..50) {
            let outer = MemRange::new(a, al);
            let inner = MemRange::new(a + off.min(al - 1), len.min(al - off.min(al - 1)));
            if outer.contains_range(inner) && !inner.is_empty() {
                prop_assert!(outer.overlaps(inner));
            }
        }
    }
}
