//! Code pointers and resolved source locations.
//!
//! OMPT callbacks report a `codeptr_ra` — the return address of the runtime
//! call generated for each directive. The paper's tool resolves these
//! through DWARF debug info (libdw) to `file:line` locations. Our substrate
//! (`ompdataperf::attrib`) performs the same resolution against synthetic
//! debug info registered by each workload.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An opaque code pointer (return address of a directive's runtime call).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct CodePtr(pub u64);

impl CodePtr {
    /// The null code pointer: "no attribution available".
    pub const NULL: CodePtr = CodePtr(0);

    /// Is attribution information available for this pointer?
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for CodePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "<unknown>")
        } else {
            write!(f, "0x{:08x}", self.0)
        }
    }
}

/// A resolved source location.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceLoc {
    /// Source file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Enclosing function name.
    pub function: String,
}

impl SourceLoc {
    /// Construct a source location.
    pub fn new(file: impl Into<String>, line: u32, function: impl Into<String>) -> Self {
        SourceLoc {
            file: file.into(),
            line,
            function: function.into(),
        }
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} ({})", self.file, self.line, self.function)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_pointer_display() {
        assert_eq!(CodePtr::NULL.to_string(), "<unknown>");
        assert!(CodePtr::NULL.is_null());
        assert!(!CodePtr(0x400123).is_null());
    }

    #[test]
    fn loc_display() {
        let l = SourceLoc::new("bfs.c", 42, "main");
        assert_eq!(l.to_string(), "bfs.c:42 (main)");
    }
}
