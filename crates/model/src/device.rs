//! Device identifiers and kinds, following OpenMP terminology (paper §2.1).
//!
//! OpenMP numbers target devices `0..num_devices`; the *host device* (the
//! device on which the program begins execution) is addressed here with a
//! reserved sentinel so that data-op events can uniformly carry
//! `src_device`/`dest_device` fields the way OMPT callbacks do.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a logical execution engine ("device" in OpenMP terms).
///
/// Target devices are numbered from zero. The host is [`DeviceId::HOST`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub i32);

impl DeviceId {
    /// The host device (the CPU the program starts on).
    ///
    /// OpenMP's `omp_get_initial_device()` returns `num_devices`, but tools
    /// cannot know `num_devices` when decoding a trace, so we follow the
    /// common OMPT implementation practice of using a negative sentinel.
    pub const HOST: DeviceId = DeviceId(-1);

    /// Construct the id of the `n`-th target device.
    #[inline]
    pub const fn target(n: u32) -> Self {
        DeviceId(n as i32)
    }

    /// Is this the host device?
    #[inline]
    pub const fn is_host(self) -> bool {
        self.0 < 0
    }

    /// Is this a target (non-host) device?
    #[inline]
    pub const fn is_target(self) -> bool {
        self.0 >= 0
    }

    /// Index of this device among target devices, if it is one.
    #[inline]
    pub fn target_index(self) -> Option<usize> {
        if self.is_target() {
            Some(self.0 as usize)
        } else {
            None
        }
    }

    /// Raw OMPT-style device number (host encoded as `-1`).
    #[inline]
    pub const fn raw(self) -> i32 {
        self.0
    }
}

impl fmt::Debug for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_host() {
            write!(f, "host")
        } else {
            write!(f, "dev{}", self.0)
        }
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Broad classification of a device, used by the simulator's timing model
/// and by reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// The system's main processor.
    HostCpu,
    /// A discrete GPU attached over an interconnect (PCIe-like).
    DiscreteGpu,
    /// An integrated accelerator sharing physical memory with the host.
    IntegratedAccelerator,
}

impl DeviceKind {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::HostCpu => "host CPU",
            DeviceKind::DiscreteGpu => "discrete GPU",
            DeviceKind::IntegratedAccelerator => "integrated accelerator",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_sentinel_is_not_a_target() {
        assert!(DeviceId::HOST.is_host());
        assert!(!DeviceId::HOST.is_target());
        assert_eq!(DeviceId::HOST.target_index(), None);
    }

    #[test]
    fn target_indices_round_trip() {
        for n in [0u32, 1, 7, 15] {
            let d = DeviceId::target(n);
            assert!(d.is_target());
            assert_eq!(d.target_index(), Some(n as usize));
            assert_eq!(d.raw(), n as i32);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(DeviceId::HOST.to_string(), "host");
        assert_eq!(DeviceId::target(2).to_string(), "dev2");
    }

    #[test]
    fn ordering_places_host_first() {
        let mut v = vec![DeviceId::target(1), DeviceId::HOST, DeviceId::target(0)];
        v.sort();
        assert_eq!(
            v,
            vec![DeviceId::HOST, DeviceId::target(0), DeviceId::target(1)]
        );
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(DeviceKind::HostCpu.name(), "host CPU");
        assert_eq!(DeviceKind::DiscreteGpu.name(), "discrete GPU");
    }
}
