//! # odp-model — shared vocabulary for the OMPDataPerf reproduction
//!
//! This crate defines the domain types that every other crate in the
//! workspace speaks: device identifiers, simulated time, memory addresses,
//! OpenMP `map` clause semantics, the OpenMP target event model that the
//! detection algorithms of the paper consume, and source-location types used
//! for attribution.
//!
//! The event model mirrors what a tool observes through the OpenMP Tools
//! Interface (OMPT) EMI callbacks, per §5 of the paper: each event carries
//! its start/end time, source and destination device numbers, addresses,
//! byte counts, the content hash of transferred data (when applicable), and
//! the code pointer used for source attribution.
//!
//! Nothing in this crate allocates during hot paths; all types are small,
//! `Copy` where possible, and serializable for trace export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod addr;
pub mod device;
pub mod event;
pub mod health;
pub mod map;
pub mod source;
pub mod time;

pub use addr::{DevAddr, HostAddr, MemRange};
pub use device::{DeviceId, DeviceKind};
pub use event::{DataOpEvent, DataOpKind, EventId, HashVal, TargetEvent, TargetKind};
pub use health::TraceHealth;
pub use map::{MapModifier, MapType};
pub use source::{CodePtr, SourceLoc};
pub use time::{SimDuration, SimTime, TimeSpan};
