//! Trace-health accounting: what the pipeline quarantined instead of
//! trusting.
//!
//! A production ingest pipeline (ROADMAP: fleet-scale, millions of runs)
//! sees callback streams its authors never anticipated — dropped or
//! duplicated callbacks, truncated payloads, stalled shards, events
//! naming devices that do not exist. The detection pipeline never
//! panics on such input; it *quarantines* the malformed evidence and
//! counts it here, so every report can state exactly how much of the
//! stream it actually trusted.
//!
//! The accounting invariant (checked by the fault-injection
//! differential suite): every event the producer injected is either
//! **survived** (analyzed normally) or **quarantined** (counted in
//! exactly one bucket below). Nothing is silently discarded.

use serde::{Deserialize, Serialize};

/// Counters for evidence the pipeline refused to trust.
///
/// Each bucket is one failure class; [`TraceHealth::total_quarantined`]
/// is the number of events (or event fragments) excluded from
/// analysis. A wholly healthy run is `TraceHealth::default()`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceHealth {
    /// Events naming a device outside the configured device range.
    pub out_of_range: u64,
    /// `End` callbacks with no matching open `Begin` (dropped or
    /// duplicated begin/end edges).
    pub orphaned: u64,
    /// Transfer payloads shorter than the byte count the callback
    /// claimed — the content hash cannot be trusted.
    pub truncated: u64,
    /// Event ids claimed by more than one shard record after a merge
    /// (a duplicated `(shard, seq)` pair; the extra records).
    pub duplicate_ids: u64,
    /// Events that arrived at the streaming engine at or below a
    /// watermark that a stall-recovery forced release already retired.
    pub late: u64,
    /// Times the watermark stall detector force-released the reorder
    /// buffer rather than wait on a wedged shard.
    pub forced_releases: u64,
    /// Streamed events the finalize view no longer contained (the
    /// post-mortem log lost what the engine saw live).
    pub missing_at_finalize: u64,
    /// Persisted events dropped by the trace loader: sections of an
    /// on-disk trace whose checksum, bounds, or layout could not be
    /// verified (a wholly undecodable file counts as one).
    pub unreadable: u64,
}

impl TraceHealth {
    /// A health record with every counter zero.
    pub fn new() -> TraceHealth {
        TraceHealth::default()
    }

    /// Events excluded from analysis. `forced_releases` is an incident
    /// count, not an event count, so it is not part of the sum.
    pub fn total_quarantined(&self) -> u64 {
        self.out_of_range
            + self.orphaned
            + self.truncated
            + self.duplicate_ids
            + self.late
            + self.missing_at_finalize
            + self.unreadable
    }

    /// Did anything degrade at all?
    pub fn is_clean(&self) -> bool {
        *self == TraceHealth::default()
    }

    /// Fold another health record into this one (shard merge).
    pub fn merge(&mut self, other: &TraceHealth) {
        self.out_of_range += other.out_of_range;
        self.orphaned += other.orphaned;
        self.truncated += other.truncated;
        self.duplicate_ids += other.duplicate_ids;
        self.late += other.late;
        self.forced_releases += other.forced_releases;
        self.missing_at_finalize += other.missing_at_finalize;
        self.unreadable += other.unreadable;
    }

    /// The console warning summarizing what was quarantined, or `None`
    /// for a clean trace.
    pub fn warning(&self) -> Option<String> {
        if self.is_clean() {
            return None;
        }
        Some(format!(
            "warning: degraded trace — quarantined {} event(s) \
             (out-of-range {}, orphaned {}, truncated {}, duplicate ids {}, \
             late {}, missing at finalize {}, unreadable {}; {} forced release(s))",
            self.total_quarantined(),
            self.out_of_range,
            self.orphaned,
            self.truncated,
            self.duplicate_ids,
            self.late,
            self.missing_at_finalize,
            self.unreadable,
            self.forced_releases,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_health_has_no_warning() {
        let h = TraceHealth::new();
        assert!(h.is_clean());
        assert_eq!(h.total_quarantined(), 0);
        assert!(h.warning().is_none());
    }

    #[test]
    fn merge_sums_every_bucket() {
        let mut a = TraceHealth {
            out_of_range: 1,
            orphaned: 2,
            truncated: 3,
            duplicate_ids: 4,
            late: 5,
            forced_releases: 6,
            missing_at_finalize: 7,
            unreadable: 8,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.out_of_range, 2);
        assert_eq!(a.orphaned, 4);
        assert_eq!(a.truncated, 6);
        assert_eq!(a.duplicate_ids, 8);
        assert_eq!(a.late, 10);
        assert_eq!(a.forced_releases, 12);
        assert_eq!(a.missing_at_finalize, 14);
        assert_eq!(a.unreadable, 16);
        // forced_releases is an incident count, not quarantined events.
        assert_eq!(a.total_quarantined(), 2 + 4 + 6 + 8 + 10 + 14 + 16);
    }

    #[test]
    fn unreadable_degrades_and_round_trips() {
        let h = TraceHealth {
            unreadable: 2,
            ..TraceHealth::default()
        };
        assert!(!h.is_clean());
        assert!(h.warning().unwrap().contains("unreadable 2"));
        let json = serde_json::to_string(&h).unwrap();
        let parsed: TraceHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn warning_reports_every_bucket() {
        let h = TraceHealth {
            orphaned: 3,
            forced_releases: 1,
            ..TraceHealth::default()
        };
        let w = h.warning().unwrap();
        assert!(w.contains("quarantined 3 event(s)"));
        assert!(w.contains("orphaned 3"));
        assert!(w.contains("1 forced release(s)"));
    }
}
