//! OpenMP `map` clause semantics (paper §2.2).
//!
//! `map` clauses control the implicit data environment of `target` regions:
//! whether data is copied to the device on entry (`to`), back to the host on
//! exit (`from`), both (`tofrom`), merely allocated (`alloc`), or removed
//! (`delete`/`release`). The simulator executes these semantics against its
//! reference-counted present table, mirroring LLVM's `libomptarget`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The map type of an OpenMP `map` clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapType {
    /// `map(to: ...)` — copy host→device on region entry.
    To,
    /// `map(from: ...)` — copy device→host on region exit.
    From,
    /// `map(tofrom: ...)` — both directions. The default for implicitly
    /// mapped aggregates.
    ToFrom,
    /// `map(alloc: ...)` — allocate on the device without copying.
    Alloc,
    /// `map(release: ...)` — decrement the reference count on exit-data.
    Release,
    /// `map(delete: ...)` — force the reference count to zero and free.
    Delete,
}

impl MapType {
    /// Does entering a region with this map type copy data to the device
    /// (when the data was not already present)?
    #[inline]
    pub fn copies_to_device(self) -> bool {
        matches!(self, MapType::To | MapType::ToFrom)
    }

    /// Does exiting a region with this map type copy data back to the host
    /// (when the reference count drops to zero)?
    #[inline]
    pub fn copies_from_device(self) -> bool {
        matches!(self, MapType::From | MapType::ToFrom)
    }

    /// Does this map type allocate device memory on entry when absent?
    #[inline]
    pub fn allocates(self) -> bool {
        matches!(
            self,
            MapType::To | MapType::From | MapType::ToFrom | MapType::Alloc
        )
    }

    /// OpenMP source spelling.
    pub fn keyword(self) -> &'static str {
        match self {
            MapType::To => "to",
            MapType::From => "from",
            MapType::ToFrom => "tofrom",
            MapType::Alloc => "alloc",
            MapType::Release => "release",
            MapType::Delete => "delete",
        }
    }
}

impl fmt::Display for MapType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Map-type modifiers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MapModifier {
    /// `always` modifier: perform the copy even if the data is already
    /// present on the device.
    pub always: bool,
}

impl MapModifier {
    /// No modifiers.
    pub const NONE: MapModifier = MapModifier { always: false };
    /// The `always` modifier.
    pub const ALWAYS: MapModifier = MapModifier { always: true };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directionality() {
        assert!(MapType::To.copies_to_device());
        assert!(!MapType::To.copies_from_device());
        assert!(MapType::From.copies_from_device());
        assert!(!MapType::From.copies_to_device());
        assert!(MapType::ToFrom.copies_to_device() && MapType::ToFrom.copies_from_device());
        assert!(!MapType::Alloc.copies_to_device() && !MapType::Alloc.copies_from_device());
    }

    #[test]
    fn allocation_rules() {
        for mt in [MapType::To, MapType::From, MapType::ToFrom, MapType::Alloc] {
            assert!(mt.allocates(), "{mt} should allocate when absent");
        }
        for mt in [MapType::Release, MapType::Delete] {
            assert!(!mt.allocates(), "{mt} should not allocate");
        }
    }

    #[test]
    fn keywords_match_spec() {
        assert_eq!(MapType::ToFrom.to_string(), "tofrom");
        assert_eq!(MapType::Alloc.to_string(), "alloc");
    }
}
