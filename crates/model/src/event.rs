//! The OpenMP target event model consumed by the detection algorithms.
//!
//! Paper §5: detection executes after the program has completed, taking "a
//! log of all OpenMP target events. Each event log entry must contain the
//! start and end time of the event, the hash of the data transferred (if
//! applicable), and the information provided by the corresponding OMPT
//! callback, such as source and destination device numbers, code pointers,
//! number of bytes transferred, and type of operation."
//!
//! Two event families exist:
//!
//! * [`DataOpEvent`] — data-management operations (alloc, transfer, delete,
//!   associate, disassociate), matching `ompt_callback_target_data_op_emi`.
//! * [`TargetEvent`] — target constructs and kernel launches, matching
//!   `ompt_callback_target_emi` / `ompt_callback_target_submit_emi`.

use crate::device::DeviceId;
use crate::source::CodePtr;
use crate::time::{SimDuration, TimeSpan};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Monotonic identifier assigned to every logged event (order of record).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct EventId(pub u64);

/// A content hash of transferred bytes.
///
/// Per §5.1, detection assumes the hash is collision-free; the collision
/// audit mode (§B.1) verifies this assumption by keeping payload copies.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct HashVal(pub u64);

impl fmt::Display for HashVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The type of a data-management operation, mirroring
/// `ompt_target_data_op_t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataOpKind {
    /// Device memory allocation (`ompt_target_data_alloc`).
    Alloc,
    /// Data transfer between two devices (covers both
    /// `transfer_to_device` and `transfer_from_device`; direction is given
    /// by `src_device`/`dest_device`).
    Transfer,
    /// Device memory deallocation (`ompt_target_data_delete`).
    Delete,
    /// Pointer association (`omp_target_associate_ptr`).
    Associate,
    /// Pointer disassociation.
    Disassociate,
}

impl DataOpKind {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DataOpKind::Alloc => "alloc",
            DataOpKind::Transfer => "transfer",
            DataOpKind::Delete => "delete",
            DataOpKind::Associate => "associate",
            DataOpKind::Disassociate => "disassociate",
        }
    }
}

impl fmt::Display for DataOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A data-management operation event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataOpEvent {
    /// Log-order identifier.
    pub id: EventId,
    /// Operation type.
    pub kind: DataOpKind,
    /// Device the data comes from (for transfers) or the device owning the
    /// host-side correspondent (for alloc/delete this is the host).
    pub src_device: DeviceId,
    /// Device receiving the data / owning the allocation.
    pub dest_device: DeviceId,
    /// Source address. For alloc/delete events this is the *host* address
    /// of the mapped variable (Algorithm 3 keys on it).
    pub src_addr: u64,
    /// Destination address (device address for alloc/H2D).
    pub dest_addr: u64,
    /// Number of bytes moved or allocated.
    pub bytes: u64,
    /// Content hash of the transferred bytes (transfers only).
    pub hash: Option<HashVal>,
    /// Start/end simulated time of the operation.
    pub span: TimeSpan,
    /// Code pointer for source attribution.
    pub codeptr: CodePtr,
}

impl DataOpEvent {
    /// Is this a data transfer (the only kind carrying a hash)?
    #[inline]
    pub fn is_transfer(&self) -> bool {
        self.kind == DataOpKind::Transfer
    }

    /// Is this an allocation?
    #[inline]
    pub fn is_alloc(&self) -> bool {
        self.kind == DataOpKind::Alloc
    }

    /// Is this a deallocation?
    #[inline]
    pub fn is_delete(&self) -> bool {
        self.kind == DataOpKind::Delete
    }

    /// Duration of the operation.
    #[inline]
    pub fn duration(&self) -> SimDuration {
        self.span.duration()
    }

    /// Transfer direction helper: host → device?
    #[inline]
    pub fn is_host_to_device(&self) -> bool {
        self.is_transfer() && self.src_device.is_host() && self.dest_device.is_target()
    }

    /// Transfer direction helper: device → host?
    #[inline]
    pub fn is_device_to_host(&self) -> bool {
        self.is_transfer() && self.src_device.is_target() && self.dest_device.is_host()
    }
}

/// The kind of a target event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetKind {
    /// A `target` construct (the enclosing region; data movement and the
    /// kernel launch are separate events).
    Region,
    /// Kernel execution on the device (`ompt_callback_target_submit_emi`
    /// begin/end bracket). Algorithms 4 and 5 consume these.
    Kernel,
    /// `target data` region begin..end (structured).
    DataRegion,
    /// `target enter data`.
    EnterData,
    /// `target exit data`.
    ExitData,
    /// `target update`.
    Update,
}

impl TargetKind {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TargetKind::Region => "target",
            TargetKind::Kernel => "kernel",
            TargetKind::DataRegion => "target data",
            TargetKind::EnterData => "target enter data",
            TargetKind::ExitData => "target exit data",
            TargetKind::Update => "target update",
        }
    }
}

impl fmt::Display for TargetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A target construct / kernel execution event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetEvent {
    /// Log-order identifier (shared sequence with data ops).
    pub id: EventId,
    /// Which device the construct targets.
    pub device: DeviceId,
    /// Construct kind.
    pub kind: TargetKind,
    /// Start/end simulated time.
    pub span: TimeSpan,
    /// Code pointer for source attribution.
    pub codeptr: CodePtr,
}

impl TargetEvent {
    /// Is this a kernel-execution event (input to Algorithms 4/5)?
    #[inline]
    pub fn is_kernel(&self) -> bool {
        self.kind == TargetKind::Kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn transfer(src: DeviceId, dest: DeviceId) -> DataOpEvent {
        DataOpEvent {
            id: EventId(1),
            kind: DataOpKind::Transfer,
            src_device: src,
            dest_device: dest,
            src_addr: 0x1000,
            dest_addr: 0x2000,
            bytes: 64,
            hash: Some(HashVal(42)),
            span: TimeSpan::new(SimTime(0), SimTime(10)),
            codeptr: CodePtr(0x400000),
        }
    }

    #[test]
    fn direction_helpers() {
        let h2d = transfer(DeviceId::HOST, DeviceId::target(0));
        assert!(h2d.is_host_to_device());
        assert!(!h2d.is_device_to_host());

        let d2h = transfer(DeviceId::target(0), DeviceId::HOST);
        assert!(d2h.is_device_to_host());
        assert!(!d2h.is_host_to_device());
    }

    #[test]
    fn kind_predicates() {
        let mut e = transfer(DeviceId::HOST, DeviceId::target(0));
        assert!(e.is_transfer() && !e.is_alloc() && !e.is_delete());
        e.kind = DataOpKind::Alloc;
        assert!(e.is_alloc());
        e.kind = DataOpKind::Delete;
        assert!(e.is_delete());
    }

    #[test]
    fn serde_round_trip() {
        let e = transfer(DeviceId::HOST, DeviceId::target(3));
        let json = serde_json::to_string(&e).unwrap();
        let back: DataOpEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn kernel_predicate() {
        let t = TargetEvent {
            id: EventId(0),
            device: DeviceId::target(0),
            kind: TargetKind::Kernel,
            span: TimeSpan::new(SimTime(5), SimTime(9)),
            codeptr: CodePtr::NULL,
        };
        assert!(t.is_kernel());
        assert_eq!(t.kind.to_string(), "kernel");
    }

    #[test]
    fn hash_display_is_hex16() {
        assert_eq!(HashVal(0xabc).to_string(), "0000000000000abc");
    }
}
