//! Simulated time.
//!
//! The runtime simulator advances a deterministic virtual clock measured in
//! nanoseconds. Every OMPT event carries a [`TimeSpan`] (start and end of
//! the event), which is exactly the information the paper's algorithms need
//! (§5: "Each event log entry must contain the start and end time of the
//! event...").

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since program start.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A length of simulated time, in nanoseconds.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero (program start).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since program start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier` (saturating).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from (possibly fractional) seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3} us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns} ns")
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

/// A half-open interval `[start, end)` of simulated time.
///
/// Events with `start == end` are instantaneous; the overlap predicates
/// below treat the interval as closed for the purposes of Algorithm 4/5
/// ("lifetimes \[that\] do not intersect with the execution of any active
/// kernel"), which matches the paper's `<`/`>` comparisons.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct TimeSpan {
    /// When the event began.
    pub start: SimTime,
    /// When the event completed.
    pub end: SimTime,
}

impl TimeSpan {
    /// Construct a span. `end` is clamped to be no earlier than `start`.
    #[inline]
    pub fn new(start: SimTime, end: SimTime) -> Self {
        TimeSpan {
            start,
            end: end.max(start),
        }
    }

    /// An instantaneous span at `t`.
    #[inline]
    pub fn at(t: SimTime) -> Self {
        TimeSpan { start: t, end: t }
    }

    /// Duration of the span.
    #[inline]
    pub fn duration(self) -> SimDuration {
        self.end - self.start
    }

    /// Do two spans intersect (closed-interval semantics)?
    #[inline]
    pub fn overlaps(self, other: TimeSpan) -> bool {
        // Mirrors the negation of Algorithm 4's disjointness test:
        // disjoint iff other.end < self.start or other.start > self.end.
        !(other.end < self.start || other.start > self.end)
    }

    /// Does this span end strictly before `other` starts?
    #[inline]
    pub fn precedes(self, other: TimeSpan) -> bool {
        self.end < other.start
    }

    /// Does this span contain time `t` (closed)?
    #[inline]
    pub fn contains(self, t: SimTime) -> bool {
        self.start <= t && t <= self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(a: u64, b: u64) -> TimeSpan {
        TimeSpan::new(SimTime(a), SimTime(b))
    }

    #[test]
    fn duration_arithmetic() {
        let t = SimTime(100) + SimDuration(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t - SimTime(100), SimDuration(50));
        assert_eq!(SimTime(10) - SimTime(50), SimDuration(0), "saturates");
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert!((SimDuration::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration(500).to_string(), "500 ns");
        assert_eq!(SimDuration(1_500).to_string(), "1.500 us");
        assert_eq!(SimDuration(2_500_000).to_string(), "2.500 ms");
        assert_eq!(SimDuration(3_000_000_000).to_string(), "3.000 s");
    }

    #[test]
    fn overlap_closed_semantics() {
        assert!(
            span(0, 10).overlaps(span(10, 20)),
            "touching endpoints count"
        );
        assert!(span(0, 10).overlaps(span(5, 6)));
        assert!(span(5, 6).overlaps(span(0, 10)));
        assert!(!span(0, 10).overlaps(span(11, 20)));
        assert!(!span(11, 20).overlaps(span(0, 10)));
    }

    #[test]
    fn instantaneous_spans() {
        let p = TimeSpan::at(SimTime(5));
        assert_eq!(p.duration(), SimDuration::ZERO);
        assert!(p.overlaps(span(5, 5)));
        assert!(span(0, 10).contains(SimTime(5)));
    }

    #[test]
    fn precedes_is_strict() {
        assert!(span(0, 4).precedes(span(5, 6)));
        assert!(
            !span(0, 5).precedes(span(5, 6)),
            "touching is not preceding"
        );
    }

    #[test]
    fn new_clamps_reversed_spans() {
        let s = span(10, 3);
        assert_eq!(s.start, SimTime(10));
        assert_eq!(s.end, SimTime(10));
    }
}
