//! FNV-1a, 64-bit. Exact implementation.
//!
//! Not part of Table 4 (too slow for bulk payloads) but used internally as
//! the `BuildHasher` for the detection algorithms' small-key maps, where
//! the perf-book guidance prefers a cheap non-SipHash hasher.

use std::hash::{BuildHasherDefault, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a over `data`.
#[inline]
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streaming FNV-1a hasher implementing `std::hash::Hasher`, for use in
/// `HashMap`s on hot detection paths.
#[derive(Clone, Copy, Debug)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        // Mix whole words in two multiply steps: cheaper than eight
        // byte-steps and adequate for table bucketing.
        let mut h = self.0;
        h ^= i;
        h = h.wrapping_mul(FNV_PRIME);
        h ^= i >> 32;
        h = h.wrapping_mul(FNV_PRIME);
        self.0 = h;
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.write_u64(i as u32 as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for FNV-keyed standard collections.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` keyed with FNV (drop-in for detection's grouping maps).
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

/// A `HashSet` keyed with FNV.
pub type FnvHashSet<T> = std::collections::HashSet<T, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hasher_matches_oneshot_for_bytes() {
        let mut h = FnvHasher::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn map_works() {
        let mut m: FnvHashMap<u64, u32> = FnvHashMap::default();
        for i in 0..100 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m[&21], 42);
    }
}
