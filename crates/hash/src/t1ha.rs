//! t1ha-inspired hashes ("Fast Positive Hash").
//!
//! The t1ha family spans scalar 32-bit builds (`t1ha0_32le`), scalar 64-bit
//! (`t1ha1_le`), 128-bit-state (`t1ha2_atonce`) and SIMD builds
//! (`t1ha0_noavx/avx/avx2`). The SIMD builds differ mainly in how many
//! independent streams they fold per step; we model them with a
//! const-generic lane count — `t1ha0_lanes::<2>` (no-AVX), `::<4>` (AVX),
//! `::<8>` (AVX2, the paper's default algorithm). The per-lane work is a
//! single folded 64×64→128 multiply per 8 input bytes; with independent
//! lanes the multiplies pipeline, which is the scalar analogue of the
//! SIMD builds' width advantage.

use crate::primitives::{fmix64, mum, read32, read64, read_tail64};

const PRIME0: u64 = 0xEC99_BF0D_8372_CAAB;
const PRIME1: u64 = 0x8241_0DC2_9F5D_9A4D;
const PRIME2: u64 = 0x9C06_FAF4_D023_E3AB;
const PRIME3: u64 = 0xC060_724A_8424_F345;
const PRIME4: u64 = 0xCB5A_F53A_E3AA_AC31;

/// t1ha0 with `LANES` parallel 64-bit streams (models SIMD width).
///
/// `LANES = 2` ≈ no-AVX build, `4` ≈ AVX, `8` ≈ AVX2.
pub fn t1ha0_lanes<const LANES: usize>(data: &[u8]) -> u64 {
    let len = data.len();
    let block = LANES * 8;
    let mut lanes = [0u64; LANES];
    let mut keys = [0u64; LANES];
    for (i, (l, k)) in lanes.iter_mut().zip(keys.iter_mut()).enumerate() {
        *l = PRIME0.wrapping_add(i as u64).wrapping_mul(PRIME1);
        *k = PRIME2.wrapping_add((i as u64) << 1);
    }

    let mut chunks = data.chunks_exact(block);
    for chunk in &mut chunks {
        for lane in 0..LANES {
            let v = read64(chunk, lane * 8);
            lanes[lane] = mum(lanes[lane] ^ v, keys[lane]);
        }
    }
    let rem = chunks.remainder();
    let mut i = 0usize;
    while i + 8 <= rem.len() {
        lanes[0] = mum(lanes[0] ^ read64(rem, i), PRIME3);
        i += 8;
    }
    if i < rem.len() {
        lanes[0] ^= read_tail64(&rem[i..]).wrapping_mul(PRIME4);
    }

    let mut acc = (len as u64).wrapping_mul(PRIME0);
    for (lane, &value) in lanes.iter().enumerate() {
        acc = mum(acc ^ value, PRIME1.wrapping_add((lane as u64) << 1));
    }
    fmix64(acc)
}

/// t1ha0_32le-inspired: 32-bit operations only in the bulk loop, which is
/// why it lands mid-pack on a 64-bit machine (Table 4 shows ~8 GB/s).
pub fn t1ha0_32le(data: &[u8]) -> u64 {
    let len = data.len();
    let mut a: u32 = 0x92D7_8269;
    let mut b: u32 = 0xCA9B_4735;
    let mut c: u32 = 0xA468_7A76;
    let mut d: u32 = 0xE7B3_1089;

    let mut i = 0usize;
    while i + 16 <= len {
        let w0 = read32(data, i);
        let w1 = read32(data, i + 4);
        let w2 = read32(data, i + 8);
        let w3 = read32(data, i + 12);
        // 32×32→64 multiplies, folded: the character of the 32le build.
        let m0 = (a ^ w0) as u64 * 0x85EB_CA6B_u64;
        let m1 = (b ^ w1) as u64 * 0xC2B2_AE35_u64;
        a = (m0 as u32) ^ ((m0 >> 32) as u32) ^ c.rotate_left(13);
        b = (m1 as u32) ^ ((m1 >> 32) as u32) ^ d.rotate_left(7);
        c = c
            .wrapping_add(w2)
            .rotate_right(17)
            .wrapping_mul(0xCC9E_2D51);
        d = (d ^ w3).rotate_right(11).wrapping_mul(0x1B87_3593);
        i += 16;
    }
    while i + 4 <= len {
        a = (a ^ read32(data, i))
            .wrapping_mul(0x85EB_CA6B)
            .rotate_left(15);
        i += 4;
    }
    while i < len {
        b = (b ^ data[i] as u32).wrapping_mul(0xCC9E_2D51);
        i += 1;
    }
    let lo = ((a as u64) << 32) | b as u64;
    let hi = ((c as u64) << 32) | d as u64;
    fmix64(lo ^ hi.rotate_left(32) ^ (len as u64).wrapping_mul(PRIME0))
}

/// t1ha1_le-inspired: scalar 64-bit, 32-byte rounds over 4 words with a
/// serial carry chain.
pub fn t1ha1_le(data: &[u8]) -> u64 {
    let len = data.len();
    let mut a = PRIME0;
    let mut b = (len as u64).wrapping_mul(PRIME1);

    let mut chunks = data.chunks_exact(32);
    for c in &mut chunks {
        let w0 = read64(c, 0);
        let w1 = read64(c, 8);
        let w2 = read64(c, 16);
        let w3 = read64(c, 24);
        let d = w0.wrapping_add(w2).rotate_right(17) ^ w1;
        let e = w1.wrapping_sub(w3).rotate_right(31) ^ w0;
        a = mum(a ^ e, PRIME2).wrapping_add(w3);
        b = mum(b ^ d, PRIME3).wrapping_add(w2);
    }
    let rem = chunks.remainder();
    let mut i = 0usize;
    while i + 8 <= rem.len() {
        a = mum(a ^ read64(rem, i), PRIME4);
        i += 8;
    }
    if i < rem.len() {
        b ^= read_tail64(&rem[i..]).wrapping_mul(PRIME1);
    }
    fmix64(mum(a, PRIME0) ^ mum(b, PRIME1) ^ (len as u64))
}

/// t1ha2_atonce-inspired: 128-bit internal state (two interleaved
/// accumulator pairs), slightly heavier finale.
pub fn t1ha2_atonce(data: &[u8]) -> u64 {
    let len = data.len();
    let mut a = PRIME0;
    let mut b = PRIME1;
    let mut c = (len as u64).wrapping_mul(PRIME2);
    let mut d = (len as u64) ^ PRIME3;

    let mut chunks = data.chunks_exact(32);
    for ch in &mut chunks {
        let w0 = read64(ch, 0);
        let w1 = read64(ch, 8);
        let w2 = read64(ch, 16);
        let w3 = read64(ch, 24);
        let d13 = w1.wrapping_add(c.wrapping_add(w3).rotate_right(17));
        let d02 = w0.wrapping_add(d.wrapping_add(w2).rotate_right(17));
        c ^= a.wrapping_add(w1.rotate_right(41));
        d ^= b.wrapping_add(w0.rotate_right(23));
        a = mum(d02, PRIME4) ^ w2;
        b = mum(d13, PRIME0) ^ w3;
    }
    let rem = chunks.remainder();
    let mut i = 0usize;
    while i + 8 <= rem.len() {
        a = mum(a ^ read64(rem, i), PRIME2);
        b = b.rotate_left(19).wrapping_add(a);
        i += 8;
    }
    if i < rem.len() {
        c ^= read_tail64(&rem[i..]).wrapping_mul(PRIME3);
    }
    fmix64(mum(a ^ c, PRIME1).wrapping_add(mum(b ^ d, PRIME2)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts_give_distinct_functions() {
        let v = vec![0x17u8; 4096];
        let h2 = t1ha0_lanes::<2>(&v);
        let h4 = t1ha0_lanes::<4>(&v);
        let h8 = t1ha0_lanes::<8>(&v);
        assert_ne!(h2, h4);
        assert_ne!(h4, h8);
        assert_ne!(h2, h8);
    }

    #[test]
    fn all_variants_deterministic() {
        let v: Vec<u8> = (0..777).map(|i| (i * 13 % 256) as u8).collect();
        assert_eq!(t1ha0_lanes::<8>(&v), t1ha0_lanes::<8>(&v));
        assert_eq!(t1ha0_32le(&v), t1ha0_32le(&v));
        assert_eq!(t1ha1_le(&v), t1ha1_le(&v));
        assert_eq!(t1ha2_atonce(&v), t1ha2_atonce(&v));
    }

    #[test]
    fn length_sensitivity_all_variants() {
        for f in [
            t1ha0_lanes::<8> as fn(&[u8]) -> u64,
            t1ha0_32le,
            t1ha1_le,
            t1ha2_atonce,
        ] {
            let mut hs: Vec<u64> = (0..200usize).map(|n| f(&vec![9u8; n])).collect();
            hs.sort_unstable();
            hs.dedup();
            assert_eq!(hs.len(), 200);
        }
    }

    #[test]
    fn tail_bytes_matter_for_default() {
        let mut v = vec![0u8; 100]; // 100 = 12*8 + 4 → exercises the tail
        let h = t1ha0_lanes::<8>(&v);
        v[99] = 1;
        assert_ne!(h, t1ha0_lanes::<8>(&v));
    }

    #[test]
    fn every_block_position_matters() {
        let base = vec![0u8; 256];
        let h0 = t1ha0_lanes::<8>(&base);
        for pos in [0usize, 63, 64, 127, 128, 255] {
            let mut v = base.clone();
            v[pos] = 1;
            assert_ne!(h0, t1ha0_lanes::<8>(&v), "byte {pos} ignored");
        }
    }
}
