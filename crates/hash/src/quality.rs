//! Hash-quality measurements used to validate the family (§B.1: "hash
//! function families that passed most or all of the quality tests in the
//! SMHasher3 suite").
//!
//! These are lightweight renditions of three SMHasher-style tests —
//! avalanche, bucket uniformity, and collision counting — strong enough to
//! catch a broken mixer, cheap enough to run in the test suite.

use crate::HashAlgoId;

/// A deterministic xorshift generator so quality tests are reproducible
/// without pulling `rand` into the library's dependency set.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fill `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Result of an avalanche measurement.
#[derive(Clone, Copy, Debug)]
pub struct AvalancheResult {
    /// Mean probability that an output bit flips when one input bit flips.
    /// Ideal: 0.5.
    pub mean_flip_probability: f64,
    /// Worst per-output-bit deviation from 0.5.
    pub worst_bias: f64,
}

/// Measure avalanche behaviour of `algo` on `trials` random keys of
/// `key_len` bytes each.
pub fn avalanche(algo: HashAlgoId, key_len: usize, trials: usize, seed: u64) -> AvalancheResult {
    let mut rng = SplitMix64::new(seed);
    let mut flip_counts = [0u64; 64];
    let mut total_flips = 0u64;
    let mut total_experiments = 0u64;
    let digest_bits = algo.digest_bits() as usize;

    let mut key = vec![0u8; key_len.max(1)];
    for _ in 0..trials {
        rng.fill(&mut key);
        let h0 = algo.hash(&key);
        // Flip a sample of input bits (all of them for short keys).
        let bit_count = (key.len() * 8).min(64);
        for bit in 0..bit_count {
            let byte = (bit / 8) % key.len();
            let mask = 1u8 << (bit % 8);
            key[byte] ^= mask;
            let h1 = algo.hash(&key);
            key[byte] ^= mask;
            let diff = h0 ^ h1;
            total_flips += diff.count_ones() as u64;
            total_experiments += 1;
            for (out_bit, cnt) in flip_counts.iter_mut().enumerate().take(digest_bits) {
                *cnt += (diff >> out_bit) & 1;
            }
        }
    }

    let mean = total_flips as f64 / (total_experiments as f64 * digest_bits as f64);
    let worst = flip_counts
        .iter()
        .take(digest_bits)
        .map(|&c| (c as f64 / total_experiments as f64 - 0.5).abs())
        .fold(0.0, f64::max);
    AvalancheResult {
        mean_flip_probability: mean,
        worst_bias: worst,
    }
}

/// Count collisions among the digests of `n` distinct random keys.
pub fn collision_count(algo: HashAlgoId, n: usize, key_len: usize, seed: u64) -> usize {
    let mut rng = SplitMix64::new(seed);
    let mut digests = Vec::with_capacity(n);
    let mut key = vec![0u8; key_len.max(1)];
    // Embed a counter so keys are guaranteed distinct.
    for i in 0..n {
        rng.fill(&mut key);
        let ctr = (i as u64).to_le_bytes();
        let w = key.len().min(8);
        key[..w].copy_from_slice(&ctr[..w]);
        digests.push(algo.hash(&key));
    }
    digests.sort_unstable();
    digests.windows(2).filter(|w| w[0] == w[1]).count()
}

/// Chi-square statistic of digest distribution over `buckets` buckets for
/// `n` random keys; for a uniform hash this should be near `buckets`.
pub fn bucket_chi_square(
    algo: HashAlgoId,
    n: usize,
    buckets: usize,
    key_len: usize,
    seed: u64,
) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let mut counts = vec![0u64; buckets];
    let mut key = vec![0u8; key_len.max(1)];
    for _ in 0..n {
        rng.fill(&mut key);
        let h = algo.hash(&key);
        counts[(h % buckets as u64) as usize] += 1;
    }
    let expected = n as f64 / buckets as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "statistical sweep is too slow under miri")]
    fn all_algorithms_avalanche_reasonably() {
        // A correct mixer flips ~50 % of output bits per input-bit flip.
        // We allow generous tolerance: this is a smoke screen for broken
        // implementations, not an SMHasher replacement.
        for algo in HashAlgoId::ALL {
            let r = avalanche(algo, 32, 64, 0xA11CE);
            assert!(
                (0.30..=0.70).contains(&r.mean_flip_probability),
                "{algo}: mean flip probability {:.3} out of range",
                r.mean_flip_probability
            );
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "statistical sweep is too slow under miri")]
    fn strong_64bit_functions_have_tight_avalanche() {
        for algo in [
            HashAlgoId::XXH64,
            HashAlgoId::Rapidhash,
            HashAlgoId::T1ha0_avx2,
            HashAlgoId::XXH3_64bits,
        ] {
            let r = avalanche(algo, 64, 128, 0xBEEF);
            assert!(
                (0.45..=0.55).contains(&r.mean_flip_probability),
                "{algo}: mean {:.3}",
                r.mean_flip_probability
            );
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "100k-key sweep is too slow under miri")]
    fn no_collisions_on_100k_random_keys() {
        // §B.1 observed 0 collisions for all evaluated functions across
        // the benchmark corpus; 100k random 64-byte keys is a comparable
        // bar for a 64-bit digest (expected collisions ≈ 2.7e-10).
        for algo in [
            HashAlgoId::T1ha0_avx2,
            HashAlgoId::XXH64,
            HashAlgoId::Rapidhash,
            HashAlgoId::CityHash64,
        ] {
            assert_eq!(collision_count(algo, 100_000, 64, 7), 0, "{algo}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "40k-key chi-square sweep is too slow under miri")]
    fn digests_spread_over_buckets() {
        for algo in HashAlgoId::ALL {
            let chi = bucket_chi_square(algo, 40_000, 256, 48, 99);
            // 255 degrees of freedom; anything under ~400 is comfortably
            // uniform, broken mixers score in the thousands.
            assert!(chi < 450.0, "{algo}: chi-square {chi:.1}");
        }
    }
}
