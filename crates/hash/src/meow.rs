//! MeowHash-inspired wide-block hash.
//!
//! The real MeowHash leans on hardware AES rounds over 128-byte blocks to
//! reach extreme throughput on long strings. This portable stand-in keeps
//! the *shape* — eight independent 64-bit lanes consuming 128-byte blocks
//! with a cheap per-lane mix and a heavier cross-lane finale — so that in
//! Table 4 it behaves like the family it models: mediocre on tiny keys,
//! top-tier on long streams.

use crate::primitives::{fmix64, mum, read64, read_tail64};

const LANE_KEYS: [u64; 8] = [
    0x9E37_79B9_7F4A_7C15,
    0xBF58_476D_1CE4_E5B9,
    0x94D0_49BB_1331_11EB,
    0xD6E8_FEB8_6659_FD93,
    0xCA5A_8263_9512_1157,
    0x7B1C_E583_BD4A_767D,
    0x85EB_CA77_C2B2_AE63,
    0xC2B2_AE3D_27D4_EB4F,
];

/// MeowHash-inspired 64-bit hash.
pub fn meow64(data: &[u8]) -> u64 {
    let len = data.len();
    let mut lanes = LANE_KEYS;

    let mut i = 0usize;
    // 128-byte blocks: 2 reads per lane per block, fully independent lanes
    // (the ILP that models AES-pipe throughput).
    while i + 128 <= len {
        for (lane, l) in lanes.iter_mut().enumerate() {
            let x = read64(data, i + lane * 8);
            let y = read64(data, i + 64 + lane * 8);
            // One multiply + xor-rotate per 16 bytes of input.
            *l = (*l ^ x).wrapping_mul(LANE_KEYS[(lane + 1) & 7]) ^ y.rotate_left(29);
        }
        i += 128;
    }
    // 8-byte granules for the remainder.
    let mut lane = 0usize;
    while i + 8 <= len {
        lanes[lane & 7] = (lanes[lane & 7] ^ read64(data, i)).wrapping_mul(LANE_KEYS[lane & 7]);
        lane += 1;
        i += 8;
    }
    if i < len {
        lanes[lane & 7] ^= read_tail64(&data[i..]).wrapping_mul(0x0100_0000_01b3);
    }

    // Cross-lane finale.
    let mut acc = (len as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for pair in 0..4 {
        acc = acc.wrapping_add(mum(lanes[2 * pair], lanes[2 * pair + 1].rotate_left(17)));
    }
    fmix64(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let v: Vec<u8> = (0..999).map(|i| (i % 255) as u8).collect();
        assert_eq!(meow64(&v), meow64(&v));
    }

    #[test]
    fn block_and_tail_paths() {
        for n in [0usize, 7, 8, 64, 127, 128, 129, 256, 1000] {
            let v = vec![3u8; n];
            let _ = meow64(&v);
        }
        let mut hs: Vec<u64> = (0..300usize).map(|n| meow64(&vec![3u8; n])).collect();
        hs.sort_unstable();
        hs.dedup();
        assert_eq!(hs.len(), 300);
    }

    #[test]
    fn every_block_position_matters() {
        let base = vec![0u8; 512];
        let h0 = meow64(&base);
        for pos in [0usize, 63, 64, 127, 128, 255, 256, 511] {
            let mut v = base.clone();
            v[pos] = 1;
            assert_ne!(h0, meow64(&v), "byte {pos} ignored");
        }
    }
}
