//! XXH3-inspired hashes (64- and 128-bit).
//!
//! The reference XXH3 uses a 192-byte secret and SIMD stripe accumulation.
//! This portable variant preserves the structural character — distinct fast
//! paths for 0–16, 17–128 and long inputs, 64-byte stripes accumulated into
//! eight 64-bit lanes with multiply-fold mixing — without the secret
//! machinery; digests do **not** match the reference.

use crate::primitives::{fmix64, mum, read64, read_tail64};

const SECRET: [u64; 12] = [
    0xbe4b_a423_396c_feb8,
    0x1cad_21f7_2c81_017c,
    0xdb97_9083_e96d_d4de,
    0x1f67_b3b7_a4a4_4072,
    0x78e5_c0cc_4ee6_79cb,
    0x2172_ffcc_7dd0_5a82,
    0x8e24_47b7_58d4_f4f8,
    0xb8fe_6c39_23a4_4bbe,
    0x7c01_812c_f721_ad1c,
    0xded4_6de9_8390_97db,
    0x3f34_9ce3_3f76_4638,
    0x9c31_53f8_2552_2ae4,
];

#[inline(always)]
fn mix16(data: &[u8], offset: usize, s0: u64, s1: u64) -> u64 {
    mum(read64(data, offset) ^ s0, read64(data, offset + 8) ^ s1)
}

fn short_hash(data: &[u8]) -> u64 {
    let len = data.len();
    if len == 0 {
        return fmix64(SECRET[0]);
    }
    if len <= 8 {
        let v = read_tail64(data);
        return fmix64(v ^ SECRET[1] ^ (len as u64).wrapping_mul(SECRET[2]));
    }
    // 9..=16
    let lo = read64(data, 0);
    let hi = read64(data, len - 8);
    fmix64(mum(lo ^ SECRET[3], hi ^ SECRET[4]) ^ (len as u64))
}

fn mid_hash(data: &[u8]) -> u64 {
    // 17..=128 bytes: paired 16-byte mixes from both ends inward.
    let len = data.len();
    let mut acc = (len as u64).wrapping_mul(0x9E37_79B1_85EB_CA87);
    let mut i = 0usize;
    let mut j = len;
    let mut s = 0usize;
    while i + 16 <= j {
        acc = acc.wrapping_add(mix16(data, i, SECRET[s % 12], SECRET[(s + 1) % 12]));
        if j >= i + 32 {
            acc = acc.wrapping_add(mix16(
                data,
                j - 16,
                SECRET[(s + 2) % 12],
                SECRET[(s + 3) % 12],
            ));
        }
        i += 16;
        j -= 16;
        s += 4;
    }
    if i < data.len() && data.len() >= 16 {
        acc = acc.wrapping_add(mix16(data, data.len() - 16, SECRET[9], SECRET[10]));
    }
    fmix64(acc)
}

fn long_hash(data: &[u8]) -> [u64; 2] {
    // 64-byte stripes into 8 accumulators (the XXH3 shape): one
    // 32×32→64 multiply per 8 input bytes, exactly the reference
    // algorithm's work-per-byte (its speed defines the family).
    let len = data.len();
    let mut acc = [
        SECRET[0], SECRET[1], SECRET[2], SECRET[3], SECRET[4], SECRET[5], SECRET[6], SECRET[7],
    ];
    let mut chunks = data.chunks_exact(64);
    for stripe in &mut chunks {
        for lane in 0..8 {
            let v = read64(stripe, lane * 8);
            let k = v ^ SECRET[lane + 1];
            acc[lane ^ 1] = acc[lane ^ 1].wrapping_add(v);
            acc[lane] = acc[lane].wrapping_add((k as u32 as u64).wrapping_mul(k >> 32));
        }
    }
    let i = len - chunks.remainder().len();
    // Final partial stripe, re-read from the end (reference behaviour).
    if i < len && len >= 64 {
        let base = len - 64;
        for lane in 0..8 {
            let v = read64(data, base + lane * 8);
            acc[lane] ^= v.wrapping_mul(SECRET[(lane + 5) % 12]);
        }
    } else if i < len {
        // (unreachable for long inputs; kept for safety)
        acc[0] ^= read_tail64(&data[i..len.min(i + 8)]);
    }

    let mut lo = (len as u64).wrapping_mul(0x9E37_79B1_85EB_CA87);
    let mut hi = !(len as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    for lane in 0..4 {
        lo = lo.wrapping_add(mum(
            acc[2 * lane] ^ SECRET[lane],
            acc[2 * lane + 1] ^ SECRET[lane + 4],
        ));
        hi = hi.wrapping_add(mum(
            acc[2 * lane].rotate_left(17) ^ SECRET[lane + 8 - 4],
            acc[2 * lane + 1].rotate_left(43) ^ SECRET[(lane + 7) % 12],
        ));
    }
    [fmix64(lo), fmix64(hi)]
}

/// XXH3-64-inspired hash.
pub fn xxh3_64(data: &[u8]) -> u64 {
    match data.len() {
        0..=16 => short_hash(data),
        17..=128 => mid_hash(data),
        _ => long_hash(data)[0],
    }
}

/// XXH3-128-inspired hash.
pub fn xxh3_128(data: &[u8]) -> u128 {
    match data.len() {
        0..=16 => {
            let lo = short_hash(data);
            let hi = fmix64(lo ^ SECRET[6]);
            ((hi as u128) << 64) | lo as u128
        }
        17..=128 => {
            let lo = mid_hash(data);
            let hi = fmix64(lo.rotate_left(31) ^ SECRET[7] ^ data.len() as u64);
            ((hi as u128) << 64) | lo as u128
        }
        _ => {
            let [lo, hi] = long_hash(data);
            ((hi as u128) << 64) | lo as u128
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_class_boundaries_are_covered() {
        for n in [0usize, 1, 8, 9, 16, 17, 64, 128, 129, 256, 1024] {
            let v = vec![7u8; n];
            let h = xxh3_64(&v);
            assert_eq!(h, xxh3_64(&v), "deterministic at len {n}");
        }
    }

    #[test]
    fn distinct_lengths_distinct_hashes() {
        let mut hs: Vec<u64> = (0..300usize).map(|n| xxh3_64(&vec![3u8; n])).collect();
        hs.sort_unstable();
        hs.dedup();
        assert_eq!(hs.len(), 300);
    }

    #[test]
    fn bit_flip_changes_long_input_hash() {
        let mut v = vec![0u8; 4096];
        let base = xxh3_64(&v);
        v[4000] ^= 0x80;
        assert_ne!(base, xxh3_64(&v));
        v[4000] ^= 0x80;
        v[10] ^= 1;
        assert_ne!(base, xxh3_64(&v));
    }

    #[test]
    fn xxh3_128_halves_are_independent_ish() {
        let v = vec![9u8; 512];
        let h = xxh3_128(&v);
        assert_ne!(h as u64, (h >> 64) as u64);
    }
}
