//! Wall-clock hash-throughput measurement (Table 4, Figure 5).
//!
//! The paper instruments the tool with a timer to measure the *effective
//! hash rate* over the real transfer payloads of each benchmark. This
//! module provides the measurement primitive both the tool and the bench
//! harness use.

use crate::HashAlgoId;
use std::hint::black_box;
use std::time::Instant;

/// Result of a throughput measurement.
#[derive(Clone, Copy, Debug, Default)]
pub struct Throughput {
    /// Total bytes hashed.
    pub bytes: u64,
    /// Total wall-clock nanoseconds spent hashing.
    pub nanos: u64,
}

impl Throughput {
    /// Gigabytes per second (decimal GB, as in the paper).
    pub fn gb_per_s(&self) -> f64 {
        if self.nanos == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.nanos as f64
    }

    /// Merge two measurements.
    pub fn merge(&mut self, other: Throughput) {
        self.bytes += other.bytes;
        self.nanos += other.nanos;
    }
}

/// Hash `data` `iters` times with `algo`, returning the measured rate.
pub fn measure(algo: HashAlgoId, data: &[u8], iters: usize) -> Throughput {
    // Warm the cache once so the measurement reflects steady state.
    black_box(algo.hash(black_box(data)));
    let start = Instant::now();
    for _ in 0..iters {
        black_box(algo.hash(black_box(data)));
    }
    let nanos = start.elapsed().as_nanos() as u64;
    Throughput {
        bytes: (data.len() * iters) as u64,
        nanos: nanos.max(1),
    }
}

/// Pick an iteration count so that a sweep point takes roughly
/// `target_ns` of wall time for a buffer of `len` bytes.
pub fn calibrate_iters(len: usize, target_ns: u64) -> usize {
    // Assume ≥ 1 GB/s (1 byte/ns) as a floor; clamp to sane bounds.
    let est_ns_per_iter = (len as u64).max(32);
    ((target_ns / est_ns_per_iter).max(3) as usize).min(4_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        miri,
        ignore = "wall-clock measurement over 1 MB is too slow under miri"
    )]
    fn measured_rate_is_positive() {
        let data = vec![0xABu8; 64 * 1024];
        let t = measure(HashAlgoId::T1ha0_avx2, &data, 16);
        assert!(t.gb_per_s() > 0.0);
        assert_eq!(t.bytes, 64 * 1024 * 16);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Throughput {
            bytes: 10,
            nanos: 10,
        };
        a.merge(Throughput {
            bytes: 30,
            nanos: 10,
        });
        assert_eq!(a.bytes, 40);
        assert_eq!(a.nanos, 20);
        assert!((a.gb_per_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_bounds() {
        assert!(calibrate_iters(1, 1_000_000) >= 3);
        assert!(calibrate_iters(1 << 30, 1_000) >= 3);
        assert!(calibrate_iters(8, 10_000_000_000) <= 4_000_000);
    }
}
