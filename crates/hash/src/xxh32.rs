//! xxHash32 — exact implementation of the reference algorithm.

use crate::primitives::read32;

const P1: u32 = 2_654_435_761;
const P2: u32 = 2_246_822_519;
const P3: u32 = 3_266_489_917;
const P4: u32 = 668_265_263;
const P5: u32 = 374_761_393;

#[inline(always)]
fn round(acc: u32, input: u32) -> u32 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(13)
        .wrapping_mul(P1)
}

/// Hash `data` with seed `seed`.
pub fn xxh32(data: &[u8], seed: u32) -> u32 {
    let len = data.len();
    let mut h: u32;
    let mut i = 0usize;

    if len >= 16 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while i + 16 <= len {
            v1 = round(v1, read32(data, i));
            v2 = round(v2, read32(data, i + 4));
            v3 = round(v3, read32(data, i + 8));
            v4 = round(v4, read32(data, i + 12));
            i += 16;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
    } else {
        h = seed.wrapping_add(P5);
    }

    h = h.wrapping_add(len as u32);

    while i + 4 <= len {
        h = h
            .wrapping_add(read32(data, i).wrapping_mul(P3))
            .rotate_left(17)
            .wrapping_mul(P4);
        i += 4;
    }
    while i < len {
        h = h
            .wrapping_add((data[i] as u32).wrapping_mul(P5))
            .rotate_left(11)
            .wrapping_mul(P1);
        i += 1;
    }

    h ^= h >> 15;
    h = h.wrapping_mul(P2);
    h ^= h >> 13;
    h = h.wrapping_mul(P3);
    h ^= h >> 16;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_vectors() {
        // From the xxHash reference test suite.
        assert_eq!(xxh32(b"", 0), 0x02CC5D05);
        assert_eq!(xxh32(b"abc", 0), 0x32D153FF);
    }

    #[test]
    fn seed_changes_digest() {
        assert_ne!(xxh32(b"hello world", 0), xxh32(b"hello world", 1));
    }

    #[test]
    fn covers_all_length_classes() {
        // < 4, 4..16, >= 16, and multi-stripe lengths must all be distinct
        // for distinct inputs (smoke test of path selection).
        let inputs: Vec<Vec<u8>> = (0..64usize).map(|n| vec![0xA5; n]).collect();
        let mut hashes: Vec<u32> = inputs.iter().map(|v| xxh32(v, 0)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 64, "length must influence the digest");
    }
}
