//! MurmurHash3 x64 128-bit — exact implementation.
//!
//! Used by the quality harness as a well-understood reference point and
//! available to the tool as a non-default algorithm.

use crate::primitives::read64;

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

/// MurmurHash3 x64 128 with `seed`, returned as `u128` (h2 in high bits).
pub fn murmur3_x64_128(data: &[u8], seed: u32) -> u128 {
    let len = data.len();
    let nblocks = len / 16;
    let mut h1 = seed as u64;
    let mut h2 = seed as u64;

    for b in 0..nblocks {
        let mut k1 = read64(data, b * 16);
        let mut k2 = read64(data, b * 16 + 8);

        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1
            .rotate_left(27)
            .wrapping_add(h2)
            .wrapping_mul(5)
            .wrapping_add(0x52dce729);

        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2
            .rotate_left(31)
            .wrapping_add(h1)
            .wrapping_mul(5)
            .wrapping_add(0x38495ab5);
    }

    let tail = &data[nblocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for (i, &b) in tail.iter().enumerate().rev() {
        if i >= 8 {
            k2 ^= (b as u64) << ((i - 8) * 8);
        } else {
            k1 ^= (b as u64) << (i * 8);
        }
    }
    if !tail.is_empty() {
        if tail.len() > 8 {
            k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
            h2 ^= k2;
        }
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = crate::primitives::fmix64(h1);
    h2 = crate::primitives::fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    ((h2 as u128) << 64) | h1 as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_vectors() {
        // Reference vectors widely reproduced from the C++ implementation.
        let h = murmur3_x64_128(b"", 0);
        assert_eq!(h, 0);
        let h = murmur3_x64_128(b"The quick brown fox jumps over the lazy dog", 0);
        assert_eq!(h as u64, 0xe34bbc7bbc071b6c);
    }

    #[test]
    fn tail_bytes_matter() {
        let a = murmur3_x64_128(b"0123456789abcdef!", 0);
        let b = murmur3_x64_128(b"0123456789abcdef?", 0);
        assert_ne!(a, b);
    }

    #[test]
    fn seed_matters() {
        assert_ne!(murmur3_x64_128(b"x", 0), murmur3_x64_128(b"x", 1));
    }
}
