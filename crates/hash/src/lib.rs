//! # odp-hash — content hashing for duplicate-transfer detection
//!
//! The paper (§5.1, Appendix B) detects duplicate and round-trip data
//! transfers by hashing the payload of every transfer with a fast
//! non-cryptographic hash and comparing 64-bit digests. Appendix B
//! evaluates 19 hash functions from 6 families (CityHash, FarmHash,
//! MeowHash, rapidhash/wyhash, t1ha, xxHash) and selects `t1ha0_avx2` as
//! the default.
//!
//! This crate provides from-scratch Rust implementations spanning the same
//! design space. Where the reference algorithm is small and fully
//! specified we implement it exactly and assert published test vectors
//! (FNV-1a, xxHash32, xxHash64, Murmur3). For the larger or ISA-specific
//! families (XXH3, CityHash, FarmHash, t1ha, MeowHash) we implement
//! *-inspired* portable variants that preserve each family's structural
//! character — lane counts, block sizes, small-key fast paths — so that the
//! relative-throughput experiments (Table 4, Figure 5) exercise the same
//! trade-offs. See DESIGN.md for the substitution table.
//!
//! ```
//! use odp_hash::HashAlgoId;
//!
//! let h = HashAlgoId::default().hash(b"some transferred bytes");
//! assert_eq!(h, HashAlgoId::default().hash(b"some transferred bytes"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod city;
pub mod farm;
pub mod fnv;
pub mod meow;
pub mod murmur;
pub mod quality;
pub mod t1ha;
pub mod throughput;
pub mod wy;
pub mod xxh3;
pub mod xxh32;
pub mod xxh64;

mod primitives;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one evaluated hash function (the 19 columns of Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum HashAlgoId {
    /// CityHash32-inspired (32-bit arithmetic).
    CityHash32,
    /// CityHash64-inspired.
    CityHash64,
    /// CityHash128-inspired, folded to 64 bits for storage.
    CityHash128,
    /// CityHashCrc128-inspired (CRC-accelerated flavour), folded.
    CityHashCrc128,
    /// FarmHash32-inspired.
    FarmHash32,
    /// FarmHash64-inspired.
    FarmHash64,
    /// FarmHash128-inspired, folded.
    FarmHash128,
    /// MeowHash-inspired wide-block hash (8×64-bit lanes, no AES).
    MeowHash,
    /// rapidhash (wyhash successor) style folded-multiply hash.
    Rapidhash,
    /// t1ha0 with 4 parallel 64-bit lanes (models the AVX build).
    T1ha0_avx,
    /// t1ha0 with 8 parallel 64-bit lanes (models the AVX2 build).
    /// **The paper's default.**
    T1ha0_avx2,
    /// t1ha0 scalar (2 lanes; models the no-AVX build).
    T1ha0_noavx,
    /// t1ha0 32-bit-ops variant.
    T1ha0_32le,
    /// t1ha1 little-endian 64-bit variant.
    T1ha1_le,
    /// t1ha2 "at once" 128-bit-state variant.
    T1ha2_atonce,
    /// xxHash32 (exact implementation).
    XXH32,
    /// xxHash64 (exact implementation).
    XXH64,
    /// XXH3-64-inspired.
    XXH3_64bits,
    /// XXH3-128-inspired, folded to 64 bits for storage.
    XXH3_128bits,
}

impl HashAlgoId {
    /// All 19 evaluated functions, in Table 4 column order.
    pub const ALL: [HashAlgoId; 19] = [
        HashAlgoId::CityHash32,
        HashAlgoId::CityHash64,
        HashAlgoId::CityHash128,
        HashAlgoId::CityHashCrc128,
        HashAlgoId::FarmHash32,
        HashAlgoId::FarmHash64,
        HashAlgoId::FarmHash128,
        HashAlgoId::MeowHash,
        HashAlgoId::Rapidhash,
        HashAlgoId::T1ha0_avx,
        HashAlgoId::T1ha0_avx2,
        HashAlgoId::T1ha0_noavx,
        HashAlgoId::T1ha0_32le,
        HashAlgoId::T1ha1_le,
        HashAlgoId::T1ha2_atonce,
        HashAlgoId::XXH32,
        HashAlgoId::XXH64,
        HashAlgoId::XXH3_64bits,
        HashAlgoId::XXH3_128bits,
    ];

    /// The top performer of each family, as plotted in Figure 5.
    pub const FIGURE5: [HashAlgoId; 6] = [
        HashAlgoId::CityHash64,
        HashAlgoId::FarmHash64,
        HashAlgoId::MeowHash,
        HashAlgoId::Rapidhash,
        HashAlgoId::T1ha0_avx2,
        HashAlgoId::XXH3_64bits,
    ];

    /// Table 4 column label.
    pub fn name(self) -> &'static str {
        match self {
            HashAlgoId::CityHash32 => "CityHash32",
            HashAlgoId::CityHash64 => "CityHash64",
            HashAlgoId::CityHash128 => "CityHash128",
            HashAlgoId::CityHashCrc128 => "CityHashCrc128",
            HashAlgoId::FarmHash32 => "FarmHash32",
            HashAlgoId::FarmHash64 => "FarmHash64",
            HashAlgoId::FarmHash128 => "FarmHash128",
            HashAlgoId::MeowHash => "MeowHash",
            HashAlgoId::Rapidhash => "rapidhash",
            HashAlgoId::T1ha0_avx => "t1ha0_avx",
            HashAlgoId::T1ha0_avx2 => "t1ha0_avx2",
            HashAlgoId::T1ha0_noavx => "t1ha0_noavx",
            HashAlgoId::T1ha0_32le => "t1ha0_32le",
            HashAlgoId::T1ha1_le => "t1ha1_le",
            HashAlgoId::T1ha2_atonce => "t1ha2_atonce",
            HashAlgoId::XXH32 => "XXH32",
            HashAlgoId::XXH64 => "XXH64",
            HashAlgoId::XXH3_64bits => "XXH3_64bits",
            HashAlgoId::XXH3_128bits => "XXH3_128bits",
        }
    }

    /// The hash family this function belongs to (§B.1: "6 hash function
    /// families").
    pub fn family(self) -> HashFamily {
        match self {
            HashAlgoId::CityHash32
            | HashAlgoId::CityHash64
            | HashAlgoId::CityHash128
            | HashAlgoId::CityHashCrc128 => HashFamily::City,
            HashAlgoId::FarmHash32 | HashAlgoId::FarmHash64 | HashAlgoId::FarmHash128 => {
                HashFamily::Farm
            }
            HashAlgoId::MeowHash => HashFamily::Meow,
            HashAlgoId::Rapidhash => HashFamily::Wy,
            HashAlgoId::T1ha0_avx
            | HashAlgoId::T1ha0_avx2
            | HashAlgoId::T1ha0_noavx
            | HashAlgoId::T1ha0_32le
            | HashAlgoId::T1ha1_le
            | HashAlgoId::T1ha2_atonce => HashFamily::T1ha,
            HashAlgoId::XXH32
            | HashAlgoId::XXH64
            | HashAlgoId::XXH3_64bits
            | HashAlgoId::XXH3_128bits => HashFamily::Xx,
        }
    }

    /// Hash `data` to a 64-bit digest.
    ///
    /// 128-bit functions fold their two words with a finalizing mix so the
    /// stored digest is still 64 bits (the tool stores one `u64` per
    /// transfer, §7.4).
    #[inline]
    pub fn hash(self, data: &[u8]) -> u64 {
        match self {
            HashAlgoId::CityHash32 => city::city32(data) as u64,
            HashAlgoId::CityHash64 => city::city64(data),
            HashAlgoId::CityHash128 => primitives::fold128(city::city128(data)),
            HashAlgoId::CityHashCrc128 => primitives::fold128(city::city_crc128(data)),
            HashAlgoId::FarmHash32 => farm::farm32(data) as u64,
            HashAlgoId::FarmHash64 => farm::farm64(data),
            HashAlgoId::FarmHash128 => primitives::fold128(farm::farm128(data)),
            HashAlgoId::MeowHash => meow::meow64(data),
            HashAlgoId::Rapidhash => wy::rapidhash(data),
            HashAlgoId::T1ha0_avx => t1ha::t1ha0_lanes::<4>(data),
            HashAlgoId::T1ha0_avx2 => t1ha::t1ha0_lanes::<8>(data),
            HashAlgoId::T1ha0_noavx => t1ha::t1ha0_lanes::<2>(data),
            HashAlgoId::T1ha0_32le => t1ha::t1ha0_32le(data),
            HashAlgoId::T1ha1_le => t1ha::t1ha1_le(data),
            HashAlgoId::T1ha2_atonce => t1ha::t1ha2_atonce(data),
            HashAlgoId::XXH32 => xxh32::xxh32(data, 0) as u64,
            HashAlgoId::XXH64 => xxh64::xxh64(data, 0),
            HashAlgoId::XXH3_64bits => xxh3::xxh3_64(data),
            HashAlgoId::XXH3_128bits => primitives::fold128(xxh3::xxh3_128(data)),
        }
    }

    /// Parse a Table 4 column label.
    pub fn from_name(name: &str) -> Option<HashAlgoId> {
        HashAlgoId::ALL
            .iter()
            .copied()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }

    /// Is this an exact implementation of the reference algorithm (as
    /// opposed to a family-inspired portable variant)?
    pub fn is_exact(self) -> bool {
        matches!(self, HashAlgoId::XXH32 | HashAlgoId::XXH64)
    }

    /// Number of meaningful digest bits. 32-bit functions are widened to
    /// `u64` for storage but only populate the low 32 bits; quality
    /// measurements must account for that.
    pub fn digest_bits(self) -> u32 {
        match self {
            HashAlgoId::CityHash32 | HashAlgoId::FarmHash32 | HashAlgoId::XXH32 => 32,
            _ => 64,
        }
    }
}

impl Default for HashAlgoId {
    /// `t1ha0_avx2`, "the default hash function for OMPDataPerf since it
    /// consistently performed well across all problem sizes" (§B.1).
    fn default() -> Self {
        HashAlgoId::T1ha0_avx2
    }
}

impl fmt::Display for HashAlgoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One of the six evaluated hash families (§B.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HashFamily {
    /// Google CityHash.
    City,
    /// Google FarmHash (CityHash successor).
    Farm,
    /// MeowHash (wide-block, AES-accelerated upstream).
    Meow,
    /// wyhash / rapidhash.
    Wy,
    /// t1ha ("Fast Positive Hash").
    T1ha,
    /// xxHash.
    Xx,
}

impl HashFamily {
    /// Family display name.
    pub fn name(self) -> &'static str {
        match self {
            HashFamily::City => "CityHash",
            HashFamily::Farm => "FarmHash",
            HashFamily::Meow => "MeowHash",
            HashFamily::Wy => "wyhash/rapidhash",
            HashFamily::T1ha => "t1ha",
            HashFamily::Xx => "xxHash",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_functions_as_in_table4() {
        assert_eq!(HashAlgoId::ALL.len(), 19);
        let mut names: Vec<_> = HashAlgoId::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19, "names must be unique");
    }

    #[test]
    fn six_families() {
        let mut fams: Vec<_> = HashAlgoId::ALL.iter().map(|a| a.family()).collect();
        fams.sort_by_key(|f| f.name());
        fams.dedup();
        assert_eq!(fams.len(), 6);
    }

    #[test]
    fn default_is_t1ha0_avx2() {
        assert_eq!(HashAlgoId::default(), HashAlgoId::T1ha0_avx2);
    }

    #[test]
    fn all_functions_are_deterministic_and_mostly_distinct() {
        let data = b"The quick brown fox jumps over the lazy dog";
        for algo in HashAlgoId::ALL {
            assert_eq!(algo.hash(data), algo.hash(data), "{algo} not deterministic");
        }
        // Different algorithms should essentially never agree on a digest.
        let mut digests: Vec<u64> = HashAlgoId::ALL.iter().map(|a| a.hash(data)).collect();
        digests.sort_unstable();
        digests.dedup();
        assert!(
            digests.len() >= 18,
            "suspicious digest collisions across algos"
        );
    }

    #[test]
    fn from_name_round_trips() {
        for algo in HashAlgoId::ALL {
            assert_eq!(HashAlgoId::from_name(algo.name()), Some(algo));
        }
        assert_eq!(HashAlgoId::from_name("nonesuch"), None);
        assert_eq!(HashAlgoId::from_name("xxh64"), Some(HashAlgoId::XXH64));
    }

    #[test]
    fn empty_input_is_handled_by_all() {
        for algo in HashAlgoId::ALL {
            let _ = algo.hash(b"");
        }
    }

    #[test]
    fn figure5_representatives_one_per_family() {
        let mut fams: Vec<_> = HashAlgoId::FIGURE5.iter().map(|a| a.family()).collect();
        fams.sort_by_key(|f| f.name());
        fams.dedup();
        assert_eq!(fams.len(), 6);
    }
}
