//! CityHash-inspired hashes.
//!
//! Follows the structure of Google's CityHash (per-length fast paths below
//! 64 bytes; a rolling 56-byte state for long inputs; the `HashLen16`
//! 128→64 finishing mix) using the published magic constants, but does not
//! claim digest compatibility with the C++ reference.

use crate::primitives::{fmix32, read32, read64, read_tail64};

pub(crate) const K0: u64 = 0xc3a5_c85c_97cb_3127;
pub(crate) const K1: u64 = 0xb492_b66f_be98_f273;
pub(crate) const K2: u64 = 0x9ae1_6a3b_2f90_404f;
const C1_32: u32 = 0xcc9e_2d51;
const C2_32: u32 = 0x1b87_3593;

/// CityHash's `Hash128to64` mix.
#[inline(always)]
pub(crate) fn hash128_to_64(lo: u64, hi: u64) -> u64 {
    const MUL: u64 = 0x9ddf_ea08_eb38_2d69;
    let mut a = (lo ^ hi).wrapping_mul(MUL);
    a ^= a >> 47;
    let mut b = (hi ^ a).wrapping_mul(MUL);
    b ^= b >> 47;
    b.wrapping_mul(MUL)
}

#[inline(always)]
fn hash_len16_mul(u: u64, v: u64, mul: u64) -> u64 {
    let mut a = (u ^ v).wrapping_mul(mul);
    a ^= a >> 47;
    let mut b = (v ^ a).wrapping_mul(mul);
    b ^= b >> 47;
    b.wrapping_mul(mul)
}

#[inline(always)]
fn shift_mix(v: u64) -> u64 {
    v ^ (v >> 47)
}

fn hash_len_0_to_16(data: &[u8]) -> u64 {
    let len = data.len();
    if len >= 8 {
        let mul = K2.wrapping_add((len as u64) * 2);
        let a = read64(data, 0).wrapping_add(K2);
        let b = read64(data, len - 8);
        let c = b.rotate_right(37).wrapping_mul(mul).wrapping_add(a);
        let d = a.rotate_right(25).wrapping_add(b).wrapping_mul(mul);
        return hash_len16_mul(c, d, mul);
    }
    if len >= 4 {
        let mul = K2.wrapping_add((len as u64) * 2);
        let a = read32(data, 0) as u64;
        return hash_len16_mul(
            (len as u64).wrapping_add(a << 3),
            read32(data, len - 4) as u64,
            mul,
        );
    }
    if len > 0 {
        let a = data[0] as u64;
        let b = data[len >> 1] as u64;
        let c = data[len - 1] as u64;
        let y = a.wrapping_add(b << 8);
        let z = (len as u64).wrapping_add(c << 2);
        return shift_mix(y.wrapping_mul(K2) ^ z.wrapping_mul(K0)).wrapping_mul(K2);
    }
    K2
}

fn hash_len_17_to_32(data: &[u8]) -> u64 {
    let len = data.len();
    let mul = K2.wrapping_add((len as u64) * 2);
    let a = read64(data, 0).wrapping_mul(K1);
    let b = read64(data, 8);
    let c = read64(data, len - 8).wrapping_mul(mul);
    let d = read64(data, len - 16).wrapping_mul(K2);
    hash_len16_mul(
        a.wrapping_add(b)
            .rotate_right(43)
            .wrapping_add(c.rotate_right(30))
            .wrapping_add(d),
        a.wrapping_add(b.wrapping_add(K2).rotate_right(18))
            .wrapping_add(c),
        mul,
    )
}

fn hash_len_33_to_64(data: &[u8]) -> u64 {
    let len = data.len();
    let mul = K2.wrapping_add((len as u64) * 2);
    let a = read64(data, 0).wrapping_mul(K2);
    let b = read64(data, 8);
    let c = read64(data, len - 24);
    let d = read64(data, len - 32);
    let e = read64(data, 16).wrapping_mul(K2);
    let f = read64(data, 24).wrapping_mul(9);
    let g = read64(data, len - 8);
    let h = read64(data, len - 16).wrapping_mul(mul);

    let u = a
        .wrapping_add(g)
        .rotate_right(43)
        .wrapping_add(b.rotate_right(30).wrapping_add(c))
        .wrapping_mul(9);
    let v = (a.wrapping_add(g) ^ d).wrapping_add(f).wrapping_add(1);
    let w = ((u.wrapping_add(v)).wrapping_mul(mul))
        .swap_bytes()
        .wrapping_add(h);
    let x = e.wrapping_add(f).rotate_right(42).wrapping_add(c);
    let y = ((v.wrapping_add(w)).wrapping_mul(mul))
        .swap_bytes()
        .wrapping_add(g)
        .wrapping_mul(mul);
    let z = e.wrapping_add(f).wrapping_add(c);
    let a2 = (x.wrapping_add(z))
        .wrapping_mul(mul)
        .wrapping_add(y)
        .wrapping_add(K2);
    shift_mix(a2.wrapping_mul(K2).wrapping_add(z))
        .wrapping_mul(K2)
        .wrapping_add(x)
}

#[inline(always)]
fn weak_hash_len32_with_seeds(
    w: u64,
    x: u64,
    y: u64,
    z: u64,
    mut a: u64,
    mut b: u64,
) -> (u64, u64) {
    a = a.wrapping_add(w);
    b = b.wrapping_add(a).wrapping_add(z).rotate_right(21);
    let c = a;
    a = a.wrapping_add(x).wrapping_add(y);
    b = b.wrapping_add(a.rotate_right(44));
    (a.wrapping_add(z), b.wrapping_add(c))
}

/// CityHash64-inspired hash.
pub fn city64(data: &[u8]) -> u64 {
    let len = data.len();
    if len <= 16 {
        return hash_len_0_to_16(data);
    }
    if len <= 32 {
        return hash_len_17_to_32(data);
    }
    if len <= 64 {
        return hash_len_33_to_64(data);
    }

    // Long input: 64-byte chunks with a 56-byte rolling state.
    let mut x = read64(data, len - 40);
    let mut y = read64(data, len - 16).wrapping_add(read64(data, len - 56));
    let mut z = hash128_to_64(
        read64(data, len - 48).wrapping_add(len as u64),
        read64(data, len - 24),
    );
    let mut v = weak_hash_len32_with_seeds(
        read64(data, len - 64),
        read64(data, len - 56),
        read64(data, len - 48),
        read64(data, len - 40),
        len as u64,
        z,
    );
    let mut w = weak_hash_len32_with_seeds(
        read64(data, len - 32),
        read64(data, len - 24),
        read64(data, len - 16),
        read64(data, len - 8),
        y.wrapping_add(K1),
        x,
    );
    x = x.wrapping_mul(K1).wrapping_add(read64(data, 0));

    let mut i = 0usize;
    let rounds = (len - 1) / 64;
    for _ in 0..rounds {
        x = x
            .wrapping_add(y)
            .wrapping_add(v.0)
            .wrapping_add(read64(data, i + 8))
            .rotate_right(37)
            .wrapping_mul(K1);
        y = y
            .wrapping_add(v.1)
            .wrapping_add(read64(data, i + 48))
            .rotate_right(42)
            .wrapping_mul(K1);
        x ^= w.1;
        y = y.wrapping_add(v.0).wrapping_add(read64(data, i + 40));
        z = z.wrapping_add(w.0).rotate_right(33).wrapping_mul(K1);
        v = weak_hash_len32_with_seeds(
            read64(data, i),
            read64(data, i + 8),
            read64(data, i + 16),
            read64(data, i + 24),
            v.1.wrapping_mul(K1),
            x.wrapping_add(w.0),
        );
        w = weak_hash_len32_with_seeds(
            read64(data, i + 32),
            read64(data, i + 40),
            read64(data, i + 48),
            read64(data, i + 56),
            z.wrapping_add(w.1),
            y.wrapping_add(read64(data, i + 16)),
        );
        std::mem::swap(&mut z, &mut x);
        i += 64;
    }

    hash128_to_64(
        hash128_to_64(v.0, w.0)
            .wrapping_add(shift_mix(y).wrapping_mul(K1))
            .wrapping_add(z),
        hash128_to_64(v.1, w.1).wrapping_add(x),
    )
}

/// CityHash32-inspired hash (32-bit arithmetic, Murmur-style rounds).
pub fn city32(data: &[u8]) -> u32 {
    let len = data.len();
    if len <= 4 {
        let mut b: u32 = 0;
        let mut c: u32 = 9;
        for &byte in data {
            b = b.wrapping_mul(C1_32).wrapping_add(byte as i8 as u32);
            c ^= b;
        }
        return fmix32(
            fmix32(b)
                .wrapping_add(fmix32(len as u32))
                .wrapping_mul(C2_32)
                ^ c,
        );
    }
    if len <= 12 {
        let a = read32(data, 0);
        let b = read32(data, (len >> 1) & !3);
        let c = read32(data, len - 4);
        let h = fmix32(
            a.wrapping_mul(C1_32)
                .wrapping_add(b.rotate_right(17).wrapping_mul(C2_32))
                ^ c.wrapping_add(len as u32),
        );
        return fmix32(h.wrapping_mul(C1_32) ^ b);
    }
    // Bulk: 20-byte rounds over five u32 lanes.
    let mut h = (len as u32).wrapping_mul(C1_32);
    let mut g = C2_32.wrapping_mul(len as u32);
    let mut f = g;
    let mut i = 0usize;
    while i + 20 <= len {
        let a = read32(data, i);
        let b = read32(data, i + 4);
        let c = read32(data, i + 8);
        let d = read32(data, i + 12);
        let e = read32(data, i + 16);
        h = h
            .wrapping_add(a.wrapping_mul(C1_32))
            .rotate_right(19)
            .wrapping_mul(5)
            .wrapping_add(0xe654_6b64);
        g = g.wrapping_add(b).rotate_right(18).wrapping_mul(5) ^ c.wrapping_mul(C2_32);
        f = f
            .wrapping_add(d.rotate_right(13))
            .wrapping_mul(C1_32)
            .wrapping_add(e);
        i += 20;
    }
    // Tail via final 20 bytes (overlapping read).
    let t = &data[len - 20.min(len)..];
    if t.len() >= 20 {
        h ^= read32(t, 0).wrapping_mul(C1_32);
        g ^= read32(t, 8).wrapping_mul(C2_32);
        f ^= read32(t, 16);
    }
    fmix32(
        fmix32(h)
            .wrapping_add(fmix32(g).rotate_right(11))
            .wrapping_mul(C1_32)
            ^ fmix32(f),
    )
}

/// CityHash128-inspired: produce two 64-bit words.
pub fn city128(data: &[u8]) -> u128 {
    let len = data.len();
    let lo = city64(data);
    // Second word: rehash with seeds derived from the first and the two
    // halves, as CityHash128WithSeed does.
    let half = len / 2;
    let hi = hash128_to_64(
        city64(&data[..half]).wrapping_add(K0),
        lo ^ city64(&data[half..]).wrapping_add(K1),
    );
    ((hi as u128) << 64) | lo as u128
}

/// CityHashCrc128-inspired: the CRC-accelerated flavour. We model the CRC
/// lane with a polynomial-free 32-bit folding step (no `unsafe`, no ISA
/// intrinsics) which keeps its distinct throughput character.
pub fn city_crc128(data: &[u8]) -> u128 {
    let len = data.len();
    let mut crc_lane: u64 = K0;
    let mut i = 0usize;
    while i + 8 <= len {
        // crc32c-style folding stand-in: multiply-xor with rotation.
        crc_lane = (crc_lane ^ read64(data, i))
            .wrapping_mul(0x1_0000_0000_0139)
            .rotate_right(17);
        i += 8;
    }
    if i < len {
        crc_lane ^= read_tail64(&data[i..]);
    }
    let base = city64(data);
    let hi = hash128_to_64(crc_lane, base ^ K2);
    ((hi as u128) << 64) | base as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_length_paths_deterministic() {
        for n in [0usize, 3, 4, 8, 12, 16, 17, 32, 33, 64, 65, 200, 1000] {
            let v: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();
            assert_eq!(city64(&v), city64(&v));
            assert_eq!(city32(&v), city32(&v));
            assert_eq!(city128(&v), city128(&v));
            assert_eq!(city_crc128(&v), city_crc128(&v));
        }
    }

    #[test]
    fn distinct_lengths_distinct_digests() {
        let mut hs: Vec<u64> = (0..256usize).map(|n| city64(&vec![0xAB; n])).collect();
        hs.sort_unstable();
        hs.dedup();
        assert_eq!(hs.len(), 256);
    }

    #[test]
    fn long_input_interior_bits_matter() {
        let mut v = vec![0u8; 777];
        let h = city64(&v);
        v[333] ^= 4;
        assert_ne!(h, city64(&v));
    }

    #[test]
    fn hash128_to_64_known_mixing() {
        assert_ne!(hash128_to_64(1, 2), hash128_to_64(2, 1));
        assert_ne!(hash128_to_64(0, 1), 0);
    }

    #[test]
    fn variants_disagree_with_each_other() {
        let v = vec![0x42u8; 512];
        let c64 = city64(&v);
        let c128 = city128(&v);
        let crc = city_crc128(&v);
        assert_ne!(c128, crc);
        assert_ne!((c128 >> 64) as u64, c64);
    }
}
