//! rapidhash/wyhash-style folded-multiply hash.
//!
//! rapidhash is "the official successor to wyhash" (§B.1); both are built
//! around the 64×64→128 multiply-and-fold ("mum") primitive with a small
//! constant schedule. This implementation follows the wyhash-final-4 /
//! rapidhash structure (16-byte fast path, 48-byte unrolled bulk loop)
//! without claiming digest compatibility.

use crate::primitives::{mum, read32, read64, read_tail64};

const S0: u64 = 0x2d35_8dcc_aa6c_78a5;
const S1: u64 = 0x8bb8_4b93_962e_acc9;
const S2: u64 = 0x4b33_a62e_d433_d4a3;
const S3: u64 = 0x4d5a_2da5_1de1_aa47;

/// rapidhash-style hash of `data`.
pub fn rapidhash(data: &[u8]) -> u64 {
    let len = data.len();
    let mut seed = S0 ^ (len as u64).wrapping_mul(S1);

    if len <= 16 {
        if len >= 8 {
            let lo = read64(data, 0);
            let hi = read64(data, len - 8);
            seed = mum(lo ^ S1, hi ^ seed);
        } else if len >= 4 {
            // First and last 4 bytes (overlapping), as wyhash's wyr4 pair.
            let lo = read32(data, 0) as u64;
            let hi = read32(data, len - 4) as u64;
            seed = mum((lo << 32 | hi) ^ S1, seed ^ S2);
        } else if len > 0 {
            // Gather first, middle, last bytes the way wyhash's wyr3 does
            // (for len ≤ 3 these three positions cover every byte).
            let a = data[0] as u64;
            let b = data[len >> 1] as u64;
            let c = data[len - 1] as u64;
            seed = mum((a << 16) | (b << 8) | c, seed ^ S2);
        }
        return mum(seed ^ S3, (len as u64) ^ S1);
    }

    let mut i = 0usize;
    if len >= 48 {
        let mut s1 = seed;
        let mut s2 = seed;
        while i + 48 <= len {
            seed = mum(read64(data, i) ^ S1, read64(data, i + 8) ^ seed);
            s1 = mum(read64(data, i + 16) ^ S2, read64(data, i + 24) ^ s1);
            s2 = mum(read64(data, i + 32) ^ S3, read64(data, i + 40) ^ s2);
            i += 48;
        }
        seed ^= s1 ^ s2;
    }
    while i + 16 <= len {
        seed = mum(read64(data, i) ^ S1, read64(data, i + 8) ^ seed);
        i += 16;
    }
    // Tail: read the final 16 bytes (overlapping reads, as wyhash does).
    if len >= 16 {
        let a = read64(data, len - 16);
        let b = read64(data, len - 8);
        seed = mum(a ^ S2, b ^ seed);
    } else {
        seed = mum(read_tail64(&data[i..]) ^ S2, seed);
    }
    mum(seed ^ S0, (len as u64) ^ S3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let d = b"rapid brown fox";
        assert_eq!(rapidhash(d), rapidhash(d));
    }

    #[test]
    fn path_coverage_lengths() {
        let mut hs: Vec<u64> = (0..200usize).map(|n| rapidhash(&vec![1u8; n])).collect();
        hs.sort_unstable();
        hs.dedup();
        assert_eq!(hs.len(), 200);
    }

    #[test]
    fn small_keys_sensitive_to_every_byte() {
        for len in 1..=16usize {
            let base = vec![0u8; len];
            let h0 = rapidhash(&base);
            for pos in 0..len {
                let mut v = base.clone();
                v[pos] = 1;
                assert_ne!(h0, rapidhash(&v), "len {len} byte {pos} ignored");
            }
        }
    }

    #[test]
    fn bulk_loop_sensitive_to_middle_bytes() {
        let mut v = vec![0u8; 1000];
        let h0 = rapidhash(&v);
        v[500] = 1;
        assert_ne!(h0, rapidhash(&v));
    }
}
