//! FarmHash-inspired hashes.
//!
//! FarmHash is CityHash's successor; its 64-bit bulk path processes wider
//! chunks with fewer data dependencies, which is why it benchmarks ahead of
//! CityHash in Table 4. We model that by an 8-lane 64-byte bulk loop over
//! the City finishing mixes.

use crate::city::{hash128_to_64, K0, K1, K2};
use crate::primitives::{fmix32, fmix64, read32, read64, read_tail64};

/// FarmHash64-inspired hash.
pub fn farm64(data: &[u8]) -> u64 {
    let len = data.len();
    if len <= 64 {
        // Short inputs: reuse the City short paths but with a Farm-marked
        // seed so the two families disagree.
        return fmix64(crate::city::city64(data) ^ K0.rotate_left(23));
    }

    // 64-byte blocks into 4 independent accumulator pairs → fewer serial
    // dependencies than City's rolling state.
    let mut a = [K0, K1, K2, K0 ^ K1];
    let mut b = [!K0, !K1, !K2, K1 ^ K2];
    let mut i = 0usize;
    while i + 64 <= len {
        for lane in 0..4 {
            let x = read64(data, i + lane * 16);
            let y = read64(data, i + lane * 16 + 8);
            a[lane] = a[lane].wrapping_add(x).rotate_right(29).wrapping_mul(K1);
            b[lane] = (b[lane] ^ y).wrapping_mul(K2).rotate_right(31);
        }
        i += 64;
    }
    if i < len {
        // Overlapping final block.
        let base = len - 64;
        for lane in 0..4 {
            let x = read64(data, base + lane * 16);
            let y = read64(data, base + lane * 16 + 8);
            a[lane] ^= x.wrapping_mul(K0);
            b[lane] = b[lane].wrapping_add(y.rotate_left(13));
        }
    }
    let lo = hash128_to_64(
        hash128_to_64(a[0], b[0]),
        hash128_to_64(a[1], b[1]).wrapping_add(len as u64),
    );
    let hi = hash128_to_64(hash128_to_64(a[2], b[2]), hash128_to_64(a[3], b[3]));
    hash128_to_64(lo, hi)
}

/// FarmHash32-inspired hash.
pub fn farm32(data: &[u8]) -> u32 {
    let len = data.len();
    if len <= 24 {
        return fmix32(crate::city::city32(data) ^ 0x9747_b28c);
    }
    let mut h = (len as u32).wrapping_mul(0xcc9e_2d51);
    let mut g = h.rotate_left(9);
    let mut i = 0usize;
    while i + 16 <= len {
        h = (h ^ read32(data, i).wrapping_mul(0xcc9e_2d51))
            .rotate_right(17)
            .wrapping_mul(0x1b87_3593);
        g = (g.wrapping_add(read32(data, i + 4)))
            .rotate_right(19)
            .wrapping_mul(5)
            .wrapping_add(0xe654_6b64);
        h ^= read32(data, i + 8);
        g = g.wrapping_add(read32(data, i + 12).rotate_left(7));
        i += 16;
    }
    let tail_base = len - 4;
    h ^= read32(data, tail_base).wrapping_mul(0x85eb_ca6b);
    fmix32(h.wrapping_add(fmix32(g)))
}

/// FarmHash128-inspired hash.
pub fn farm128(data: &[u8]) -> u128 {
    let lo = farm64(data);
    let hi = if data.len() >= 16 {
        let a = read64(data, 0);
        let b = read64(data, data.len() - 8);
        hash128_to_64(a ^ lo, b.wrapping_add(K1))
    } else {
        fmix64(lo ^ read_tail64(data) ^ K2)
    };
    ((hi as u128) << 64) | lo as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_paths() {
        for n in [0usize, 8, 24, 25, 64, 65, 128, 1000] {
            let v: Vec<u8> = (0..n).map(|i| (i * 7 % 256) as u8).collect();
            assert_eq!(farm64(&v), farm64(&v));
            assert_eq!(farm32(&v), farm32(&v));
            assert_eq!(farm128(&v), farm128(&v));
        }
    }

    #[test]
    fn farm_differs_from_city() {
        let v = vec![0x5Au8; 333];
        assert_ne!(farm64(&v), crate::city::city64(&v));
        assert_ne!(farm32(&v), crate::city::city32(&v));
    }

    #[test]
    fn interior_sensitivity_long() {
        let mut v = vec![0u8; 4096];
        let h = farm64(&v);
        v[2048] = 1;
        assert_ne!(h, farm64(&v));
    }

    #[test]
    fn length_sensitivity() {
        let mut hs: Vec<u64> = (65..300usize).map(|n| farm64(&vec![1u8; n])).collect();
        hs.sort_unstable();
        hs.dedup();
        assert_eq!(hs.len(), 300 - 65);
    }
}
