//! xxHash64 — exact implementation of the reference algorithm.

use crate::primitives::{read32, read64};

const P1: u64 = 11_400_714_785_074_694_791;
const P2: u64 = 14_029_467_366_897_019_727;
const P3: u64 = 1_609_587_929_392_839_161;
const P4: u64 = 9_650_029_242_287_828_579;
const P5: u64 = 2_870_177_450_012_600_261;

#[inline(always)]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline(always)]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

/// Hash `data` with seed `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut i = 0usize;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while i + 32 <= len {
            v1 = round(v1, read64(data, i));
            v2 = round(v2, read64(data, i + 8));
            v3 = round(v3, read64(data, i + 16));
            v4 = round(v4, read64(data, i + 24));
            i += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(P5);
    }

    h = h.wrapping_add(len as u64);

    while i + 8 <= len {
        h = (h ^ round(0, read64(data, i)))
            .rotate_left(27)
            .wrapping_mul(P1)
            .wrapping_add(P4);
        i += 8;
    }
    if i + 4 <= len {
        h = (h ^ (read32(data, i) as u64).wrapping_mul(P1))
            .rotate_left(23)
            .wrapping_mul(P2)
            .wrapping_add(P3);
        i += 4;
    }
    while i < len {
        h = (h ^ (data[i] as u64).wrapping_mul(P5))
            .rotate_left(11)
            .wrapping_mul(P1);
        i += 1;
    }

    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46DB3751D8E999);
        assert_eq!(xxh64(b"abc", 0), 0x44BC2CF5AD770999);
    }

    #[test]
    fn seed_changes_digest() {
        assert_ne!(xxh64(b"payload", 0), xxh64(b"payload", 0xdeadbeef));
    }

    #[test]
    fn length_sensitivity() {
        let inputs: Vec<Vec<u8>> = (0..128usize).map(|n| vec![0x5A; n]).collect();
        let mut hashes: Vec<u64> = inputs.iter().map(|v| xxh64(v, 0)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 128);
    }

    #[test]
    fn single_bit_difference_avalanche_smoke() {
        let a = vec![0u8; 256];
        let mut b = a.clone();
        b[200] ^= 1;
        let (ha, hb) = (xxh64(&a, 0), xxh64(&b, 0));
        let flipped = (ha ^ hb).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "expected roughly half the bits to flip, got {flipped}"
        );
    }
}
