//! Shared little-endian load and mixing primitives for the hash family.

/// Load a little-endian `u32` from `data` at `offset`.
#[inline(always)]
pub fn read32(data: &[u8], offset: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&data[offset..offset + 4]);
    u32::from_le_bytes(buf)
}

/// Load a little-endian `u64` from `data` at `offset`.
#[inline(always)]
pub fn read64(data: &[u8], offset: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&data[offset..offset + 8]);
    u64::from_le_bytes(buf)
}

/// Load up to 8 trailing bytes as a little-endian integer (zero padded).
#[inline(always)]
pub fn read_tail64(data: &[u8]) -> u64 {
    debug_assert!(data.len() <= 8);
    let mut buf = [0u8; 8];
    buf[..data.len()].copy_from_slice(data);
    u64::from_le_bytes(buf)
}

/// 64×64→128 multiply folded by XOR of halves (the wyhash "mum" mixer).
#[inline(always)]
pub fn mum(a: u64, b: u64) -> u64 {
    let r = (a as u128).wrapping_mul(b as u128);
    (r as u64) ^ ((r >> 64) as u64)
}

/// The MurmurHash3/SplitMix64-style finalizer: full 64-bit avalanche.
#[inline(always)]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// MurmurHash3's 32-bit finalizer.
#[inline(always)]
pub fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// Fold a 128-bit digest to 64 bits with an avalanching mix, so 128-bit
/// functions can be stored in the tool's 64-bit hash slot.
#[inline(always)]
pub fn fold128(h: u128) -> u64 {
    let lo = h as u64;
    let hi = (h >> 64) as u64;
    fmix64(lo ^ hi.rotate_left(29).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_tail_pads_with_zeros() {
        assert_eq!(read_tail64(&[1]), 1);
        assert_eq!(read_tail64(&[0, 1]), 0x100);
        assert_eq!(read_tail64(&[]), 0);
        assert_eq!(read_tail64(&[0xff; 8]), u64::MAX);
    }

    #[test]
    fn fmix64_is_bijective_on_samples() {
        // A bijection never maps two inputs to one output; sample a few.
        let mut outs: Vec<u64> = (0..10_000u64).map(fmix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn mum_mixes_both_halves() {
        assert_ne!(mum(1, 0x9E3779B97F4A7C15), mum(2, 0x9E3779B97F4A7C15));
        assert_eq!(mum(0, 0), 0);
    }

    #[test]
    fn fold128_differs_from_halves() {
        let h = 0xdead_beef_0000_0001_u128 << 32;
        let f = fold128(h);
        assert_ne!(f, h as u64);
        assert_ne!(f, (h >> 64) as u64);
    }

    #[test]
    fn read_primitives() {
        let d = [1u8, 0, 0, 0, 2, 0, 0, 0];
        assert_eq!(read32(&d, 0), 1);
        assert_eq!(read32(&d, 4), 2);
        assert_eq!(read64(&d, 0), 0x2_0000_0001);
    }
}
