//! # odp-arbalest — the correctness-checking baseline (§7.7)
//!
//! Arbalest / Arbalest-Vec detect data-mapping *correctness* anomalies in
//! heterogeneous OpenMP programs: use of uninitialized memory (UUM), use
//! of stale data (USD), use after free (UAF), and buffer overflow (BO).
//! The paper compares OMPDataPerf against Arbalest-Vec to argue that
//! correctness reports alone do not surface performance bugs — and that
//! Arbalest's conservative first-touch analysis produces false-positive
//! UUM reports on variables that are only ever *written* inside kernels
//! (Table 2/3: `b[0]`, `spikes[0]`, `walkers_vals[0]`, ...).
//!
//! This reproduction consumes the simulator's OMPT event stream plus the
//! kernel/host access instrumentation feed (modeling Arbalest's binary
//! instrumentation) and applies exactly that conservative rule:
//! *any* kernel access — read or write — to a device buffer that was
//! never initialized by a transfer or an earlier kernel is reported as
//! UUM. Write-only-first-touch variables therefore trigger the same
//! false positives the paper documents.
//!
//! Arbalest-Vec's measured cost is "an average slowdown of 3.5× over
//! native execution" (§8); [`ArbalestReport::NOMINAL_SLOWDOWN`] records
//! that figure for the comparison harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod state;

use odp_hash::fnv::FnvHashMap;
use odp_model::{DeviceId, SimTime};
use odp_ompt::{
    CallbackKind, DataOpCallback, DataOpType, Endpoint, HostAccessInfo, KernelAccessInfo,
    RuntimeCapabilities, Tool, ToolRegistration,
};
use parking_lot::Mutex;
use serde::Serialize;
use state::{HostState, MappingState};
use std::sync::Arc;

/// The anomaly classes Arbalest-Vec reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum AnomalyKind {
    /// Use of uninitialized memory.
    Uum,
    /// Use of stale data.
    Usd,
    /// Use after free.
    Uaf,
    /// Buffer overflow.
    Bo,
}

impl AnomalyKind {
    /// Paper abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            AnomalyKind::Uum => "UUM",
            AnomalyKind::Usd => "USD",
            AnomalyKind::Uaf => "UAF",
            AnomalyKind::Bo => "BO",
        }
    }
}

/// One reported anomaly (deduplicated per `(kind, host_addr)`).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Anomaly {
    /// Anomaly class.
    pub kind: AnomalyKind,
    /// Host address of the offending variable.
    pub host_addr: u64,
    /// Bytes involved.
    pub bytes: u64,
    /// First detection time.
    pub time: SimTime,
    /// Device involved (host for USD).
    pub device: DeviceId,
}

/// Arbalest-Vec's final report.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ArbalestReport {
    /// Unique anomalies, detection order.
    pub anomalies: Vec<Anomaly>,
}

impl ArbalestReport {
    /// "An average slowdown of 3.5× over native execution" (§8).
    pub const NOMINAL_SLOWDOWN: f64 = 3.5;

    /// Anomalies of a given kind.
    pub fn of_kind(&self, kind: AnomalyKind) -> Vec<&Anomaly> {
        self.anomalies.iter().filter(|a| a.kind == kind).collect()
    }

    /// Count per kind.
    pub fn count(&self, kind: AnomalyKind) -> usize {
        self.of_kind(kind).len()
    }

    /// "N/A" when nothing was detected (Table 2's notation).
    pub fn summary(&self) -> String {
        if self.anomalies.is_empty() {
            return "N/A".to_string();
        }
        let mut kinds: Vec<&'static str> = Vec::new();
        for k in [
            AnomalyKind::Uum,
            AnomalyKind::Usd,
            AnomalyKind::Uaf,
            AnomalyKind::Bo,
        ] {
            if self.count(k) > 0 && !kinds.contains(&k.abbrev()) {
                kinds.push(k.abbrev());
            }
        }
        kinds.join(", ")
    }
}

/// Collector state, **keyed by shard**. In the rank-per-thread threaded
/// model every runtime thread drives its own data environment, and two
/// threads' identical host addresses name *different* logical mappings.
/// Before shard keying, one thread's `Delete` silently marked every
/// thread's same-address mapping unmapped — a multi-threaded trace then
/// miscompared as spurious UAF/USD. Fork one tool per runtime thread
/// with [`ArbalestHandle::fork_tool`]; each fork tags its callbacks
/// with its shard id.
#[derive(Default)]
struct Inner {
    mappings: FnvHashMap<(u32, DeviceId, u64), MappingState>,
    hosts: FnvHashMap<(u32, u64), HostState>,
    seen: FnvHashMap<(AnomalyKind, u32, u64), ()>,
    report: ArbalestReport,
    /// Bytes of kernel accesses analyzed — the driver of Arbalest's
    /// instrumentation overhead.
    pub instrumented_bytes: u64,
    /// Shards forked so far (= next shard id).
    shards: u32,
}

impl Inner {
    fn emit(
        &mut self,
        kind: AnomalyKind,
        shard: u32,
        host_addr: u64,
        bytes: u64,
        time: SimTime,
        device: DeviceId,
    ) {
        if self.seen.insert((kind, shard, host_addr), ()).is_none() {
            self.report.anomalies.push(Anomaly {
                kind,
                host_addr,
                bytes,
                time,
                device,
            });
        }
    }
}

/// Handle for extracting the report after the run.
#[derive(Clone)]
pub struct ArbalestHandle {
    shared: Arc<Mutex<Inner>>,
}

impl ArbalestHandle {
    /// The report so far (clone).
    pub fn report(&self) -> ArbalestReport {
        self.shared.lock().report.clone()
    }

    /// Bytes of kernel accesses the instrumentation analyzed.
    pub fn instrumented_bytes(&self) -> u64 {
        self.shared.lock().instrumented_bytes
    }

    /// Fork a tool for one more runtime thread. All forks share this
    /// handle's collector and report, but each keys its mapping/host
    /// state by its own shard id, so one thread's deletes and writes
    /// can never corrupt another thread's (same-address) analysis.
    pub fn fork_tool(&self) -> ArbalestVecTool {
        let mut inner = self.shared.lock();
        let shard = inner.shards;
        inner.shards += 1;
        ArbalestVecTool {
            shared: self.shared.clone(),
            shard,
        }
    }

    /// Shards forked so far.
    pub fn shard_count(&self) -> u32 {
        self.shared.lock().shards
    }
}

/// The Arbalest-Vec tool. Attach to a runtime like any OMPT tool; for a
/// multi-threaded (rank-per-thread) runtime, attach one
/// [`ArbalestHandle::fork_tool`] result per runtime thread.
pub struct ArbalestVecTool {
    shared: Arc<Mutex<Inner>>,
    /// This instance's shard id (keyed into all collector state).
    shard: u32,
}

impl ArbalestVecTool {
    /// Build the first tool (shard 0) and its handle.
    pub fn new() -> (ArbalestVecTool, ArbalestHandle) {
        let shared = Arc::new(Mutex::new(Inner {
            shards: 1,
            ..Inner::default()
        }));
        (
            ArbalestVecTool {
                shared: shared.clone(),
                shard: 0,
            },
            ArbalestHandle { shared },
        )
    }
}

impl Tool for ArbalestVecTool {
    fn initialize(&mut self, caps: &RuntimeCapabilities) -> ToolRegistration {
        ToolRegistration::negotiate(
            &[
                CallbackKind::TargetEmi,
                CallbackKind::TargetDataOpEmi,
                CallbackKind::TargetSubmitEmi,
            ],
            caps,
        )
    }

    fn on_data_op(&mut self, cb: &DataOpCallback<'_>) {
        if cb.endpoint != Endpoint::End {
            return;
        }
        let shard = self.shard;
        let mut inner = self.shared.lock();
        match cb.optype {
            DataOpType::Alloc => {
                inner.mappings.insert(
                    (shard, cb.dest_device, cb.src_addr),
                    MappingState::fresh(cb.bytes),
                );
            }
            DataOpType::Delete => {
                if let Some(m) = inner
                    .mappings
                    .get_mut(&(shard, cb.dest_device, cb.src_addr))
                {
                    m.mapped = false;
                }
            }
            DataOpType::TransferToDevice => {
                let key = (shard, cb.dest_device, cb.src_addr);
                match inner.mappings.get(&key).copied() {
                    Some(m) if m.mapped => {
                        if let Some(entry) = inner.mappings.get_mut(&key) {
                            entry.dev_init = true;
                        }
                    }
                    Some(_) => inner.emit(
                        AnomalyKind::Uaf,
                        shard,
                        cb.src_addr,
                        cb.bytes,
                        cb.time,
                        cb.dest_device,
                    ),
                    None => { /* runtime anomaly; out of scope */ }
                }
            }
            DataOpType::TransferFromDevice => {
                // D2H refreshes the host copy: dest_addr is the host addr.
                let host = inner.hosts.entry((shard, cb.dest_addr)).or_default();
                host.stale = false;
                host.initialized = true;
            }
            _ => {}
        }
    }

    fn on_kernel_access(&mut self, info: &KernelAccessInfo) {
        let shard = self.shard;
        let mut inner = self.shared.lock();
        // First pass: liveness/bounds checks on every accessed range,
        // plus the UUM rule. Plain stores are provably writes; reads and
        // vector-masked stores may consume existing bytes, so touching
        // an uninitialized device buffer through them is flagged — the
        // conservative behaviour that yields the paper's write-only
        // false positives (the mask *could* have left lanes unwritten).
        for (range, may_consume) in info
            .reads
            .iter()
            .map(|r| (r, true))
            .chain(info.masked_writes.iter().map(|r| (r, true)))
            .chain(info.writes.iter().map(|r| (r, false)))
        {
            inner.instrumented_bytes += range.bytes;
            let key = (shard, info.device, range.host_addr);
            match inner.mappings.get(&key).copied() {
                None => {
                    inner.emit(
                        AnomalyKind::Uaf,
                        shard,
                        range.host_addr,
                        range.bytes,
                        info.time,
                        info.device,
                    );
                }
                Some(m) if !m.mapped => {
                    inner.emit(
                        AnomalyKind::Uaf,
                        shard,
                        range.host_addr,
                        range.bytes,
                        info.time,
                        info.device,
                    );
                }
                Some(m) => {
                    if range.bytes > m.bytes {
                        inner.emit(
                            AnomalyKind::Bo,
                            shard,
                            range.host_addr,
                            range.bytes,
                            info.time,
                            info.device,
                        );
                    }
                    if may_consume && !m.dev_init {
                        inner.emit(
                            AnomalyKind::Uum,
                            shard,
                            range.host_addr,
                            range.bytes,
                            info.time,
                            info.device,
                        );
                    }
                }
            }
        }
        // Second pass: apply write effects (masked or not).
        for range in info.writes.iter().chain(info.masked_writes.iter()) {
            let key = (shard, info.device, range.host_addr);
            if let Some(m) = inner.mappings.get_mut(&key) {
                if m.mapped {
                    m.dev_init = true;
                }
            }
            let host = inner.hosts.entry((shard, range.host_addr)).or_default();
            host.stale = true; // device copy is now newer
        }
    }

    fn on_host_access(&mut self, info: &HostAccessInfo) {
        let shard = self.shard;
        let mut inner = self.shared.lock();
        if info.is_write {
            let host = inner.hosts.entry((shard, info.host_addr)).or_default();
            host.initialized = true;
            host.stale = false; // the host copy is authoritative again
        } else {
            let stale = inner
                .hosts
                .get(&(shard, info.host_addr))
                .map(|h| h.stale)
                .unwrap_or(false);
            if stale {
                inner.emit(
                    AnomalyKind::Usd,
                    shard,
                    info.host_addr,
                    info.bytes,
                    info.time,
                    DeviceId::HOST,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_model::{CodePtr, MapType};
    use odp_sim::{map, Kernel, KernelCost, Runtime};

    #[test]
    fn masked_write_only_alloc_var_is_false_positive_uum() {
        // The bspline/mandelbrot pattern: map(alloc:) + kernel writes it
        // through vector-masked stores. Correct code — but Arbalest's
        // conservative rule cannot prove write-only and reports UUM.
        let mut rt = Runtime::with_defaults();
        let (tool, handle) = ArbalestVecTool::new();
        rt.attach_tool(Box::new(tool));
        let out = rt.host_alloc("b", 1024);
        rt.target(
            0,
            CodePtr(0x10),
            &[map(MapType::Alloc, out)],
            Kernel::new("mandelbrot", KernelCost::fixed(100)).masked_writes(&[out]),
        );
        rt.finish();
        let report = handle.report();
        assert_eq!(report.count(AnomalyKind::Uum), 1);
        assert_eq!(report.summary(), "UUM");
    }

    #[test]
    fn plain_write_only_alloc_var_is_clean() {
        // An unmasked store is provably a write: no false positive.
        let mut rt = Runtime::with_defaults();
        let (tool, handle) = ArbalestVecTool::new();
        rt.attach_tool(Box::new(tool));
        let out = rt.host_alloc("dst", 1024);
        rt.target(
            0,
            CodePtr(0x10),
            &[map(MapType::Alloc, out)],
            Kernel::new("resize", KernelCost::fixed(100)).writes(&[out]),
        );
        rt.finish();
        assert_eq!(handle.report().summary(), "N/A");
    }

    #[test]
    fn transferred_data_is_not_uum() {
        let mut rt = Runtime::with_defaults();
        let (tool, handle) = ArbalestVecTool::new();
        rt.attach_tool(Box::new(tool));
        let a = rt.host_alloc("a", 1024);
        rt.target(
            0,
            CodePtr(0x10),
            &[map(MapType::To, a)],
            Kernel::new("k", KernelCost::fixed(100)).reads(&[a]),
        );
        rt.finish();
        assert_eq!(handle.report().summary(), "N/A");
    }

    #[test]
    fn kernel_init_then_read_is_clean() {
        // alloc → kernel plainly writes → second kernel reads: the
        // device copy is initialized by the first kernel, so neither
        // access is flagged.
        let mut rt = Runtime::with_defaults();
        let (tool, handle) = ArbalestVecTool::new();
        rt.attach_tool(Box::new(tool));
        let b = rt.host_alloc("b", 64);
        let region = rt.target_data_begin(0, CodePtr(1), &[map(MapType::Alloc, b)]);
        rt.target(
            0,
            CodePtr(2),
            &[map(MapType::To, b)],
            Kernel::new("init", KernelCost::fixed(10)).writes(&[b]),
        );
        rt.target(
            0,
            CodePtr(3),
            &[map(MapType::To, b)],
            Kernel::new("use", KernelCost::fixed(10)).reads(&[b]),
        );
        rt.target_data_end(region);
        rt.finish();
        let report = handle.report();
        assert_eq!(report.count(AnomalyKind::Uum), 0);
        assert_eq!(report.count(AnomalyKind::Uaf), 0);
    }

    #[test]
    fn read_of_uninitialized_device_buffer_is_true_uum() {
        // A genuine bug: alloc-only mapping read before any write.
        let mut rt = Runtime::with_defaults();
        let (tool, handle) = ArbalestVecTool::new();
        rt.attach_tool(Box::new(tool));
        let b = rt.host_alloc("garbage", 64);
        rt.target(
            0,
            CodePtr(2),
            &[map(MapType::Alloc, b)],
            Kernel::new("consume", KernelCost::fixed(10)).reads(&[b]),
        );
        rt.finish();
        assert_eq!(handle.report().count(AnomalyKind::Uum), 1);
    }

    #[test]
    fn stale_host_read_is_usd() {
        let mut rt = Runtime::with_defaults();
        let (tool, handle) = ArbalestVecTool::new();
        rt.attach_tool(Box::new(tool));
        let a = rt.host_alloc("a", 64);
        rt.host_store(a, 0, &[1u8; 64]);
        // Kernel writes `a` on the device inside a data region; the host
        // then reads `a` before any D2H — stale.
        let region = rt.target_data_begin(0, CodePtr(1), &[map(MapType::To, a)]);
        rt.target(
            0,
            CodePtr(2),
            &[map(MapType::To, a)],
            Kernel::new("update", KernelCost::fixed(10))
                .reads(&[a])
                .writes(&[a]),
        );
        rt.host_load(a); // USD: device copy is newer
        rt.target_data_end(region);
        rt.finish();
        let report = handle.report();
        assert_eq!(report.count(AnomalyKind::Usd), 1);
    }

    #[test]
    fn d2h_clears_staleness() {
        let mut rt = Runtime::with_defaults();
        let (tool, handle) = ArbalestVecTool::new();
        rt.attach_tool(Box::new(tool));
        let a = rt.host_alloc("a", 64);
        rt.host_store(a, 0, &[1u8; 64]);
        rt.target(
            0,
            CodePtr(2),
            &[],
            Kernel::new("update", KernelCost::fixed(10))
                .reads(&[a])
                .writes(&[a]),
        );
        // Implicit tofrom copied the data back at region end.
        rt.host_load(a);
        rt.finish();
        assert_eq!(handle.report().count(AnomalyKind::Usd), 0);
    }

    #[test]
    fn anomalies_deduplicate_per_variable() {
        let mut rt = Runtime::with_defaults();
        let (tool, handle) = ArbalestVecTool::new();
        rt.attach_tool(Box::new(tool));
        let b = rt.host_alloc("b", 64);
        for _ in 0..5 {
            rt.target(
                0,
                CodePtr(1),
                &[map(MapType::Alloc, b)],
                Kernel::new("w", KernelCost::fixed(10)).masked_writes(&[b]),
            );
        }
        rt.finish();
        assert_eq!(
            handle.report().count(AnomalyKind::Uum),
            1,
            "one per variable"
        );
    }

    #[test]
    fn nominal_slowdown_matches_paper() {
        assert!((ArbalestReport::NOMINAL_SLOWDOWN - 3.5).abs() < f64::EPSILON);
    }

    #[test]
    fn cross_shard_delete_does_not_poison_another_shards_mapping() {
        // The miscompare shard keying fixes: in the rank-per-thread
        // model two threads' data environments reuse the same host and
        // device addresses. Thread 0 finishing its region (Delete) must
        // not mark thread 1's same-address mapping unmapped — unkeyed
        // state reported thread 1's subsequent transfer + kernel read
        // as a spurious UAF.
        use odp_model::SimTime;
        use odp_ompt::{DataOpCallback, Endpoint};

        let (mut t0, handle) = ArbalestVecTool::new();
        let mut t1 = handle.fork_tool();
        assert_eq!(handle.shard_count(), 2);
        let op = |optype, bytes| DataOpCallback {
            endpoint: Endpoint::End,
            target_id: 1,
            host_op_id: 1,
            optype,
            src_device: DeviceId::HOST,
            src_addr: 0x1000,
            dest_device: DeviceId::target(0),
            dest_addr: 0xd000,
            bytes,
            codeptr_ra: odp_model::CodePtr(0x42),
            time: SimTime(0),
            payload: None,
        };
        // Both threads map the same (device, host address); thread 0
        // tears its mapping down while thread 1's is still live.
        t0.on_data_op(&op(DataOpType::Alloc, 64));
        t1.on_data_op(&op(DataOpType::Alloc, 64));
        t0.on_data_op(&op(DataOpType::Delete, 64));
        t1.on_data_op(&op(DataOpType::TransferToDevice, 64));
        t1.on_kernel_access(&KernelAccessInfo {
            device: DeviceId::target(0),
            target_id: 2,
            reads: vec![odp_ompt::AccessRange {
                host_addr: 0x1000,
                dev_addr: 0xd000,
                bytes: 64,
            }],
            writes: vec![],
            masked_writes: vec![],
            time: SimTime(10),
        });
        assert_eq!(
            handle.report().summary(),
            "N/A",
            "thread 1's mapping is alive; no UAF may be reported"
        );
    }

    #[test]
    fn threaded_run_scales_anomalies_per_shard() {
        // 4 OS threads each run the masked-write-only false-positive
        // pattern against their own runtime: one UUM per shard, same
        // summary as the single-threaded row.
        let (tool, handle) = ArbalestVecTool::new();
        let mut tools: Vec<Box<dyn odp_ompt::Tool>> = vec![Box::new(tool)];
        for _ in 1..4 {
            tools.push(Box::new(handle.fork_tool()));
        }
        odp_sim::run_on_threads(4, &odp_sim::RuntimeConfig::default(), tools, |_, rt| {
            let out = rt.host_alloc("b", 1024);
            rt.target(
                0,
                CodePtr(0x10),
                &[map(MapType::Alloc, out)],
                Kernel::new("mandelbrot", KernelCost::fixed(100)).masked_writes(&[out]),
            );
        });
        let report = handle.report();
        assert_eq!(report.summary(), "UUM", "same classes as one thread");
        assert_eq!(report.count(AnomalyKind::Uum), 4, "one per shard");
        assert_eq!(report.count(AnomalyKind::Uaf), 0, "no cross-shard poison");
    }
}
