//! Per-variable state tracked by the Arbalest-Vec reproduction.
//!
//! Arbalest's core abstraction is a state machine per mapped variable
//! (the VSA — variable state automaton); this module holds the two state
//! records our rendition needs: the device-side mapping state and the
//! host-side freshness state.

/// State of one variable's mapping on one device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MappingState {
    /// The mapping is live (between alloc and delete).
    pub mapped: bool,
    /// The device copy has been initialized (H2D transfer or a kernel
    /// write).
    pub dev_init: bool,
    /// Mapped size in bytes (for BO checks).
    pub bytes: u64,
}

impl MappingState {
    /// A freshly allocated, uninitialized mapping.
    pub fn fresh(bytes: u64) -> Self {
        MappingState {
            mapped: true,
            dev_init: false,
            bytes,
        }
    }
}

/// Host-side freshness state of one variable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostState {
    /// The host copy has ever been written.
    pub initialized: bool,
    /// The device holds a newer copy than the host (kernel wrote it and
    /// no D2H has happened since).
    pub stale: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_mapping_is_uninitialized() {
        let m = MappingState::fresh(128);
        assert!(m.mapped);
        assert!(!m.dev_init);
        assert_eq!(m.bytes, 128);
    }

    #[test]
    fn host_state_default_is_clean() {
        let h = HostState::default();
        assert!(!h.initialized);
        assert!(!h.stale);
    }
}
