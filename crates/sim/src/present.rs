//! The per-device *present table* (libomptarget's device data
//! environment).
//!
//! Maps a host variable's address range to its device allocation and a
//! reference count. `target data` / `target enter data` increment the
//! count; region exit / `target exit data` decrement it; the allocation
//! is released (and `from`-type data copied back) only when the count
//! reaches zero. This is the mechanism whose misuse produces every
//! inefficiency pattern in §4.

use std::collections::HashMap;

/// One present-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PresentEntry {
    /// Device address of the allocation.
    pub dev_addr: u64,
    /// Size in bytes.
    pub bytes: u64,
    /// Reference count.
    pub refcount: u32,
}

/// The present table for one device, keyed by host base address.
#[derive(Debug, Default)]
pub struct PresentTable {
    entries: HashMap<u64, PresentEntry>,
}

impl PresentTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the entry for `host_addr`.
    pub fn lookup(&self, host_addr: u64) -> Option<&PresentEntry> {
        self.entries.get(&host_addr)
    }

    /// Is `host_addr` present?
    pub fn contains(&self, host_addr: u64) -> bool {
        self.entries.contains_key(&host_addr)
    }

    /// Insert a fresh mapping with refcount 1.
    pub fn insert(&mut self, host_addr: u64, dev_addr: u64, bytes: u64) {
        let prev = self.entries.insert(
            host_addr,
            PresentEntry {
                dev_addr,
                bytes,
                refcount: 1,
            },
        );
        debug_assert!(prev.is_none(), "mapping inserted over a live entry");
    }

    /// Increment the reference count; returns the new count.
    pub fn retain(&mut self, host_addr: u64) -> Option<u32> {
        self.entries.get_mut(&host_addr).map(|e| {
            e.refcount += 1;
            e.refcount
        })
    }

    /// Decrement the reference count. Returns the entry if the count hit
    /// zero (the caller must then copy back / free); `None` otherwise.
    pub fn release(&mut self, host_addr: u64) -> Option<PresentEntry> {
        let e = self.entries.get_mut(&host_addr)?;
        e.refcount = e.refcount.saturating_sub(1);
        if e.refcount == 0 {
            self.entries.remove(&host_addr)
        } else {
            None
        }
    }

    /// Force the reference count to zero (`map(delete: ...)`), removing
    /// and returning the entry.
    pub fn force_remove(&mut self, host_addr: u64) -> Option<PresentEntry> {
        self.entries.remove(&host_addr)
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate live mappings (host addr, entry).
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &PresentEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_regions_refcount() {
        // target data { target { ... } }: the inner region must not free
        // or re-transfer — that is exactly how Listing 1's fix works.
        let mut t = PresentTable::new();
        t.insert(0x1000, 0xd000, 4096);
        assert_eq!(t.retain(0x1000), Some(2));
        assert!(t.release(0x1000).is_none(), "inner exit keeps data");
        let e = t.release(0x1000).expect("outer exit frees");
        assert_eq!(e.dev_addr, 0xd000);
        assert!(t.is_empty());
    }

    #[test]
    fn absent_lookup() {
        let t = PresentTable::new();
        assert!(!t.contains(0x42));
        assert!(t.lookup(0x42).is_none());
    }

    #[test]
    fn retain_absent_returns_none() {
        let mut t = PresentTable::new();
        assert_eq!(t.retain(0x1), None);
        assert!(t.release(0x1).is_none());
    }

    #[test]
    fn force_remove_ignores_refcount() {
        let mut t = PresentTable::new();
        t.insert(0x1000, 0xd000, 64);
        t.retain(0x1000);
        t.retain(0x1000);
        let e = t.force_remove(0x1000).unwrap();
        assert_eq!(e.refcount, 3);
        assert!(t.is_empty());
    }
}
