//! Seeded, deterministic fault injection for the simulated runtime.
//!
//! A production OMPT deployment sees callback streams the tool's
//! authors never anticipated: dropped or duplicated callbacks,
//! truncated transfer payloads, events naming devices that do not
//! exist, transfers that fail and are retried, devices that run out of
//! memory mid-run, and shards that simply stop making progress. The
//! [`FaultPlan`] lets the simulator *manufacture* those streams on
//! demand — deterministically, from a seed — so the detection
//! pipeline's graceful-degradation paths (quarantine accounting,
//! watermark stall recovery, degraded-confidence findings) can be
//! driven and differential-tested instead of hoped about.
//!
//! Wiring: a plan rides in [`crate::RuntimeConfig::faults`]; the
//! runtime consults one [`FaultSession`] (derived per shard by
//! `threads::run_on_threads{,_shared}`) at every callback dispatch,
//! every transfer, and every device allocation. Every injected fault is
//! counted in a [`FaultCounts`] total shared by all clones of the plan,
//! so a test can reconcile *injected* against what the pipeline reports
//! as *quarantined + survived*.
//!
//! The no-op plan (the default) is a single `bool` test on the hot
//! path; the `fault_overhead` bench holds it within 5% of the plain
//! callback fast path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Device-number offset used for corrupt-device faults: far above any
/// configured device count, so the event is out of range everywhere.
pub const CORRUPT_DEVICE_OFFSET: u32 = 0x4000_0000;

/// Per-class fault probabilities, in parts per 65536 per event, plus
/// the two triggered (non-probabilistic) fault classes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Drop the `Begin` edge of a data-op callback (the `End` arrives
    /// orphaned).
    pub drop_begin: u16,
    /// Drop the `End` edge (the event is never recorded and its open
    /// `Begin` pins the shard's watermark).
    pub drop_end: u16,
    /// Deliver the `End` edge twice (the second is an orphan).
    pub duplicate_end: u16,
    /// Truncate a transfer payload below the claimed byte count.
    pub truncate_payload: u16,
    /// Flip bits in a transfer payload (the content hash changes).
    pub corrupt_payload: u16,
    /// Report a device number no configuration contains.
    pub corrupt_device: u16,
    /// Fail a transfer attempt (the runtime retries with backoff).
    pub transfer_fail: u16,
    /// After this many data ops, the shard stalls: every later `End`
    /// edge is dropped, so its watermark never advances again.
    pub stall_after_ops: Option<u64>,
    /// Which shard the stall applies to (`for_shard` keeps the stall
    /// only on this shard).
    pub stall_shard: u32,
    /// Device allocations from this one onward (1-based, counted per
    /// shard) fail as if the device were out of memory.
    pub oom_from_alloc: Option<u64>,
}

impl FaultConfig {
    fn is_noop(&self) -> bool {
        *self == FaultConfig::default()
    }
}

/// Named fault presets for the CLI's `--fault-profile`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultProfile {
    /// No faults (the default plan).
    None,
    /// Dropped/duplicated callback edges and truncated payloads.
    Lossy,
    /// Everything in `Lossy` plus corrupt payloads/devices and failing
    /// transfers.
    Hostile,
    /// One shard stops closing events mid-run (watermark stall).
    Stalled,
    /// A device runs out of memory mid-run.
    Oom,
}

impl FaultProfile {
    /// Parse a `--fault-profile` argument.
    pub fn parse(s: &str) -> Option<FaultProfile> {
        match s {
            "none" => Some(FaultProfile::None),
            "lossy" => Some(FaultProfile::Lossy),
            "hostile" => Some(FaultProfile::Hostile),
            "stalled" => Some(FaultProfile::Stalled),
            "oom" => Some(FaultProfile::Oom),
            _ => None,
        }
    }

    /// The profile names `parse` accepts.
    pub const NAMES: &'static str = "none, lossy, hostile, stalled, oom";

    /// The fault configuration this profile stands for.
    pub fn config(self) -> FaultConfig {
        match self {
            FaultProfile::None => FaultConfig::default(),
            FaultProfile::Lossy => FaultConfig {
                drop_begin: 1000,
                drop_end: 1000,
                duplicate_end: 800,
                truncate_payload: 600,
                ..FaultConfig::default()
            },
            FaultProfile::Hostile => FaultConfig {
                drop_begin: 1000,
                drop_end: 1000,
                duplicate_end: 800,
                truncate_payload: 600,
                corrupt_payload: 600,
                corrupt_device: 400,
                transfer_fail: 1500,
                ..FaultConfig::default()
            },
            FaultProfile::Stalled => FaultConfig {
                stall_after_ops: Some(40),
                ..FaultConfig::default()
            },
            FaultProfile::Oom => FaultConfig {
                oom_from_alloc: Some(4),
                ..FaultConfig::default()
            },
        }
    }
}

/// Running totals of injected faults, shared by every clone of one
/// [`FaultPlan`] (so multi-threaded runs reconcile globally).
#[derive(Debug, Default)]
struct FaultTotals {
    dropped_begin: AtomicU64,
    dropped_end: AtomicU64,
    duplicated_end: AtomicU64,
    truncated: AtomicU64,
    corrupted_payload: AtomicU64,
    corrupted_device: AtomicU64,
    transfer_retries: AtomicU64,
    stalled_drops: AtomicU64,
    oom_failures: AtomicU64,
}

/// A point-in-time snapshot of everything a plan injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Dropped `Begin` edges (each leaves an orphaned `End`).
    pub dropped_begin: u64,
    /// Dropped `End` edges (each event is lost entirely).
    pub dropped_end: u64,
    /// Duplicated `End` edges (each extra copy is an orphan).
    pub duplicated_end: u64,
    /// Truncated transfer payloads.
    pub truncated: u64,
    /// Bit-flipped transfer payloads.
    pub corrupted_payload: u64,
    /// Events stamped with an out-of-range device number.
    pub corrupted_device: u64,
    /// Failed transfer attempts the runtime retried.
    pub transfer_retries: u64,
    /// `End` edges dropped by a stalled shard.
    pub stalled_drops: u64,
    /// Device allocations failed by the OOM trigger.
    pub oom_failures: u64,
}

impl FaultCounts {
    /// Total injected faults of every class.
    pub fn total(&self) -> u64 {
        self.dropped_begin
            + self.dropped_end
            + self.duplicated_end
            + self.truncated
            + self.corrupted_payload
            + self.corrupted_device
            + self.transfer_retries
            + self.stalled_drops
            + self.oom_failures
    }

    /// Events the trace log can never contain: their `End` edge (the
    /// record point) was dropped, either probabilistically or by a
    /// stall.
    pub fn events_lost(&self) -> u64 {
        self.dropped_end + self.stalled_drops
    }

    /// `End` edges delivered with no open `Begin` — what a correct
    /// collector must quarantine as orphans.
    pub fn orphans_injected(&self) -> u64 {
        self.dropped_begin + self.duplicated_end
    }

    /// One-line summary for console output.
    pub fn summary(&self) -> String {
        format!(
            "fault injection: {} fault(s) (begin drops {}, end drops {}, dup ends {}, \
             truncated {}, corrupt payloads {}, corrupt devices {}, transfer retries {}, \
             stall drops {}, oom {})",
            self.total(),
            self.dropped_begin,
            self.dropped_end,
            self.duplicated_end,
            self.truncated,
            self.corrupted_payload,
            self.corrupted_device,
            self.transfer_retries,
            self.stalled_drops,
            self.oom_failures,
        )
    }
}

/// A seeded, deterministic fault-injection plan.
///
/// Cloning a plan (as `RuntimeConfig` cloning does) shares the fault
/// totals; [`FaultPlan::for_shard`] additionally splits the random
/// stream so every shard draws independent, reproducible decisions.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    seed: u64,
    shard: u32,
    enabled: bool,
    totals: Arc<FaultTotals>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The no-fault plan (one disabled-flag test per event).
    pub fn none() -> FaultPlan {
        FaultPlan::new(0, FaultConfig::default())
    }

    /// A plan drawing from `cfg` with the random stream seeded by
    /// `seed`.
    pub fn new(seed: u64, cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            seed,
            shard: 0,
            enabled: !cfg.is_noop(),
            totals: Arc::new(FaultTotals::default()),
        }
    }

    /// A plan for a named profile.
    pub fn from_profile(profile: FaultProfile, seed: u64) -> FaultPlan {
        FaultPlan::new(seed, profile.config())
    }

    /// Does this plan ever inject anything?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The plan's configuration.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Derive the plan shard `shard` consults: an independent random
    /// stream over the same configuration and shared totals. The stall
    /// trigger stays only on `cfg.stall_shard`.
    pub fn for_shard(&self, shard: u32) -> FaultPlan {
        FaultPlan {
            cfg: self.cfg,
            seed: self.seed,
            shard,
            enabled: self.enabled,
            totals: Arc::clone(&self.totals),
        }
    }

    /// Snapshot the injected-fault totals across every clone.
    pub fn counts(&self) -> FaultCounts {
        let t = &*self.totals;
        FaultCounts {
            dropped_begin: t.dropped_begin.load(Ordering::Relaxed),
            dropped_end: t.dropped_end.load(Ordering::Relaxed),
            duplicated_end: t.duplicated_end.load(Ordering::Relaxed),
            truncated: t.truncated.load(Ordering::Relaxed),
            corrupted_payload: t.corrupted_payload.load(Ordering::Relaxed),
            corrupted_device: t.corrupted_device.load(Ordering::Relaxed),
            transfer_retries: t.transfer_retries.load(Ordering::Relaxed),
            stalled_drops: t.stalled_drops.load(Ordering::Relaxed),
            oom_failures: t.oom_failures.load(Ordering::Relaxed),
        }
    }

    /// Start the per-runtime fault session for this plan.
    pub fn session(&self) -> FaultSession {
        // SplitMix64 over (seed, shard) so shards draw disjoint streams.
        let mut z = self
            .seed
            .wrapping_add((self.shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FaultSession {
            plan: self.clone(),
            rng: z ^ (z >> 31),
            ops_seen: 0,
            allocs_seen: 0,
        }
    }
}

/// The single fault (at most one) applied to one data-op callback pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataOpFault {
    /// Deliver both edges untouched.
    Clean,
    /// Suppress the `Begin` edge.
    DropBegin,
    /// Suppress the `End` edge.
    DropEnd,
    /// Deliver the `End` edge twice.
    DuplicateEnd,
    /// Shorten the payload below the claimed byte count.
    TruncatePayload,
    /// Flip bits in the payload.
    CorruptPayload,
    /// Stamp both edges with an out-of-range device number.
    CorruptDevice,
}

/// Per-runtime mutable fault state: the running random stream and the
/// trigger counters. Derived from the plan at runtime construction.
#[derive(Debug)]
pub struct FaultSession {
    plan: FaultPlan,
    rng: u64,
    ops_seen: u64,
    allocs_seen: u64,
}

impl FaultSession {
    /// Is fault injection active at all? (The hot-path guard.)
    #[inline]
    pub fn enabled(&self) -> bool {
        self.plan.enabled
    }

    /// The plan this session draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    #[inline]
    fn next(&mut self) -> u64 {
        // SplitMix64: the same finalizer the kernel default mutation
        // uses; cheap, full-period, and splittable by construction.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decide the fate of the next data-op callback pair. At most one
    /// fault class fires per event (classes are laddered over one
    /// draw), which keeps the injected-vs-quarantined reconciliation
    /// exact. `is_transfer` gates the payload classes.
    pub fn on_data_op(&mut self, is_transfer: bool) -> DataOpFault {
        if !self.plan.enabled {
            return DataOpFault::Clean;
        }
        self.ops_seen += 1;
        let cfg = self.plan.cfg;
        // A stalled shard closes nothing ever again.
        if let Some(after) = cfg.stall_after_ops {
            if self.plan.shard == cfg.stall_shard && self.ops_seen > after {
                Self::bump(&self.plan.totals.stalled_drops);
                return DataOpFault::DropEnd;
            }
        }
        let draw = (self.next() & 0xFFFF) as u16;
        let mut floor = 0u16;
        let mut hit = |p: u16| {
            let lo = floor;
            floor = floor.saturating_add(p);
            p > 0 && draw >= lo && draw < floor
        };
        if hit(cfg.drop_begin) {
            Self::bump(&self.plan.totals.dropped_begin);
            return DataOpFault::DropBegin;
        }
        if hit(cfg.drop_end) {
            Self::bump(&self.plan.totals.dropped_end);
            return DataOpFault::DropEnd;
        }
        if hit(cfg.duplicate_end) {
            Self::bump(&self.plan.totals.duplicated_end);
            return DataOpFault::DuplicateEnd;
        }
        if hit(cfg.corrupt_device) {
            Self::bump(&self.plan.totals.corrupted_device);
            return DataOpFault::CorruptDevice;
        }
        if is_transfer {
            if hit(cfg.truncate_payload) {
                Self::bump(&self.plan.totals.truncated);
                return DataOpFault::TruncatePayload;
            }
            if hit(cfg.corrupt_payload) {
                Self::bump(&self.plan.totals.corrupted_payload);
                return DataOpFault::CorruptPayload;
            }
        }
        DataOpFault::Clean
    }

    /// How many attempts of this transfer fail before one succeeds
    /// (0 = first attempt succeeds). Geometric in `transfer_fail`,
    /// capped so a run always terminates.
    pub fn transfer_failures(&mut self) -> u32 {
        if !self.plan.enabled || self.plan.cfg.transfer_fail == 0 {
            return 0;
        }
        let mut failures = 0;
        while failures < 3 && ((self.next() & 0xFFFF) as u16) < self.plan.cfg.transfer_fail {
            failures += 1;
            Self::bump(&self.plan.totals.transfer_retries);
        }
        failures
    }

    /// Does the next device allocation fail with a simulated OOM?
    pub fn alloc_fails(&mut self) -> bool {
        if !self.plan.enabled {
            return false;
        }
        let Some(from) = self.plan.cfg.oom_from_alloc else {
            return false;
        };
        self.allocs_seen += 1;
        if self.allocs_seen >= from {
            Self::bump(&self.plan.totals.oom_failures);
            true
        } else {
            false
        }
    }
}

/// Corrupt a payload copy in place: flip a deterministic bit derived
/// from the draw state, guaranteed to change the content hash.
pub fn flip_payload_bit(payload: &mut [u8], salt: u64) {
    if payload.is_empty() {
        return;
    }
    let idx = (salt as usize) % payload.len();
    payload[idx] ^= 1 << ((salt >> 32) & 7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disabled_and_free_of_decisions() {
        let plan = FaultPlan::default();
        assert!(!plan.is_enabled());
        let mut s = plan.session();
        for _ in 0..100 {
            assert_eq!(s.on_data_op(true), DataOpFault::Clean);
        }
        assert_eq!(s.transfer_failures(), 0);
        assert!(!s.alloc_fails());
        assert_eq!(plan.counts(), FaultCounts::default());
    }

    #[test]
    fn sessions_are_deterministic_in_seed_and_shard() {
        let plan = FaultPlan::from_profile(FaultProfile::Hostile, 42);
        let a: Vec<_> = {
            let mut s = plan.session();
            (0..256).map(|_| s.on_data_op(true)).collect()
        };
        let b: Vec<_> = {
            let mut s = plan.for_shard(0).session();
            (0..256).map(|_| s.on_data_op(true)).collect()
        };
        assert_eq!(a, b, "same seed + shard → same decisions");
        let c: Vec<_> = {
            let mut s = plan.for_shard(1).session();
            (0..256).map(|_| s.on_data_op(true)).collect()
        };
        assert_ne!(a, c, "different shards draw independent streams");
    }

    #[test]
    fn totals_reconcile_with_decisions() {
        let plan = FaultPlan::from_profile(FaultProfile::Lossy, 7);
        let mut s = plan.session();
        let mut by_class = FaultCounts::default();
        for i in 0..4096 {
            match s.on_data_op(i % 3 != 0) {
                DataOpFault::Clean => {}
                DataOpFault::DropBegin => by_class.dropped_begin += 1,
                DataOpFault::DropEnd => by_class.dropped_end += 1,
                DataOpFault::DuplicateEnd => by_class.duplicated_end += 1,
                DataOpFault::TruncatePayload => by_class.truncated += 1,
                DataOpFault::CorruptPayload => by_class.corrupted_payload += 1,
                DataOpFault::CorruptDevice => by_class.corrupted_device += 1,
            }
        }
        assert!(by_class.total() > 0, "lossy must inject at 4096-op scale");
        assert_eq!(plan.counts(), by_class);
    }

    #[test]
    fn stall_drops_every_end_after_the_trigger() {
        let plan = FaultPlan::new(
            1,
            FaultConfig {
                stall_after_ops: Some(5),
                ..FaultConfig::default()
            },
        );
        let mut s = plan.session();
        for _ in 0..5 {
            assert_eq!(s.on_data_op(true), DataOpFault::Clean);
        }
        for _ in 0..10 {
            assert_eq!(s.on_data_op(true), DataOpFault::DropEnd);
        }
        assert_eq!(plan.counts().stalled_drops, 10);
        // Another shard never stalls.
        let mut other = plan.for_shard(3).session();
        for _ in 0..20 {
            assert_eq!(other.on_data_op(true), DataOpFault::Clean);
        }
    }

    #[test]
    fn oom_trigger_fails_from_the_nth_alloc() {
        let plan = FaultPlan::new(
            1,
            FaultConfig {
                oom_from_alloc: Some(3),
                ..FaultConfig::default()
            },
        );
        let mut s = plan.session();
        assert!(!s.alloc_fails());
        assert!(!s.alloc_fails());
        assert!(s.alloc_fails());
        assert!(s.alloc_fails());
        assert_eq!(plan.counts().oom_failures, 2);
    }

    #[test]
    fn shared_totals_sum_across_shards() {
        let plan = FaultPlan::from_profile(FaultProfile::Lossy, 11);
        let mut a = plan.for_shard(0).session();
        let mut b = plan.for_shard(1).session();
        for _ in 0..2048 {
            a.on_data_op(true);
            b.on_data_op(true);
        }
        assert!(plan.counts().total() > 0);
    }

    #[test]
    fn profile_parsing_round_trips() {
        for (name, p) in [
            ("none", FaultProfile::None),
            ("lossy", FaultProfile::Lossy),
            ("hostile", FaultProfile::Hostile),
            ("stalled", FaultProfile::Stalled),
            ("oom", FaultProfile::Oom),
        ] {
            assert_eq!(FaultProfile::parse(name), Some(p));
        }
        assert_eq!(FaultProfile::parse("bogus"), None);
        assert!(!FaultPlan::from_profile(FaultProfile::None, 9).is_enabled());
        assert!(FaultPlan::from_profile(FaultProfile::Hostile, 9).is_enabled());
    }

    #[test]
    fn payload_bit_flip_changes_content() {
        let mut buf = vec![0u8; 64];
        flip_payload_bit(&mut buf, 0xDEAD_BEEF_1234_5678);
        assert_ne!(buf, vec![0u8; 64]);
    }
}
