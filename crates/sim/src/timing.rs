//! The virtual-time cost model.
//!
//! Calibrated to the paper's testbed shape: an NVIDIA A100-PCIE-40GB
//! behind PCIe gen4 ×16. What matters for the reproduction is the *curve
//! shape* the paper leans on in Figure 5 ("data transfers have higher
//! startup costs and require substantially larger data volumes to achieve
//! peak throughput") and in the prediction experiments (savings are sums
//! of event durations produced by this model).

use odp_model::SimDuration;
use serde::{Deserialize, Serialize};

/// Host↔device transfer cost: `latency + bytes / bandwidth`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TransferModel {
    /// Fixed per-transfer startup latency, ns (driver + DMA setup).
    pub latency_ns: u64,
    /// Steady-state bandwidth in bytes per nanosecond (= GB/s decimal).
    pub bytes_per_ns: f64,
}

impl TransferModel {
    /// PCIe gen4 ×16 effective host→device (~21 GB/s, ~9 µs setup).
    pub fn pcie_gen4_h2d() -> Self {
        TransferModel {
            latency_ns: 9_000,
            bytes_per_ns: 21.0,
        }
    }

    /// PCIe gen4 ×16 effective device→host (~19 GB/s, ~10 µs setup).
    pub fn pcie_gen4_d2h() -> Self {
        TransferModel {
            latency_ns: 10_000,
            bytes_per_ns: 19.0,
        }
    }

    /// Duration of a transfer of `bytes`.
    pub fn duration(&self, bytes: u64) -> SimDuration {
        let flight = (bytes as f64 / self.bytes_per_ns).round() as u64;
        SimDuration(self.latency_ns + flight)
    }

    /// Effective throughput in GB/s for a transfer of `bytes` (used for
    /// Figure 5's "Data Transfer" series).
    pub fn effective_gb_per_s(&self, bytes: u64) -> f64 {
        let d = self.duration(bytes).as_nanos();
        if d == 0 {
            return 0.0;
        }
        bytes as f64 / d as f64
    }
}

/// Device allocation/deallocation cost.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AllocModel {
    /// Fixed cost of an allocation, ns (cuMemAlloc-like).
    pub alloc_base_ns: u64,
    /// Additional cost per MiB allocated, ns.
    pub alloc_per_mib_ns: u64,
    /// Fixed cost of a free, ns.
    pub free_base_ns: u64,
}

impl AllocModel {
    /// CUDA-like defaults.
    pub fn cuda_like() -> Self {
        AllocModel {
            alloc_base_ns: 8_000,
            alloc_per_mib_ns: 350,
            free_base_ns: 4_000,
        }
    }

    /// Duration of an allocation of `bytes`.
    pub fn alloc_duration(&self, bytes: u64) -> SimDuration {
        SimDuration(self.alloc_base_ns + (bytes >> 20) * self.alloc_per_mib_ns)
    }

    /// Duration of a free.
    pub fn free_duration(&self) -> SimDuration {
        SimDuration(self.free_base_ns)
    }
}

/// The full per-device timing model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TimingModel {
    /// Host→device transfers.
    pub h2d: TransferModel,
    /// Device→host transfers.
    pub d2h: TransferModel,
    /// Allocation/free costs.
    pub alloc: AllocModel,
    /// Fixed kernel-launch overhead, ns.
    pub kernel_launch_ns: u64,
    /// Host-side time to reach and enter a directive's runtime call, ns.
    /// Nonzero so consecutive events never share exact timestamps (real
    /// traces never tie; Algorithms 4/5 compare interval endpoints).
    pub host_dispatch_ns: u64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            h2d: TransferModel::pcie_gen4_h2d(),
            d2h: TransferModel::pcie_gen4_d2h(),
            alloc: AllocModel::cuda_like(),
            kernel_launch_ns: 6_000,
            host_dispatch_ns: 300,
        }
    }
}

impl TimingModel {
    /// Transfer duration for the given direction.
    pub fn transfer_duration(&self, bytes: u64, to_device: bool) -> SimDuration {
        if to_device {
            self.h2d.duration(bytes)
        } else {
            self.d2h.duration(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_transfers() {
        let m = TransferModel::pcie_gen4_h2d();
        let tiny = m.duration(64);
        let big = m.duration(1 << 30);
        assert!(tiny.as_nanos() >= m.latency_ns);
        assert!(tiny.as_nanos() < m.latency_ns + 100);
        // 1 GiB at 21 B/ns ≈ 51 ms ≫ latency.
        assert!(big.as_nanos() > 50_000_000);
    }

    #[test]
    fn effective_throughput_rises_with_size() {
        // The Figure-5 shape: small transfers are latency-bound, large
        // ones approach the asymptotic bandwidth.
        let m = TransferModel::pcie_gen4_h2d();
        let small = m.effective_gb_per_s(64);
        let mid = m.effective_gb_per_s(1 << 20);
        let large = m.effective_gb_per_s(1 << 28);
        assert!(small < 0.01, "64 B is startup-dominated: {small}");
        assert!(mid > 1.0);
        assert!(large > 20.0 && large <= 21.0);
        assert!(small < mid && mid < large);
    }

    #[test]
    fn alloc_scales_with_size() {
        let a = AllocModel::cuda_like();
        assert!(a.alloc_duration(64) < a.alloc_duration(64 << 20));
        assert_eq!(a.free_duration(), SimDuration(4_000));
    }

    #[test]
    fn directionality() {
        let t = TimingModel::default();
        // H2D slightly faster than D2H on this link, as configured.
        assert!(t.transfer_duration(1 << 24, true) < t.transfer_duration(1 << 24, false));
    }
}
