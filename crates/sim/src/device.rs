//! Shared, internally-synchronized per-device state.
//!
//! A real `libomptarget` keeps **one** device data environment per
//! device, shared by every host thread: two threads mapping the same
//! host range contend on the same present-table entry, and a mapping
//! one thread left resident is reused — not re-allocated — by the
//! next thread that maps it. Until this module, the simulator's
//! threaded mode gave every OS thread its own private device state
//! (the rank-per-thread shape), which made cross-thread present-table
//! reuse invisible to both the detectors and the remediator.
//!
//! [`SharedDevices`] is the fix: the full per-device state — memory
//! space, present table, async-queue busy horizon, and the advisor's
//! phantom-reference marks — lives behind one mutex per device.
//! A [`crate::Runtime`] always talks to its devices through this
//! handle; [`crate::Runtime::new`] creates a private (uncontended)
//! set, and [`crate::Runtime::with_shared_devices`] attaches a runtime
//! to a set other runtimes share. Directive execution locks a device
//! once per map-clause item (and across a kernel's buffer gather /
//! execute / write-back), so refcount updates, phantom-reference
//! adoption, and allocator traffic are atomic with respect to every
//! other thread — the soundness guards of the single-threaded advisor
//! path hold unchanged under contention.
//!
//! One hazard is the *program's*, not the lock's, exactly as in
//! `libomptarget`: `map(delete:)` forces a mapping out regardless of
//! other threads' reference counts, so a thread deleting a range that
//! another thread's directive is concurrently using (e.g. between its
//! region entry and its kernel launch) is a data race in the simulated
//! program. The simulator panics on the dangling lookup with an
//! explicit message rather than computing on freed memory.
//!
//! Single-runtime behaviour is bit-for-bit identical to the previous
//! private-state implementation: the locks are uncontended and no
//! decision logic moved.

use crate::config::RuntimeConfig;
use crate::memory::DeviceMemory;
use crate::present::PresentTable;
use odp_model::SimTime;
use odp_ompt::AdviceCause;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::Arc;

/// One device's complete mutable state. Only ever touched through a
/// [`SharedDevices`] lock.
pub(crate) struct DeviceState {
    /// Device memory space (allocator + real buffers).
    pub(crate) mem: DeviceMemory,
    /// The reference-counted present table (`libomptarget`'s device
    /// data environment).
    pub(crate) present: PresentTable,
    /// Device busy executing asynchronously launched kernels until this
    /// time (OpenMP 5.1 `nowait` support, paper §7.8). Shared: the
    /// device has one queue, whichever thread enqueues.
    pub(crate) busy_until: SimTime,
    /// Host addresses whose mappings are alive only because a
    /// remediation rewrite skipped their release, with the advising
    /// cause. Shared so a re-entry from *any* thread adopts the
    /// phantom reference exactly once.
    pub(crate) retained: HashMap<u64, AdviceCause>,
}

impl DeviceState {
    fn new(index: u32, capacity: u64) -> DeviceState {
        DeviceState {
            mem: DeviceMemory::new(index, capacity),
            present: PresentTable::new(),
            busy_until: SimTime::ZERO,
            retained: HashMap::new(),
        }
    }
}

/// Handle to a set of devices whose state may be shared by several
/// [`crate::Runtime`] instances (one per OS thread). Cloning the handle
/// shares the devices; [`SharedDevices::new`] creates a fresh set.
#[derive(Clone)]
pub struct SharedDevices {
    devices: Arc<Vec<Mutex<DeviceState>>>,
}

impl SharedDevices {
    /// A fresh device set for `cfg` (`cfg.num_devices` devices of
    /// `cfg.device_memory_bytes` each).
    pub fn new(cfg: &RuntimeConfig) -> SharedDevices {
        SharedDevices {
            devices: Arc::new(
                (0..cfg.num_devices)
                    .map(|i| Mutex::new(DeviceState::new(i, cfg.device_memory_bytes)))
                    .collect(),
            ),
        }
    }

    /// Number of devices in the set.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Lock one device's state. `parking_lot` mutex: no poisoning, so a
    /// panicking directive on one thread propagates as itself instead
    /// of masking the root cause behind sibling "poisoned" panics.
    pub(crate) fn lock(&self, device: u32) -> MutexGuard<'_, DeviceState> {
        self.devices[device as usize].lock()
    }

    /// Live present-table mappings on `device`.
    pub fn present_mappings(&self, device: u32) -> usize {
        self.lock(device).present.len()
    }

    /// Peak device memory in use on `device`.
    pub fn peak_bytes(&self, device: u32) -> u64 {
        self.lock(device).mem.peak_in_use()
    }

    /// Bytes currently allocated on `device`.
    pub fn bytes_in_use(&self, device: u32) -> u64 {
        self.lock(device).mem.in_use()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sets_are_independent_clones_are_shared() {
        let cfg = RuntimeConfig::default().with_devices(2);
        let a = SharedDevices::new(&cfg);
        let b = SharedDevices::new(&cfg);
        let a2 = a.clone();
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        a.lock(0).present.insert(0x1000, 0xd000, 64);
        assert_eq!(a.present_mappings(0), 1);
        assert_eq!(a2.present_mappings(0), 1, "clone shares state");
        assert_eq!(b.present_mappings(0), 0, "fresh set does not");
        assert_eq!(a.present_mappings(1), 0, "devices stay separate");
    }

    #[test]
    fn cross_thread_visibility() {
        let devices = SharedDevices::new(&RuntimeConfig::default());
        let d = devices.clone();
        std::thread::spawn(move || {
            d.lock(0).present.insert(0x2000, 0xd100, 128);
        })
        .join()
        .unwrap();
        assert!(devices.lock(0).present.contains(0x2000));
    }
}
