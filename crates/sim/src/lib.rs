//! # odp-sim — the OpenMP offload runtime simulator
//!
//! Rust has no OpenMP offload runtime, so this crate *is* the substrate
//! the paper's tool attaches to (see DESIGN.md §1). It reproduces the
//! pieces of LLVM's `libomp`/`libomptarget` that OMPT-visible behaviour
//! depends on:
//!
//! * a host memory space holding real byte buffers for mapped variables;
//! * N target devices, each with its own memory space, a first-fit
//!   allocator that **reuses freed addresses** (required for the paper's
//!   discussion of Algorithm 3's false-positive mitigation), and a
//!   reference-counted **present table** implementing `map` clause
//!   semantics exactly as `libomptarget` does;
//! * the `target`, `target data`, `target enter/exit data` and
//!   `target update` directives, including the implicit data-mapping
//!   rules for variables referenced by a kernel but not explicitly
//!   mapped;
//! * kernels that execute *real* compute against device buffers (so
//!   content hashes evolve honestly) while a calibrated timing model
//!   advances a deterministic virtual clock;
//! * OMPT EMI callback dispatch (begin/end pairs) to attached tools,
//!   honoring the configured compiler capability profile, with graceful
//!   degradation to the deprecated non-EMI callbacks.
//!
//! A single [`Runtime`] instance is single-threaded and fully
//! deterministic (the detection algorithms need chronologically ordered
//! logs, and the prediction-accuracy experiment needs reproducible
//! timings). Multi-threaded callback emission — the shape a real
//! runtime presents to an OMPT tool — comes from [`threads`], in two
//! flavors: [`threads::run_on_threads`] gives every OS thread its own
//! runtime *and devices* (rank-per-thread; merged observation stays
//! reproducible while the callback interleaving is genuinely
//! concurrent), and [`threads::run_on_threads_shared`] attaches all
//! threads to **one** [`SharedDevices`] set — `libomptarget`'s real
//! shape, where threads contend on the same per-device present tables
//! and cross-thread mapping reuse is visible to tools and advisors.
//!
//! Beyond observation, the runtime accepts an
//! [`odp_ompt::MapAdvisor`] ([`Runtime::attach_advisor`]): a live
//! analysis can rewrite inefficient map clauses mid-run — skip
//! provably redundant copies, keep mappings resident across regions,
//! elide never-used allocations — with every applied rewrite and its
//! recovered bytes/time accounted per finding kind and device
//! ([`Runtime::remediation_stats`]). Without an advisor, directive
//! execution is bit-for-bit identical to the unremediated runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod alloc;
pub mod config;
pub mod device;
pub mod faults;
pub mod kernel;
pub mod memory;
pub mod present;
pub mod runtime;
pub mod threads;
pub mod timing;

pub use config::RuntimeConfig;
pub use device::SharedDevices;
pub use faults::{FaultConfig, FaultCounts, FaultPlan, FaultProfile, FaultSession};
pub use kernel::{DeviceView, Kernel, KernelCost};
pub use memory::VarId;
pub use present::PresentTable;
pub use runtime::{Map, Runtime, RuntimeStats, RuntimeWarning};
pub use threads::{merged_stats, run_on_threads, run_on_threads_shared, SharedThreadOutcome};
pub use timing::{AllocModel, TimingModel, TransferModel};

use odp_model::{MapModifier, MapType};

/// Convenience constructor for a map clause item.
pub fn map(map_type: MapType, var: VarId) -> Map {
    Map {
        var,
        map_type,
        modifier: MapModifier::NONE,
    }
}

/// Convenience constructor for `map(always, <type>: var)`.
pub fn map_always(map_type: MapType, var: VarId) -> Map {
    Map {
        var,
        map_type,
        modifier: MapModifier::ALWAYS,
    }
}
