//! Host and device memory spaces holding real bytes.
//!
//! Host variables are `Vec<u8>` buffers with stable synthetic virtual
//! addresses; device allocations are `Vec<u8>` buffers at addresses handed
//! out by the per-device [`crate::alloc::FreeListAllocator`]. Transfers
//! `memcpy` between them, which is what makes content hashing — and hence
//! the duplicate/round-trip detectors — honest rather than modeled.

use crate::alloc::FreeListAllocator;
use std::collections::HashMap;

/// Handle to a host variable (a mapped array or scalar).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// A named host buffer.
#[derive(Debug)]
pub struct HostVar {
    /// Variable name (for reports and debug info).
    pub name: String,
    /// Synthetic host virtual address.
    pub addr: u64,
    /// The actual bytes.
    pub data: Vec<u8>,
}

/// The host memory space.
#[derive(Debug, Default)]
pub struct HostMemory {
    vars: Vec<HostVar>,
    next_addr: u64,
}

/// Base of the synthetic host heap (stack/heap-looking addresses).
const HOST_BASE: u64 = 0x7f40_0000_0000;

impl HostMemory {
    /// Empty host memory.
    pub fn new() -> Self {
        HostMemory {
            vars: Vec::new(),
            next_addr: HOST_BASE,
        }
    }

    /// Allocate a zero-initialized host variable of `bytes`.
    pub fn alloc(&mut self, name: &str, bytes: usize) -> VarId {
        let addr = self.next_addr;
        // 64-byte-aligned, cache-line style.
        self.next_addr += ((bytes as u64).max(1) + 63) & !63;
        let id = VarId(self.vars.len() as u32);
        self.vars.push(HostVar {
            name: name.to_string(),
            addr,
            data: vec![0u8; bytes],
        });
        id
    }

    /// The variable's metadata.
    pub fn var(&self, id: VarId) -> &HostVar {
        &self.vars[id.0 as usize]
    }

    /// Mutable access to the variable's bytes.
    pub fn bytes_mut(&mut self, id: VarId) -> &mut [u8] {
        &mut self.vars[id.0 as usize].data
    }

    /// Shared access to the variable's bytes.
    pub fn bytes(&self, id: VarId) -> &[u8] {
        &self.vars[id.0 as usize].data
    }

    /// Host address of the variable.
    pub fn addr(&self, id: VarId) -> u64 {
        self.vars[id.0 as usize].addr
    }

    /// Size of the variable in bytes.
    pub fn size(&self, id: VarId) -> u64 {
        self.vars[id.0 as usize].data.len() as u64
    }

    /// Look a variable up by its host address.
    pub fn by_addr(&self, addr: u64) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.addr == addr)
            .map(|i| VarId(i as u32))
    }

    /// Look a variable up by name (first match).
    pub fn by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Number of live variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Is the space empty?
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

/// One device's memory space.
#[derive(Debug)]
pub struct DeviceMemory {
    allocator: FreeListAllocator,
    buffers: HashMap<u64, Vec<u8>>,
}

/// Device address-space stride: device *n* owns `[DEV_BASE + n·2^40, …)`.
const DEV_BASE: u64 = 0xd000_0000_0000;
const DEV_STRIDE: u64 = 1 << 40;

impl DeviceMemory {
    /// Memory for target device `index` with `capacity` bytes (e.g. 40 GB
    /// for an A100-40GB).
    pub fn new(index: u32, capacity: u64) -> Self {
        DeviceMemory {
            allocator: FreeListAllocator::new(DEV_BASE + index as u64 * DEV_STRIDE, capacity),
            buffers: HashMap::new(),
        }
    }

    /// Allocate `bytes`, returning the device address.
    pub fn alloc(&mut self, bytes: u64) -> Option<u64> {
        let addr = self.allocator.alloc(bytes)?;
        self.buffers.insert(addr, vec![0u8; bytes as usize]);
        Some(addr)
    }

    /// Free the allocation at `addr`.
    pub fn free(&mut self, addr: u64) -> bool {
        if self.allocator.free(addr).is_some() {
            self.buffers.remove(&addr);
            true
        } else {
            false
        }
    }

    /// Buffer at `addr`.
    pub fn bytes(&self, addr: u64) -> Option<&[u8]> {
        self.buffers.get(&addr).map(|v| v.as_slice())
    }

    /// Mutable buffer at `addr`.
    pub fn bytes_mut(&mut self, addr: u64) -> Option<&mut Vec<u8>> {
        self.buffers.get_mut(&addr)
    }

    /// Bytes currently allocated on this device.
    pub fn in_use(&self) -> u64 {
        self.allocator.in_use()
    }

    /// Peak bytes allocated on this device.
    pub fn peak_in_use(&self) -> u64 {
        self.allocator.peak_in_use()
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.allocator.live_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_vars_have_distinct_stable_addresses() {
        let mut h = HostMemory::new();
        let a = h.alloc("a", 100);
        let b = h.alloc("b", 100);
        assert_ne!(h.addr(a), h.addr(b));
        assert_eq!(h.by_addr(h.addr(a)), Some(a));
        assert_eq!(h.var(a).name, "a");
        assert_eq!(h.size(a), 100);
    }

    #[test]
    fn host_bytes_are_real() {
        let mut h = HostMemory::new();
        let a = h.alloc("a", 8);
        h.bytes_mut(a).copy_from_slice(&42u64.to_le_bytes());
        assert_eq!(u64::from_le_bytes(h.bytes(a).try_into().unwrap()), 42);
    }

    #[test]
    fn device_spaces_do_not_collide() {
        let mut d0 = DeviceMemory::new(0, 1 << 20);
        let mut d1 = DeviceMemory::new(1, 1 << 20);
        let p0 = d0.alloc(64).unwrap();
        let p1 = d1.alloc(64).unwrap();
        assert_ne!(p0, p1);
        assert!(p1 > p0);
    }

    #[test]
    fn device_buffer_lifecycle() {
        let mut d = DeviceMemory::new(0, 1 << 20);
        let p = d.alloc(16).unwrap();
        d.bytes_mut(p).unwrap()[0] = 7;
        assert_eq!(d.bytes(p).unwrap()[0], 7);
        assert!(d.free(p));
        assert!(d.bytes(p).is_none());
        assert!(!d.free(p), "double free rejected");
    }

    #[test]
    fn zero_sized_vars_work() {
        let mut h = HostMemory::new();
        let a = h.alloc("empty", 0);
        let b = h.alloc("next", 8);
        assert_ne!(h.addr(a), h.addr(b));
        assert_eq!(h.size(a), 0);
    }
}
