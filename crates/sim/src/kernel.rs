//! Kernel specifications and the device-side view kernels execute
//! against.
//!
//! Kernels serve two purposes in the reproduction. (1) Their submit
//! begin/end events are the `target_events` input of Algorithms 4/5.
//! (2) Their *bodies* run real compute against device buffers, so the
//! content of mapped data evolves the way it would on a GPU — a written
//! array's hash changes, an untouched array's does not — which is what
//! the duplicate/round-trip detectors key on.

use crate::memory::VarId;
use odp_model::SimDuration;

/// Infallible fixed-width copies for the typed accessors (`chunks_exact`
/// guarantees the width).
#[inline]
pub(crate) fn le4(c: &[u8]) -> [u8; 4] {
    let mut b = [0u8; 4];
    b.copy_from_slice(c);
    b
}

/// See [`le4`].
#[inline]
pub(crate) fn le8(c: &[u8]) -> [u8; 8] {
    let mut b = [0u8; 8];
    b.copy_from_slice(c);
    b
}

/// Cost model for one kernel launch.
#[derive(Clone, Copy, Debug)]
pub struct KernelCost {
    /// Fixed execution time, ns.
    pub fixed_ns: u64,
    /// Work items (threads × iterations) — scaled by `ns_per_item`.
    pub work_items: u64,
    /// Per-work-item cost in ns (fractional; GPUs retire many per ns).
    pub ns_per_item: f64,
}

impl KernelCost {
    /// A fixed-duration kernel.
    pub fn fixed(ns: u64) -> Self {
        KernelCost {
            fixed_ns: ns,
            work_items: 0,
            ns_per_item: 0.0,
        }
    }

    /// A kernel whose duration scales with its work-item count.
    ///
    /// `ns_per_item` defaults to 0.01 ns/item (≈ 10^11 lightweight items/s,
    /// an A100-like throughput for memory-light loops) via
    /// [`KernelCost::scaled`].
    pub fn items(work_items: u64, ns_per_item: f64) -> Self {
        KernelCost {
            fixed_ns: 0,
            work_items,
            ns_per_item,
        }
    }

    /// `items` with the default A100-like per-item cost.
    pub fn scaled(work_items: u64) -> Self {
        Self::items(work_items, 0.01)
    }

    /// Total execution duration (excluding launch overhead, which the
    /// runtime's timing model adds).
    pub fn duration(&self) -> SimDuration {
        SimDuration(self.fixed_ns + (self.work_items as f64 * self.ns_per_item).round() as u64)
    }
}

/// A device-side view over the buffers of the variables a kernel may
/// access. Handed to kernel bodies.
pub struct DeviceView<'a> {
    pub(crate) vars: Vec<(VarId, &'a mut Vec<u8>)>,
}

impl<'a> DeviceView<'a> {
    /// Raw bytes of `var`'s device buffer.
    pub fn bytes(&self, var: VarId) -> &[u8] {
        self.vars
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, b)| b.as_slice())
            .unwrap_or_else(|| panic!("kernel accessed unmapped var {var:?}"))
    }

    /// Mutable raw bytes of `var`'s device buffer.
    pub fn bytes_mut(&mut self, var: VarId) -> &mut Vec<u8> {
        self.vars
            .iter_mut()
            .find(|(v, _)| *v == var)
            .map(|(_, b)| &mut **b)
            .unwrap_or_else(|| panic!("kernel accessed unmapped var {var:?}"))
    }

    /// Read the buffer as `f64`s (copy).
    pub fn read_f64(&self, var: VarId) -> Vec<f64> {
        self.bytes(var)
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(le8(c)))
            .collect()
    }

    /// Overwrite the buffer from `f64`s.
    pub fn write_f64(&mut self, var: VarId, values: &[f64]) {
        let buf = self.bytes_mut(var);
        assert_eq!(buf.len(), values.len() * 8, "size mismatch writing f64s");
        for (chunk, v) in buf.chunks_exact_mut(8).zip(values) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read the buffer as `f32`s (copy).
    pub fn read_f32(&self, var: VarId) -> Vec<f32> {
        self.bytes(var)
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(le4(c)))
            .collect()
    }

    /// Overwrite the buffer from `f32`s.
    pub fn write_f32(&mut self, var: VarId, values: &[f32]) {
        let buf = self.bytes_mut(var);
        assert_eq!(buf.len(), values.len() * 4, "size mismatch writing f32s");
        for (chunk, v) in buf.chunks_exact_mut(4).zip(values) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read the buffer as `u32`s (copy).
    pub fn read_u32(&self, var: VarId) -> Vec<u32> {
        self.bytes(var)
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(le4(c)))
            .collect()
    }

    /// Overwrite the buffer from `u32`s.
    pub fn write_u32(&mut self, var: VarId, values: &[u32]) {
        let buf = self.bytes_mut(var);
        assert_eq!(buf.len(), values.len() * 4, "size mismatch writing u32s");
        for (chunk, v) in buf.chunks_exact_mut(4).zip(values) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read a single little-endian `u32` scalar (index in u32 units).
    pub fn scalar_u32(&self, var: VarId, index: usize) -> u32 {
        let b = self.bytes(var);
        u32::from_le_bytes(le4(&b[index * 4..index * 4 + 4]))
    }

    /// Write a single `u32` scalar.
    pub fn set_scalar_u32(&mut self, var: VarId, index: usize, value: u32) {
        let b = self.bytes_mut(var);
        b[index * 4..index * 4 + 4].copy_from_slice(&value.to_le_bytes());
    }
}

/// The kernel body type: real compute against device buffers.
pub type KernelBody<'a> = &'a mut dyn FnMut(&mut DeviceView<'_>);

/// Specification of one kernel launch.
pub struct Kernel<'a> {
    /// Kernel name (reports, debug info).
    pub name: &'a str,
    /// Variables the kernel reads (used for implicit mapping and by the
    /// Arbalest baseline's instrumentation feed — never by OMPDataPerf's
    /// detectors, which are deliberately access-blind, §5).
    pub reads: Vec<VarId>,
    /// Variables the kernel writes.
    pub writes: Vec<VarId>,
    /// Variables the kernel writes through vector-masked stores (still
    /// writes, but instrumentation-based tools cannot prove no lane
    /// reads them — see `odp_ompt::KernelAccessInfo::masked_writes`).
    pub masked_writes: Vec<VarId>,
    /// Execution cost.
    pub cost: KernelCost,
    /// Optional real body. When absent the runtime applies a default
    /// deterministic mutation to every written buffer so content hashes
    /// still evolve.
    pub body: Option<KernelBody<'a>>,
    /// Requested number of teams (reported through OMPT).
    pub num_teams: u32,
}

impl<'a> Kernel<'a> {
    /// A kernel with the given name and cost.
    pub fn new(name: &'a str, cost: KernelCost) -> Self {
        Kernel {
            name,
            reads: Vec::new(),
            writes: Vec::new(),
            masked_writes: Vec::new(),
            cost,
            body: None,
            num_teams: 0,
        }
    }

    /// Declare read variables.
    pub fn reads(mut self, vars: &[VarId]) -> Self {
        self.reads.extend_from_slice(vars);
        self
    }

    /// Declare written variables.
    pub fn writes(mut self, vars: &[VarId]) -> Self {
        self.writes.extend_from_slice(vars);
        self
    }

    /// Declare variables written through vector-masked stores.
    pub fn masked_writes(mut self, vars: &[VarId]) -> Self {
        self.masked_writes.extend_from_slice(vars);
        self
    }

    /// Attach a real body.
    pub fn body(mut self, body: KernelBody<'a>) -> Self {
        self.body = Some(body);
        self
    }

    /// Set the requested team count.
    pub fn teams(mut self, n: u32) -> Self {
        self.num_teams = n;
        self
    }

    /// All variables the kernel references (reads ∪ writes ∪ masked
    /// writes, stable order, deduplicated).
    pub fn referenced_vars(&self) -> Vec<VarId> {
        let mut out =
            Vec::with_capacity(self.reads.len() + self.writes.len() + self.masked_writes.len());
        for &v in self
            .reads
            .iter()
            .chain(self.writes.iter())
            .chain(self.masked_writes.iter())
        {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_models() {
        assert_eq!(KernelCost::fixed(500).duration(), SimDuration(500));
        assert_eq!(KernelCost::items(1000, 1.0).duration(), SimDuration(1000));
        assert_eq!(
            KernelCost::scaled(1_000_000).duration(),
            SimDuration(10_000)
        );
    }

    #[test]
    fn referenced_vars_dedup_preserves_order() {
        let k = Kernel::new("k", KernelCost::fixed(1))
            .reads(&[VarId(1), VarId(2)])
            .writes(&[VarId(2), VarId(3)]);
        assert_eq!(k.referenced_vars(), vec![VarId(1), VarId(2), VarId(3)]);
    }

    #[test]
    fn device_view_typed_access() {
        let mut buf = vec![0u8; 16];
        let mut view = DeviceView {
            vars: vec![(VarId(0), &mut buf)],
        };
        view.write_f64(VarId(0), &[1.5, -2.0]);
        assert_eq!(view.read_f64(VarId(0)), vec![1.5, -2.0]);
        view.set_scalar_u32(VarId(0), 0, 42);
        assert_eq!(view.scalar_u32(VarId(0), 0), 42);
    }

    #[test]
    #[should_panic(expected = "unmapped var")]
    fn device_view_panics_on_unmapped_access() {
        let view = DeviceView { vars: vec![] };
        let _ = view.bytes(VarId(9));
    }
}
