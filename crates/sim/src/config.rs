//! Runtime configuration.

use crate::faults::FaultPlan;
use crate::timing::TimingModel;
use odp_ompt::CompilerProfile;

/// Configuration of a simulated runtime instance.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of target devices (§7.8: multi-GPU is supported).
    pub num_devices: u32,
    /// Per-device memory capacity in bytes (A100-40GB default).
    pub device_memory_bytes: u64,
    /// Timing model for transfers/allocs/kernels.
    pub timing: TimingModel,
    /// Which compiler's OMPT capability profile the runtime advertises.
    pub profile: CompilerProfile,
    /// Pretend the runtime predates OMPT 5.1: only deprecated non-EMI
    /// callbacks are offered (reproduces the §A.6 degraded-mode warning).
    pub pre_emi_runtime: bool,
    /// Seeded fault-injection plan (`FaultPlan::none()` by default).
    /// Cloning the config shares the plan's injected-fault totals.
    pub faults: FaultPlan,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_devices: 1,
            device_memory_bytes: 40 * (1 << 30), // 40 GiB, A100-40GB-like
            timing: TimingModel::default(),
            profile: CompilerProfile::LlvmClang,
            pre_emi_runtime: false,
            faults: FaultPlan::none(),
        }
    }
}

impl RuntimeConfig {
    /// Config with `n` devices.
    pub fn with_devices(mut self, n: u32) -> Self {
        self.num_devices = n;
        self
    }

    /// Config with a specific compiler profile.
    pub fn with_profile(mut self, p: CompilerProfile) -> Self {
        self.profile = p;
        self
    }

    /// Config advertising a pre-EMI (OMPT 5.0 preview) runtime.
    pub fn pre_emi(mut self) -> Self {
        self.pre_emi_runtime = true;
        self
    }

    /// Config with a fault-injection plan attached.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_a100_like_llvm() {
        let c = RuntimeConfig::default();
        assert_eq!(c.num_devices, 1);
        assert_eq!(c.profile, CompilerProfile::LlvmClang);
        assert!(!c.pre_emi_runtime);
        assert_eq!(c.device_memory_bytes, 40 << 30);
    }

    #[test]
    fn builders_compose() {
        let c = RuntimeConfig::default()
            .with_devices(4)
            .with_profile(CompilerProfile::AmdRocm)
            .pre_emi();
        assert_eq!(c.num_devices, 4);
        assert_eq!(c.profile, CompilerProfile::AmdRocm);
        assert!(c.pre_emi_runtime);
    }

    #[test]
    fn default_faults_are_disabled() {
        assert!(!RuntimeConfig::default().faults.is_enabled());
        let c = RuntimeConfig::default().with_faults(FaultPlan::from_profile(
            crate::faults::FaultProfile::Lossy,
            1,
        ));
        assert!(c.faults.is_enabled());
    }
}
